"""A Verilog-subset front end producing word-level RTL netlists.

The paper's prototype uses an industrial HDL parser / quick-synthesis front
end; this package provides an equivalent path for a synthesisable Verilog
subset so that designs can enter the checker as source text:

* continuous assignments (``assign``),
* one clocked ``always @(posedge clk)`` process per register with
  non-blocking assignments, ``if``/``else`` and ``case``,
* the operator set of the word-level netlist (bit-wise logic, arithmetic,
  comparisons, ternary selection, concatenation, bit/part selects).

``parse_verilog`` returns the AST; ``elaborate`` (or the convenience
``compile_verilog``) turns it into a :class:`repro.netlist.Circuit` without
logic minimisation, preserving the design intent as the paper requires.
"""

from repro.hdl.lexer import Lexer, Token, TokenKind
from repro.hdl.ast import (
    ModuleDecl,
    PortDecl,
    NetDecl,
    AssignStmt,
    AlwaysBlock,
    IfStmt,
    CaseStmt,
    NonBlockingAssign,
    Identifier,
    Number,
    UnaryOp,
    BinaryOp,
    TernaryOp,
    Concat,
    BitSelect,
    PartSelect,
)
from repro.hdl.parser import Parser, parse_verilog, ParseError
from repro.hdl.elaborate import Elaborator, elaborate, compile_verilog, ElaborationError

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "ModuleDecl",
    "PortDecl",
    "NetDecl",
    "AssignStmt",
    "AlwaysBlock",
    "IfStmt",
    "CaseStmt",
    "NonBlockingAssign",
    "Identifier",
    "Number",
    "UnaryOp",
    "BinaryOp",
    "TernaryOp",
    "Concat",
    "BitSelect",
    "PartSelect",
    "Parser",
    "parse_verilog",
    "ParseError",
    "Elaborator",
    "elaborate",
    "compile_verilog",
    "ElaborationError",
]
