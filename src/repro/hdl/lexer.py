"""Tokenizer for the supported Verilog subset."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List, Optional


class TokenKind(enum.Enum):
    """Token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    BASED_NUMBER = "based_number"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words of the supported subset.
KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "posedge", "negedge", "begin", "end", "if", "else",
    "case", "endcase", "default", "parameter", "localparam",
}

#: Multi-character operators, longest first so the lexer is greedy.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "~^", "^~",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "?",
]

PUNCTUATION = ["(", ")", "[", "]", "{", "}", ";", ",", ":", "@", ".", "#"]


@dataclass
class Token:
    """One lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind is TokenKind.OPERATOR and self.text == op

    def is_punct(self, punct: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == punct

    def __repr__(self) -> str:
        return "Token(%s, %r, %d:%d)" % (self.kind.value, self.text, self.line, self.column)


_BASED_NUMBER_RE = re.compile(r"(\d+)?'([bBdDhHoO])([0-9a-fA-FxXzZ_]+)")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_NUMBER_RE = re.compile(r"\d[\d_]*")


class Lexer:
    """Converts Verilog source text into a token stream."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def tokenize(self) -> List[Token]:
        """Return the full token list (terminated by an EOF token)."""
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self.position < len(self.source) and self.source[self.position] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.position += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.source):
            ch = self.source[self.position]
            if ch in " \t\r\n":
                self._advance(1)
            elif self.source.startswith("//", self.position):
                end = self.source.find("\n", self.position)
                self._advance((end - self.position) if end != -1 else len(self.source) - self.position)
            elif self.source.startswith("/*", self.position):
                end = self.source.find("*/", self.position)
                if end == -1:
                    raise SyntaxError("unterminated block comment at line %d" % (self.line,))
                self._advance(end + 2 - self.position)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.position >= len(self.source):
            return Token(TokenKind.EOF, "", self.line, self.column)

        line, column = self.line, self.column
        rest = self.source[self.position :]

        match = _BASED_NUMBER_RE.match(rest)
        if match:
            self._advance(match.end())
            return Token(TokenKind.BASED_NUMBER, match.group(0), line, column)

        match = _IDENT_RE.match(rest)
        if match:
            text = match.group(0)
            self._advance(len(text))
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, line, column)

        match = _NUMBER_RE.match(rest)
        if match:
            text = match.group(0)
            self._advance(len(text))
            return Token(TokenKind.NUMBER, text, line, column)

        for op in OPERATORS:
            if rest.startswith(op):
                self._advance(len(op))
                return Token(TokenKind.OPERATOR, op, line, column)

        for punct in PUNCTUATION:
            if rest.startswith(punct):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)

        raise SyntaxError(
            "unexpected character %r at line %d column %d" % (rest[0], line, column)
        )


def parse_number_literal(text: str) -> (Optional[int], int):
    """Parse a Verilog number literal; returns ``(width or None, value)``."""
    match = _BASED_NUMBER_RE.fullmatch(text)
    if match is None:
        return None, int(text.replace("_", ""))
    width = int(match.group(1)) if match.group(1) else None
    base_char = match.group(2).lower()
    digits = match.group(3).replace("_", "")
    base = {"b": 2, "d": 10, "h": 16, "o": 8}[base_char]
    if any(ch in "xXzZ" for ch in digits):
        raise ValueError("x/z digits are not supported in literal %r" % (text,))
    return width, int(digits, base)
