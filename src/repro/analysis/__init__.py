"""Structural RTL analyses that feed the ATPG with high-level information.

The paper's concluding discussion (Section 6) points out that more high-level
information can be mined from the RTL description and used to speed up the
search: local finite state machines, counters, shift registers, and the
internal don't-care conditions recorded during quick synthesis.  This package
implements those analyses on top of the word-level netlist:

* :mod:`repro.analysis.structure` -- control/datapath partition and primitive
  histogram reports (the "circuit model" of Section 1);
* :mod:`repro.analysis.fsm` -- local finite-state-machine extraction with
  reachability over the extracted state transition graph, used to seed the
  extended state transition graph (ESTG) with structurally illegal states;
* :mod:`repro.analysis.recognize` -- counter and shift-register recognition;
* :mod:`repro.analysis.dontcare` -- internal don't-care bookkeeping and the
  "don't-cares are external" validation flow of properties p10 / p14.
"""

from repro.analysis.structure import (
    GateHistogram,
    PartitionReport,
    StructureReport,
    analyze_structure,
)
from repro.analysis.fsm import (
    LocalFsm,
    extract_local_fsm,
    extract_local_fsms,
    seed_estg_from_fsms,
)
from repro.analysis.recognize import (
    CounterInfo,
    ShiftRegisterInfo,
    RecognitionReport,
    recognize_counters,
    recognize_shift_registers,
    recognize_modules,
)
from repro.analysis.dontcare import (
    DontCare,
    DontCareSet,
    DontCareVerdict,
    validate_dont_cares,
)

__all__ = [
    "GateHistogram",
    "PartitionReport",
    "StructureReport",
    "analyze_structure",
    "LocalFsm",
    "extract_local_fsm",
    "extract_local_fsms",
    "seed_estg_from_fsms",
    "CounterInfo",
    "ShiftRegisterInfo",
    "RecognitionReport",
    "recognize_counters",
    "recognize_shift_registers",
    "recognize_modules",
    "DontCare",
    "DontCareSet",
    "DontCareVerdict",
    "validate_dont_cares",
]
