"""Local finite-state-machine extraction.

Section 6 of the paper observes that RTL designs usually contain many small,
local finite state machines whose transition relations are easy to extract,
and that storing those local state transition graphs lets the ATPG avoid
entering illegal (locally unreachable) states.

:func:`extract_local_fsm` derives the local state transition graph of one
register with the same word-level implication machinery the checker uses:

1. the circuit is unrolled over two frames with *all* registers left unknown
   (``free_initial_state=True``), so a transition is constrained only by the
   target register's own value and whatever implication derives from it;
2. for every current state value the implied cube of the register's
   next-frame output over-approximates the successor set;
3. each candidate successor is then confirmed (or discarded) by asserting it
   and checking for an implication conflict.

Because the inputs and the other registers stay unconstrained, the extracted
transition relation is an *over-approximation* of the real one.  Reachability
over an over-approximation is itself an over-approximation, so any state that
is unreachable in the extracted graph is guaranteed unreachable in the real
design -- those states are safe to record as structurally illegal in the
:class:`~repro.atpg.estg.ExtendedStateTransitionGraph` and prune the search.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.atpg.estg import ExtendedStateTransitionGraph
from repro.atpg.timeframe import UnrolledModel
from repro.bitvector import BV3
from repro.implication.assignment import ImplicationConflict
from repro.netlist.circuit import Circuit
from repro.netlist.seq import DFF


@dataclass
class LocalFsm:
    """The extracted local state transition graph of one register.

    ``transitions`` maps each explored state value to the list of possible
    successor values (an over-approximation of the real successor set).
    """

    register_name: str
    width: int
    initial_state: Optional[int]
    transitions: Dict[int, List[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of representable state encodings (``2**width``)."""
        return 1 << self.width

    def successors(self, state: int) -> List[int]:
        """Possible successor values of ``state`` (empty when unexplored)."""
        return self.transitions.get(state, [])

    def reachable_states(self, from_state: Optional[int] = None) -> Set[int]:
        """States reachable from ``from_state`` (default: the initial state).

        Returns the empty set when no start state is known.
        """
        start = from_state if from_state is not None else self.initial_state
        if start is None:
            return set()
        seen: Set[int] = {start}
        frontier = deque([start])
        while frontier:
            state = frontier.popleft()
            for successor in self.successors(state):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def unreachable_states(self, from_state: Optional[int] = None) -> Set[int]:
        """State encodings not reachable from the initial state.

        Because the transition relation is an over-approximation, every state
        reported here is *guaranteed* unreachable in the real design.
        """
        reachable = self.reachable_states(from_state)
        if not reachable:
            return set()
        return {state for state in range(self.num_states) if state not in reachable}

    def find_cycles(self) -> List[List[int]]:
        """Simple cycles in the extracted graph, restricted to reachable states.

        Used by the loop-detection extension: a witness search never needs to
        traverse the same local state twice, and the cycle structure bounds
        the useful unrolling depth.
        """
        reachable = self.reachable_states()
        cycles: List[List[int]] = []
        seen_cycles: Set[frozenset] = set()
        for start in sorted(reachable):
            stack = [(start, [start])]
            while stack:
                state, path = stack.pop()
                for successor in self.successors(state):
                    if successor == start and len(path) >= 1:
                        signature = frozenset(path)
                        if signature not in seen_cycles:
                            seen_cycles.add(signature)
                            cycles.append(list(path))
                    elif successor not in path and successor in reachable:
                        if len(path) < self.num_states:
                            stack.append((successor, path + [successor]))
        return cycles

    def format(self) -> str:
        """Human-readable transition listing."""
        lines = [
            "local FSM %s (%d bits, %d explored states, initial=%s)"
            % (
                self.register_name,
                self.width,
                len(self.transitions),
                self.initial_state,
            )
        ]
        for state in sorted(self.transitions):
            successors = ", ".join(str(s) for s in self.transitions[state])
            lines.append("  %d -> {%s}" % (state, successors))
        unreachable = self.unreachable_states()
        if unreachable:
            lines.append("  unreachable: %s" % sorted(unreachable))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def extract_local_fsm(
    circuit: Circuit,
    register: DFF,
    max_states: int = 64,
    confirm_successors: bool = True,
) -> LocalFsm:
    """Extract the local state transition graph of one register.

    Parameters
    ----------
    circuit:
        The design containing ``register``.
    register:
        The register whose local FSM is extracted.
    max_states:
        Upper bound on the number of state encodings explored (``2**width``
        must not exceed it).
    confirm_successors:
        When ``True`` every candidate successor from the implied cube is
        additionally checked by asserting it and watching for a conflict,
        which tightens the over-approximation at a small cost.
    """
    width = register.q.width
    num_states = 1 << width
    if num_states > max_states:
        raise ValueError(
            "register %s has %d states, exceeding max_states=%d"
            % (register.q.name, num_states, max_states)
        )

    fsm = LocalFsm(
        register_name=register.q.name,
        width=width,
        initial_state=register.init_value,
    )
    model = UnrolledModel(circuit, 2, free_initial_state=True)
    engine = model.engine
    current_key = model.key(register.q, 0)
    next_key = model.key(register.q, 1)

    for state in range(num_states):
        engine.push_level()
        try:
            engine.assign(current_key, BV3.from_int(width, state))
        except ImplicationConflict:
            engine.pop_level()
            fsm.transitions[state] = []
            continue
        next_cube = engine.assignment.get(next_key)
        candidates = [
            value for value in range(num_states) if next_cube.contains_int(value)
        ]
        if confirm_successors:
            confirmed = []
            for value in candidates:
                engine.push_level()
                try:
                    engine.assign(next_key, BV3.from_int(width, value))
                    confirmed.append(value)
                except ImplicationConflict:
                    pass
                finally:
                    engine.pop_level()
            candidates = confirmed
        fsm.transitions[state] = candidates
        engine.pop_level()
    return fsm


def extract_local_fsms(
    circuit: Circuit,
    max_width: int = 4,
    max_states: int = 64,
    confirm_successors: bool = True,
) -> List[LocalFsm]:
    """Extract local FSMs for every register narrow enough to enumerate.

    Registers wider than ``max_width`` bits are skipped: they are datapath
    registers whose constraints belong to the arithmetic solver, not to
    explicit state enumeration.
    """
    fsms: List[LocalFsm] = []
    for register in circuit.flip_flops:
        if register.q.width > max_width:
            continue
        if (1 << register.q.width) > max_states:
            continue
        fsms.append(
            extract_local_fsm(
                circuit,
                register,
                max_states=max_states,
                confirm_successors=confirm_successors,
            )
        )
    return fsms


def seed_estg_from_fsms(
    estg: ExtendedStateTransitionGraph, fsms: Sequence[LocalFsm]
) -> int:
    """Record every locally unreachable state as structurally illegal.

    Returns the number of state cubes recorded.  The justifier checks these
    cubes in every time frame, pruning branches whose implied register values
    have drifted into a state the design can never occupy (the paper's
    Section 6 "avoid entering illegal states" extension).
    """
    recorded = 0
    for fsm in fsms:
        if fsm.initial_state is None:
            continue
        for state in sorted(fsm.unreachable_states()):
            cube = ExtendedStateTransitionGraph.state_cube(
                [(fsm.register_name, BV3.from_int(fsm.width, state))]
            )
            estg.record_structurally_illegal_state(cube)
            recorded += 1
    return recorded
