"""Structural reports: primitive histogram and control/datapath partition.

Section 1 of the paper describes the circuit model the whole method relies
on: after quick synthesis the design is "an interconnection of control and
datapath portions with some datapath-selecting and comparison-output signals
as the interface".  :func:`analyze_structure` computes that view for any
:class:`~repro.netlist.circuit.Circuit`: how many primitives of each kind it
contains, which nets are control / datapath, and which nets form the
interface between the two (comparator outputs going data-to-control,
multiplexor select signals going control-to-data).

The report is used by the CLI (``python -m repro stats``), by the examples
and by the benchmark harness when describing the synthetic industrial
designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.netlist.circuit import Circuit
from repro.netlist.classify import SignalClass, classify_nets
from repro.netlist.compare import Comparator
from repro.netlist.mux import Mux
from repro.netlist.nets import Net
from repro.netlist.seq import DFF


@dataclass
class GateHistogram:
    """Primitive counts by kind (word-level and bit-equivalent)."""

    #: number of word-level primitive instances per kind mnemonic.
    instances: Dict[str, int] = field(default_factory=dict)
    #: equivalent single-bit gate count per kind (Table 1 accounting).
    bit_equivalent: Dict[str, int] = field(default_factory=dict)

    @property
    def total_instances(self) -> int:
        """Total number of word-level primitives."""
        return sum(self.instances.values())

    @property
    def total_bit_equivalent(self) -> int:
        """Total equivalent single-bit gate count."""
        return sum(self.bit_equivalent.values())


@dataclass
class PartitionReport:
    """The control/datapath split and the nets on the interface."""

    control_nets: List[Net] = field(default_factory=list)
    data_nets: List[Net] = field(default_factory=list)
    #: comparator outputs: the data-to-control interface.
    comparator_outputs: List[Net] = field(default_factory=list)
    #: multiplexor select nets: the control-to-data interface.
    mux_selects: List[Net] = field(default_factory=list)

    @property
    def control_bits(self) -> int:
        """Total width of the control nets."""
        return sum(net.width for net in self.control_nets)

    @property
    def data_bits(self) -> int:
        """Total width of the datapath nets."""
        return sum(net.width for net in self.data_nets)


@dataclass
class StructureReport:
    """Everything :func:`analyze_structure` derives from one circuit."""

    circuit_name: str
    histogram: GateHistogram
    partition: PartitionReport
    num_flip_flop_bits: int
    num_input_bits: int
    num_output_bits: int

    def format(self) -> str:
        """Human-readable multi-line summary (used by the CLI)."""
        lines = ["design %s" % (self.circuit_name,)]
        lines.append(
            "  primitives: %d word-level instances, %d bit-equivalent gates"
            % (self.histogram.total_instances, self.histogram.total_bit_equivalent)
        )
        for kind in sorted(self.histogram.instances):
            lines.append(
                "    %-8s %5d instances %7d gate-equivalents"
                % (kind, self.histogram.instances[kind], self.histogram.bit_equivalent[kind])
            )
        lines.append(
            "  interface: %d flip-flop bits, %d input bits, %d output bits"
            % (self.num_flip_flop_bits, self.num_input_bits, self.num_output_bits)
        )
        lines.append(
            "  partition: %d control nets (%d bits), %d datapath nets (%d bits)"
            % (
                len(self.partition.control_nets),
                self.partition.control_bits,
                len(self.partition.data_nets),
                self.partition.data_bits,
            )
        )
        lines.append(
            "  boundary: %d comparator outputs (data->control), %d mux selects (control->data)"
            % (len(self.partition.comparator_outputs), len(self.partition.mux_selects))
        )
        return "\n".join(lines)


def analyze_structure(circuit: Circuit) -> StructureReport:
    """Compute the primitive histogram and control/datapath partition.

    The function is purely structural -- it never simulates or solves -- and
    therefore runs in time linear in the netlist size.
    """
    histogram = GateHistogram()
    for gate in circuit.gates:
        histogram.instances[gate.kind] = histogram.instances.get(gate.kind, 0) + 1
        equivalent = (
            gate.flip_flop_count() if isinstance(gate, DFF) else gate.gate_count()
        )
        histogram.bit_equivalent[gate.kind] = (
            histogram.bit_equivalent.get(gate.kind, 0) + equivalent
        )

    classification = classify_nets(circuit)
    partition = PartitionReport()
    for net, signal_class in classification.items():
        if signal_class is SignalClass.CONTROL:
            partition.control_nets.append(net)
        else:
            partition.data_nets.append(net)

    for gate in circuit.gates:
        if isinstance(gate, Comparator):
            partition.comparator_outputs.append(gate.output)
        elif isinstance(gate, Mux):
            if gate.select not in partition.mux_selects:
                partition.mux_selects.append(gate.select)

    return StructureReport(
        circuit_name=circuit.name,
        histogram=histogram,
        partition=partition,
        num_flip_flop_bits=sum(ff.flip_flop_count() for ff in circuit.flip_flops),
        num_input_bits=sum(net.width for net in circuit.inputs),
        num_output_bits=sum(net.width for net in circuit.outputs),
    )
