"""Recognition of high-level sequential modules: counters and shift registers.

The paper's concluding discussion lists "recognition of other high-level
modules like counters, and shift-registers" as an extension that improves the
efficiency of the justification process: once a register is known to be a
counter the set of values it can take after ``k`` cycles is immediate, so the
search never needs to enumerate its next-state logic.

The recognisers below are purely structural pattern matchers over the
word-level netlist:

* a **counter** is a register whose next-value cone consists of multiplexors
  choosing between holding the current value, loading a constant and adding /
  subtracting a constant step from the current value;
* a **shift register** is either a register whose next value is a
  constant-amount shift of its own output (word-level form), or a chain of
  single-bit registers each capturing the previous register's output
  (bit-level form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.netlist.arith import Adder, ShiftLeft, ShiftRight, Subtractor
from repro.netlist.circuit import Circuit
from repro.netlist.gates import BufGate, ConcatGate, ConstGate, SliceGate
from repro.netlist.mux import Mux
from repro.netlist.nets import Net
from repro.netlist.seq import DFF


@dataclass
class CounterInfo:
    """A recognised counter register."""

    register_name: str
    width: int
    #: signed step added each counting cycle (negative for down counters).
    step: int
    #: True when the next-state cone includes a hold (enable-style) branch.
    can_hold: bool
    #: constant values the counter can be loaded with (reset / wrap values).
    load_values: List[int] = field(default_factory=list)

    @property
    def direction(self) -> str:
        """``"up"`` or ``"down"`` depending on the sign of the step."""
        return "up" if self.step >= 0 else "down"


@dataclass
class ShiftRegisterInfo:
    """A recognised shift register (word-level or a chain of 1-bit stages)."""

    register_names: List[str]
    length: int
    direction: str
    #: "word" for a single wide register shifted in place, "chain" for a
    #: cascade of single-bit registers.
    form: str


@dataclass
class RecognitionReport:
    """Everything :func:`recognize_modules` found in one circuit."""

    circuit_name: str
    counters: List[CounterInfo] = field(default_factory=list)
    shift_registers: List[ShiftRegisterInfo] = field(default_factory=list)

    def format(self) -> str:
        """Human-readable summary (used by the CLI and the examples)."""
        lines = ["recognised modules in %s" % (self.circuit_name,)]
        if not self.counters and not self.shift_registers:
            lines.append("  (none)")
        for counter in self.counters:
            lines.append(
                "  counter %-16s %d bits, step %+d (%s)%s%s"
                % (
                    counter.register_name,
                    counter.width,
                    counter.step,
                    counter.direction,
                    ", holds" if counter.can_hold else "",
                    ", loads %s" % counter.load_values if counter.load_values else "",
                )
            )
        for shift in self.shift_registers:
            lines.append(
                "  shift register %-10s length %d, %s (%s form)"
                % (
                    shift.register_names[0],
                    shift.length,
                    shift.direction,
                    shift.form,
                )
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Counter recognition
# ----------------------------------------------------------------------
def _through_buffers(net: Net) -> Net:
    """Follow buffer gates back to the originating net."""
    seen = 0
    while isinstance(net.driver, BufGate) and seen < 64:
        net = net.driver.inputs[0]
        seen += 1
    return net


def _constant_value(net: Net) -> Optional[int]:
    """The constant driving ``net``, if any."""
    net = _through_buffers(net)
    if isinstance(net.driver, ConstGate):
        return net.driver.value
    return None


def _analyze_counter_cone(net: Net, q: Net, depth: int = 0):
    """Classify the next-value cone of a candidate counter register.

    Returns ``(steps, holds, loads)`` where ``steps`` is the set of signed
    count steps found, ``holds`` whether a hold branch exists and ``loads``
    the set of constant load values -- or ``None`` when the cone contains
    anything that is not counter-shaped.
    """
    if depth > 8:
        return None
    net = _through_buffers(net)
    if net is q:
        return set(), True, set()
    constant = _constant_value(net)
    if constant is not None:
        return set(), False, {constant}
    driver = net.driver
    if isinstance(driver, Mux):
        steps: Set[int] = set()
        holds = False
        loads: Set[int] = set()
        for data in driver.data:
            analysis = _analyze_counter_cone(data, q, depth + 1)
            if analysis is None:
                return None
            branch_steps, branch_holds, branch_loads = analysis
            steps |= branch_steps
            holds = holds or branch_holds
            loads |= branch_loads
        return steps, holds, loads
    if isinstance(driver, (Adder, Subtractor)):
        sign = 1 if isinstance(driver, Adder) else -1
        a = _through_buffers(driver.a)
        b = _through_buffers(driver.b)
        a_const = _constant_value(driver.a)
        b_const = _constant_value(driver.b)
        if a is q and b_const is not None:
            return {sign * b_const}, False, set()
        if sign == 1 and b is q and a_const is not None:
            return {a_const}, False, set()
        return None
    return None


def recognize_counters(circuit: Circuit) -> List[CounterInfo]:
    """Find every register whose next-value logic is counter-shaped."""
    counters: List[CounterInfo] = []
    for register in circuit.flip_flops:
        analysis = _analyze_counter_cone(register.d, register.q)
        if analysis is None:
            continue
        steps, holds, loads = analysis
        if len(steps) != 1:
            continue  # not a single-step counter (or no counting branch at all)
        step = next(iter(steps))
        counters.append(
            CounterInfo(
                register_name=register.q.name,
                width=register.q.width,
                step=step if step < (1 << (register.q.width - 1)) else step - (1 << register.q.width),
                can_hold=holds or register.enable is not None,
                load_values=sorted(loads),
            )
        )
    return counters


# ----------------------------------------------------------------------
# Shift register recognition
# ----------------------------------------------------------------------
def _word_level_shift(register: DFF) -> Optional[ShiftRegisterInfo]:
    """Detect ``q <= q << 1`` / ``q >= q >> 1`` style registers, including the
    concat-of-slice form produced by HDL elaboration."""
    d = _through_buffers(register.d)
    driver = d.driver
    q = register.q
    if isinstance(driver, (ShiftLeft, ShiftRight)) and driver.constant is not None:
        if _through_buffers(driver.a) is q and driver.constant == 1:
            direction = "left" if isinstance(driver, ShiftLeft) else "right"
            return ShiftRegisterInfo([q.name], q.width, direction, "word")
    if isinstance(driver, ConcatGate) and len(driver.inputs) == 2:
        high, low = driver.inputs
        high_driver = _through_buffers(high).driver
        low_driver = _through_buffers(low).driver
        # {q[w-2:0], serial_in} is a left shift;  {serial_in, q[w-1:1]} a right shift.
        if (
            isinstance(high_driver, SliceGate)
            and _through_buffers(high_driver.inputs[0]) is q
            and high_driver.msb == q.width - 2
            and high_driver.lsb == 0
        ):
            return ShiftRegisterInfo([q.name], q.width, "left", "word")
        if (
            isinstance(low_driver, SliceGate)
            and _through_buffers(low_driver.inputs[0]) is q
            and low_driver.msb == q.width - 1
            and low_driver.lsb == 1
        ):
            return ShiftRegisterInfo([q.name], q.width, "right", "word")
    return None


def _bit_chains(circuit: Circuit) -> List[ShiftRegisterInfo]:
    """Detect cascades of 1-bit registers each fed by the previous output."""
    by_output: Dict[Net, DFF] = {ff.q: ff for ff in circuit.flip_flops if ff.q.width == 1}
    predecessor: Dict[DFF, DFF] = {}
    for ff in by_output.values():
        source = _through_buffers(ff.d)
        feeder = by_output.get(source)
        if feeder is not None and feeder is not ff:
            predecessor[ff] = feeder

    chains: List[ShiftRegisterInfo] = []
    heads = [ff for ff in predecessor if ff not in set(predecessor.values())]
    for head in heads:
        chain = [head]
        current = head
        while current in predecessor and predecessor[current] not in chain:
            current = predecessor[current]
            chain.append(current)
        if len(chain) >= 2:
            names = [ff.q.name for ff in reversed(chain)]
            chains.append(ShiftRegisterInfo(names, len(chain), "forward", "chain"))
    return chains


def recognize_shift_registers(circuit: Circuit) -> List[ShiftRegisterInfo]:
    """Find word-level shift registers and chains of single-bit registers."""
    found: List[ShiftRegisterInfo] = []
    for register in circuit.flip_flops:
        info = _word_level_shift(register)
        if info is not None:
            found.append(info)
    found.extend(_bit_chains(circuit))
    return found


def recognize_modules(circuit: Circuit) -> RecognitionReport:
    """Run every recogniser and assemble a report."""
    return RecognitionReport(
        circuit_name=circuit.name,
        counters=recognize_counters(circuit),
        shift_registers=recognize_shift_registers(circuit),
    )
