"""Internal don't-care bookkeeping and validation (properties p10 / p14).

During quick synthesis the paper records internal don't-care conditions as
functions of module inputs instead of optimising them away, and later proves
that these conditions are "also external" -- i.e. unreachable from the legal
input space -- so they can safely be used to optimise the circuit.

This module provides the corresponding user-facing flow:

* a :class:`DontCare` names one condition (a property expression over circuit
  signals) under which the design's behaviour is unspecified;
* :class:`DontCareSet` collects them for a design;
* :func:`validate_dont_cares` checks, with the combined word-level ATPG /
  modular arithmetic engine, that every recorded condition is unreachable,
  returning one verdict per condition.

The industrial cases p10 and p14 of the benchmark suite are exactly this
flow on the synthetic ``industry_01`` / ``industry_05`` designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.checker.engine import AssertionChecker, CheckerOptions
from repro.checker.result import CheckResult, CheckStatus
from repro.netlist.circuit import Circuit
from repro.properties.environment import Environment
from repro.properties.spec import Assertion, Expression, Not


@dataclass
class DontCare:
    """One internal don't-care condition.

    ``condition`` is an expression over circuit signal names that evaluates
    to true exactly when the design enters the don't-care situation.
    """

    name: str
    condition: Expression
    description: str = ""

    def to_assertion(self) -> Assertion:
        """The assertion "this don't-care condition never occurs"."""
        return Assertion("dc_%s_unreachable" % (self.name,), Not(self.condition))


@dataclass
class DontCareSet:
    """The collection of don't-care conditions recorded for one design."""

    circuit_name: str
    entries: List[DontCare] = field(default_factory=list)

    def add(self, name: str, condition: Expression, description: str = "") -> DontCare:
        """Record a new don't-care condition and return it."""
        if any(entry.name == name for entry in self.entries):
            raise ValueError("don't-care %r already recorded" % (name,))
        entry = DontCare(name, condition, description)
        self.entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


@dataclass
class DontCareVerdict:
    """The outcome of validating one don't-care condition."""

    dont_care: DontCare
    result: CheckResult

    @property
    def is_external(self) -> bool:
        """True when the condition is unreachable and can be used to optimise."""
        return self.result.status is CheckStatus.HOLDS

    @property
    def reachable(self) -> bool:
        """True when a trace reaching the don't-care condition was found."""
        return self.result.status is CheckStatus.FAILS

    def summary(self) -> str:
        """One-line human readable verdict."""
        if self.is_external:
            outcome = "unreachable (safe to optimise)"
        elif self.reachable:
            outcome = "REACHABLE in %d frames" % (self.result.frames_explored,)
        else:
            outcome = self.result.status.value
        return "%-24s %s" % (self.dont_care.name, outcome)


def validate_dont_cares(
    circuit: Circuit,
    dont_cares: Iterable[DontCare],
    environment: Optional[Environment] = None,
    initial_state: Optional[Dict[str, int]] = None,
    options: Optional[CheckerOptions] = None,
) -> List[DontCareVerdict]:
    """Prove (or refute) that every don't-care condition is unreachable.

    A fresh :class:`~repro.checker.engine.AssertionChecker` is built once and
    reused across the conditions, so learned ESTG information (when enabled in
    ``options``) carries over between them.
    """
    checker = AssertionChecker(
        circuit,
        environment=environment,
        initial_state=initial_state,
        options=options,
    )
    verdicts: List[DontCareVerdict] = []
    for dont_care in dont_cares:
        result = checker.check(dont_care.to_assertion())
        verdicts.append(DontCareVerdict(dont_care=dont_care, result=result))
    return verdicts
