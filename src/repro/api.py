"""The public check API: one serializable request type, one report type.

Before this module existed the same knobs (engines, bounds, budgets,
incremental / learning / knowledge-base / sim-width switches, seeds) were
spelled three times -- :class:`~repro.checker.engine.CheckerOptions`,
:class:`~repro.portfolio.batch.BatchOptions` and ad-hoc CLI plumbing -- and
none of those spellings could travel: there was no request type a job
protocol could carry.  This module collapses them into one frozen,
JSON-round-trippable :class:`CheckRequest`:

* the CLI (``repro check`` / ``repro submit``) parses its arguments into a
  single ``CheckRequest``;
* :class:`CheckerOptions`, :class:`BatchOptions`, :class:`EngineBudget` and
  :class:`AtpgEngine` expose ``from_request`` adapters, so the request is
  the *only* place the knob list lives;
* the verification service (:mod:`repro.service`) carries the request
  verbatim inside its ``repro-service/v1`` protocol -- no second schema.

The module is also the supported import surface for library users
(re-exported as :mod:`repro.api` and from :mod:`repro` itself):

.. code-block:: python

    from repro import api

    request = api.build_request(circuit, Assertion("safe", expr), max_frames=8)
    report = api.check(request)
    print(report.to_json())

Internal modules (``repro.checker.engine``, ``repro.portfolio.batch``) remain
importable but are not a stability contract; ``repro.api`` is.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, MutableMapping, Optional, Sequence, Tuple, Union

from repro.checker.engine import AssertionChecker, CheckerOptions
from repro.checker.report import counterexample_to_dict, statistics_to_dict
from repro.checker.result import CheckResult, CheckStatus
from repro.netlist.circuit import Circuit
from repro.properties.environment import Environment
from repro.properties.parse import format_expression, parse_expression
from repro.properties.spec import Assertion, Property, Witness

#: JSON schema tag of the serialised request (bump the major on breakage).
REQUEST_SCHEMA = "repro-check-request/v1"
#: JSON schema tag of the serialised report.
REPORT_SCHEMA = "repro-check-report/v1"


class RequestError(ValueError):
    """A request cannot be built, serialised or resolved."""


def _schema_compatible(schema: object, expected: str) -> bool:
    """Same-major schema check: ``<name>/v1`` accepts ``<name>/v1.3``.

    Messages written by a *newer minor* revision are readable by design
    (unknown fields are ignored); a different major means the layout
    changed incompatibly and must be rejected.
    """
    if schema is None:
        return True  # tolerate untagged payloads from older writers
    if not isinstance(schema, str):
        return False
    expected_name, _, expected_major = expected.rpartition("/")
    name, _, version = schema.rpartition("/")
    return name == expected_name and version.split(".", 1)[0] == expected_major


# ----------------------------------------------------------------------
# Circuit references
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CircuitRef:
    """Names the design a request runs against.

    Four kinds, three of them serialisable:

    * ``verilog`` -- a Verilog file on disk (``path`` + optional ``top``);
    * ``source`` -- inline Verilog text (``text`` + optional ``top``);
    * ``case`` -- one of the bundled benchmark cases (``p1`` .. ``p15``),
      which also supplies its default property, environment, initial state
      and bound;
    * ``inline`` -- a live :class:`~repro.netlist.circuit.Circuit` object.
      Only usable in-process: it cannot travel through JSON, so
      :meth:`to_dict` raises for it.
    """

    kind: str
    path: Optional[str] = None
    top: Optional[str] = None
    text: Optional[str] = None
    case_id: Optional[str] = None
    circuit: Optional[Circuit] = None

    KINDS = ("verilog", "source", "case", "inline")

    # -- constructors ------------------------------------------------
    @classmethod
    def verilog(cls, path: str, top: Optional[str] = None) -> "CircuitRef":
        """A design stored as a Verilog file."""
        return cls(kind="verilog", path=path, top=top)

    @classmethod
    def source(cls, text: str, top: Optional[str] = None) -> "CircuitRef":
        """A design shipped as inline Verilog text (self-contained requests)."""
        return cls(kind="source", text=text, top=top)

    @classmethod
    def case(cls, case_id: str) -> "CircuitRef":
        """One of the bundled benchmark property cases (``p1`` .. ``p15``)."""
        return cls(kind="case", case_id=case_id)

    @classmethod
    def inline(cls, circuit: Circuit) -> "CircuitRef":
        """A live circuit object (in-process checking only)."""
        return cls(kind="inline", circuit=circuit)

    # -- serialisation -----------------------------------------------
    @property
    def serializable(self) -> bool:
        """Whether this reference can travel through JSON."""
        return self.kind != "inline"

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form; raises :class:`RequestError` for ``inline``."""
        if self.kind == "verilog":
            payload: Dict[str, object] = {"kind": "verilog", "path": self.path}
        elif self.kind == "source":
            payload = {"kind": "source", "text": self.text}
        elif self.kind == "case":
            return {"kind": "case", "case_id": self.case_id}
        else:
            raise RequestError(
                "an inline circuit cannot be serialised; use a verilog, "
                "source or case reference for requests that travel"
            )
        if self.top is not None:
            payload["top"] = self.top
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CircuitRef":
        """Rebuild a reference, ignoring unknown fields."""
        kind = payload.get("kind")
        if kind == "verilog":
            if not payload.get("path"):
                raise RequestError("verilog circuit ref needs a 'path'")
            return cls.verilog(str(payload["path"]), _opt_str(payload.get("top")))
        if kind == "source":
            if not payload.get("text"):
                raise RequestError("source circuit ref needs 'text'")
            return cls.source(str(payload["text"]), _opt_str(payload.get("top")))
        if kind == "case":
            if not payload.get("case_id"):
                raise RequestError("case circuit ref needs a 'case_id'")
            return cls.case(str(payload["case_id"]))
        raise RequestError("unknown circuit ref kind %r" % (kind,))

    def cache_key(self) -> Tuple:
        """A hashable identity for design-resolution caches.

        File-backed refs include the file's mtime/size so an edited design
        is re-elaborated instead of served stale.
        """
        if self.kind == "inline":
            return ("inline", id(self.circuit))
        if self.kind == "case":
            return ("case", self.case_id)
        if self.kind == "source":
            digest = hashlib.sha256((self.text or "").encode("utf-8")).hexdigest()
            return ("source", digest, self.top)
        path = os.path.abspath(self.path or "")
        try:
            stat = os.stat(path)
            freshness: Tuple = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            freshness = (None, None)
        return ("verilog", path, freshness, self.top)


def _opt_str(value: object) -> Optional[str]:
    return None if value is None else str(value)


# ----------------------------------------------------------------------
# Property specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PropertySpec:
    """One property of a request, carried as a parseable expression string.

    ``max_frames`` / ``seed`` are optional per-property overrides of the
    request-level values (the batch-job shape).
    """

    kind: str  # "assert" | "witness"
    name: str
    expr: str
    max_frames: Optional[int] = None
    seed: Optional[int] = None

    @classmethod
    def assertion(cls, name: str, expr: Union[str, object], **overrides) -> "PropertySpec":
        """An assertion spec from an expression string or tree."""
        return cls(kind="assert", name=name, expr=_expr_text(expr), **overrides)

    @classmethod
    def witness(cls, name: str, expr: Union[str, object], **overrides) -> "PropertySpec":
        """A witness spec from an expression string or tree."""
        return cls(kind="witness", name=name, expr=_expr_text(expr), **overrides)

    @classmethod
    def from_property(cls, prop: Property, **overrides) -> "PropertySpec":
        """Serialise an in-memory :class:`Property` (renders its expression)."""
        return cls(
            kind="assert" if prop.is_assertion else "witness",
            name=prop.name,
            expr=format_expression(prop.expr),
            **overrides,
        )

    def to_property(self) -> Property:
        """Parse the expression back into a checker-ready property."""
        expr = parse_expression(self.expr)
        factory = Assertion if self.kind == "assert" else Witness
        return factory(self.name, expr)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind, "name": self.name, "expr": self.expr,
        }
        if self.max_frames is not None:
            payload["max_frames"] = self.max_frames
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PropertySpec":
        kind = payload.get("kind")
        if kind not in ("assert", "witness"):
            raise RequestError("property kind must be 'assert' or 'witness', got %r" % (kind,))
        if not payload.get("name") or not payload.get("expr"):
            raise RequestError("property specs need 'name' and 'expr'")
        return cls(
            kind=str(kind),
            name=str(payload["name"]),
            expr=str(payload["expr"]),
            max_frames=_opt_int(payload.get("max_frames")),
            seed=_opt_int(payload.get("seed")),
        )


def _expr_text(expr: Union[str, object]) -> str:
    if isinstance(expr, str):
        parse_expression(expr)  # validate eagerly; raises PropertyParseError
        return expr
    return format_expression(expr)


def _opt_int(value: object) -> Optional[int]:
    return None if value is None else int(value)


def _opt_float(value: object) -> Optional[float]:
    return None if value is None else float(value)


# ----------------------------------------------------------------------
# The request
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckRequest:
    """Everything one verification job needs, in one serialisable value.

    The CLI, the batch runner and the service daemon all construct and
    consume this type; there is no second knob list anywhere.  ``None``
    defaults mean "use the target's default" (e.g. a bundled case supplies
    its own bound when ``max_frames`` is ``None``).
    """

    circuit: CircuitRef
    #: properties to check; empty falls back to the circuit ref's bundled
    #: default (case refs only).
    properties: Tuple[PropertySpec, ...] = ()
    # -- environment --------------------------------------------------
    pinned: Tuple[Tuple[str, int], ...] = ()
    one_hot: Tuple[Tuple[str, ...], ...] = ()
    assumptions: Tuple[str, ...] = ()
    initial_state: Optional[Tuple[Tuple[str, int], ...]] = None
    init_vectors: Tuple[Tuple[Tuple[str, int], ...], ...] = ()
    # -- engines and bounds -------------------------------------------
    engines: Tuple[str, ...] = ("atpg",)
    max_frames: Optional[int] = None
    # -- budgets ------------------------------------------------------
    time_budget: Optional[float] = None
    sim_width: Optional[int] = None
    seed: Optional[int] = None
    random_runs: Optional[int] = None
    random_cycles: Optional[int] = None
    bdd_iterations: Optional[int] = None
    bdd_node_limit: Optional[int] = None
    # -- search configuration -----------------------------------------
    incremental: bool = True
    learning: bool = True
    kb_path: Optional[str] = None
    fsm_guidance: bool = False
    #: run implication on the compiled check kernel (``--no-compiled``
    #: falls back to the interpreted soundness oracle; bit-identical).
    compiled: bool = True
    #: rank decision candidates by learned-cube fire counts (ablation).
    cube_hit_ordering: bool = False
    # -- batch shape --------------------------------------------------
    jobs: int = 1
    compare: bool = False

    # ------------------------------------------------------------------
    def __post_init__(self):
        if not self.engines:
            raise RequestError("a request needs at least one engine")
        if len(set(self.engines)) != len(self.engines):
            raise RequestError("duplicate engines: %s" % (",".join(self.engines),))
        if self.jobs < 1:
            raise RequestError("jobs must be >= 1, got %d" % (self.jobs,))
        if self.sim_width is not None and self.sim_width < 1:
            raise RequestError("sim_width must be >= 1, got %d" % (self.sim_width,))
        if self.max_frames is not None and self.max_frames < 1:
            raise RequestError("max_frames must be >= 1, got %d" % (self.max_frames,))

    @property
    def uses_portfolio(self) -> bool:
        """Whether this request routes through the portfolio/batch machinery.

        Mirrors the CLI contract: the default single-engine path is
        deterministic and keeps the classic report schema; any portfolio
        knob (extra engines, worker processes, wall-clock budgets,
        compare mode) reroutes.
        """
        return (
            tuple(self.engines) != ("atpg",)
            or self.jobs > 1
            or self.time_budget is not None
            or self.compare
        )

    # -- environment --------------------------------------------------
    def build_environment(self) -> Optional[Environment]:
        """Materialise the request's environment constraints (or ``None``)."""
        if not (self.pinned or self.one_hot or self.assumptions or self.init_vectors):
            return None
        environment = Environment()
        for name, value in self.pinned:
            environment.pin(name, value)
        for group in self.one_hot:
            environment.one_hot(list(group))
        for text in self.assumptions:
            environment.assume(parse_expression(text))
        if self.init_vectors:
            environment.initialize_with([dict(v) for v in self.init_vectors])
        return environment

    def initial_state_mapping(self) -> Optional[Dict[str, int]]:
        """The explicit initial register state, as a mapping."""
        if self.initial_state is None:
            return None
        return dict(self.initial_state)

    # -- serialisation ------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The canonical JSON layout (grouped, stable key order)."""
        return {
            "schema": REQUEST_SCHEMA,
            "circuit": self.circuit.to_dict(),
            "properties": [spec.to_dict() for spec in self.properties],
            "environment": {
                "pin": {name: value for name, value in self.pinned},
                "one_hot": [list(group) for group in self.one_hot],
                "assume": list(self.assumptions),
                "initial_state": (
                    None if self.initial_state is None else dict(self.initial_state)
                ),
                "init_vectors": [dict(v) for v in self.init_vectors],
            },
            "engines": list(self.engines),
            "bounds": {"max_frames": self.max_frames},
            "budget": {
                "time_seconds": self.time_budget,
                "sim_width": self.sim_width,
                "seed": self.seed,
                "random_runs": self.random_runs,
                "random_cycles": self.random_cycles,
                "bdd_iterations": self.bdd_iterations,
                "bdd_node_limit": self.bdd_node_limit,
            },
            "search": {
                "incremental": self.incremental,
                "learning": self.learning,
                "kb_path": self.kb_path,
                "fsm_guidance": self.fsm_guidance,
                "compiled": self.compiled,
                "cube_hit_ordering": self.cube_hit_ordering,
            },
            "batch": {"jobs": self.jobs, "compare": self.compare},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CheckRequest":
        """Rebuild a request; unknown fields anywhere are ignored.

        Tolerates same-major newer minors of :data:`REQUEST_SCHEMA` (their
        additions are skipped); rejects different majors.
        """
        if not isinstance(payload, Mapping):
            raise RequestError("request payload must be a JSON object")
        if not _schema_compatible(payload.get("schema"), REQUEST_SCHEMA):
            raise RequestError(
                "incompatible request schema %r (expected %s)"
                % (payload.get("schema"), REQUEST_SCHEMA)
            )
        circuit_payload = payload.get("circuit")
        if not isinstance(circuit_payload, Mapping):
            raise RequestError("request needs a 'circuit' object")
        environment = payload.get("environment") or {}
        if not isinstance(environment, Mapping):
            raise RequestError("'environment' must be an object")
        bounds = _mapping(payload.get("bounds"))
        budget = _mapping(payload.get("budget"))
        search = _mapping(payload.get("search"))
        batch = _mapping(payload.get("batch"))
        pinned = environment.get("pin") or {}
        initial_state = environment.get("initial_state")
        return cls(
            circuit=CircuitRef.from_dict(circuit_payload),
            properties=tuple(
                PropertySpec.from_dict(item) for item in payload.get("properties") or []
            ),
            pinned=tuple(sorted((str(k), int(v)) for k, v in pinned.items())),
            one_hot=tuple(
                tuple(str(name) for name in group)
                for group in environment.get("one_hot") or []
            ),
            assumptions=tuple(str(a) for a in environment.get("assume") or []),
            initial_state=(
                None if initial_state is None
                else tuple(sorted((str(k), int(v)) for k, v in initial_state.items()))
            ),
            init_vectors=tuple(
                tuple(sorted((str(k), int(v)) for k, v in vector.items()))
                for vector in environment.get("init_vectors") or []
            ),
            engines=tuple(str(e) for e in payload.get("engines") or ("atpg",)),
            max_frames=_opt_int(bounds.get("max_frames")),
            time_budget=_opt_float(budget.get("time_seconds")),
            sim_width=_opt_int(budget.get("sim_width")),
            seed=_opt_int(budget.get("seed")),
            random_runs=_opt_int(budget.get("random_runs")),
            random_cycles=_opt_int(budget.get("random_cycles")),
            bdd_iterations=_opt_int(budget.get("bdd_iterations")),
            bdd_node_limit=_opt_int(budget.get("bdd_node_limit")),
            incremental=bool(search.get("incremental", True)),
            learning=bool(search.get("learning", True)),
            kb_path=_opt_str(search.get("kb_path")),
            fsm_guidance=bool(search.get("fsm_guidance", False)),
            compiled=bool(search.get("compiled", True)),
            cube_hit_ordering=bool(search.get("cube_hit_ordering", False)),
            jobs=int(batch.get("jobs", 1)),
            compare=bool(batch.get("compare", False)),
        )

    @classmethod
    def from_json(cls, text: str) -> "CheckRequest":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise RequestError("request is not valid JSON: %s" % (exc,)) from exc
        return cls.from_dict(payload)


def _mapping(value: object) -> Mapping[str, object]:
    return value if isinstance(value, Mapping) else {}


# ----------------------------------------------------------------------
# Request construction helpers
# ----------------------------------------------------------------------
def build_request(
    design: Union[Circuit, CircuitRef, str],
    properties: Union[Property, PropertySpec, str, Sequence] = (),
    *,
    environment: Optional[Environment] = None,
    initial_state: Optional[Mapping[str, int]] = None,
    **knobs,
) -> CheckRequest:
    """The convenient front door: normalise loose inputs into a request.

    ``design`` may be a live circuit, a ready-made :class:`CircuitRef` or a
    Verilog file path.  ``properties`` accepts a single item or a sequence
    of :class:`Property` / :class:`PropertySpec` / expression strings
    (strings become assertions named ``assert_<i>``).  An
    :class:`Environment` object is decomposed into the request's
    serialisable constraint fields.  Remaining keyword knobs go straight to
    :class:`CheckRequest`.
    """
    if isinstance(design, CircuitRef):
        ref = design
    elif isinstance(design, Circuit):
        ref = CircuitRef.inline(design)
    elif isinstance(design, str):
        ref = CircuitRef.verilog(design)
    else:
        raise RequestError("cannot build a circuit ref from %r" % (design,))

    if isinstance(properties, (Property, PropertySpec, str)):
        properties = (properties,)
    specs: List[PropertySpec] = []
    for index, item in enumerate(properties):
        if isinstance(item, PropertySpec):
            specs.append(item)
        elif isinstance(item, Property):
            specs.append(PropertySpec.from_property(item))
        elif isinstance(item, str):
            specs.append(PropertySpec.assertion("assert_%d" % index, item))
        else:
            raise RequestError("cannot build a property spec from %r" % (item,))

    env_fields: Dict[str, object] = {}
    if environment is not None:
        env_fields["pinned"] = tuple(sorted(environment.pinned.items()))
        env_fields["one_hot"] = tuple(
            tuple(group) for group in environment.one_hot_groups
        )
        env_fields["assumptions"] = tuple(
            format_expression(expr) for expr in environment.assumptions
        )
        if environment.initialization is not None:
            env_fields["init_vectors"] = tuple(
                tuple(sorted(vector.items()))
                for vector in environment.initialization.vectors
            )
    if initial_state is not None:
        env_fields["initial_state"] = tuple(sorted(initial_state.items()))

    return CheckRequest(circuit=ref, properties=tuple(specs), **env_fields, **knobs)


# ----------------------------------------------------------------------
# Design resolution
# ----------------------------------------------------------------------
@dataclass
class ResolvedDesign:
    """A circuit ref resolved into live objects plus its bundled defaults."""

    circuit: Circuit
    environment: Optional[Environment] = None
    initial_state: Optional[Dict[str, int]] = None
    default_properties: Tuple[PropertySpec, ...] = ()
    default_max_frames: Optional[int] = None


def resolve_design(
    ref: CircuitRef,
    cache: Optional[MutableMapping[Tuple, ResolvedDesign]] = None,
) -> ResolvedDesign:
    """Turn a circuit ref into a live :class:`ResolvedDesign`.

    ``cache`` (keyed by :meth:`CircuitRef.cache_key`) is what makes repeated
    requests *warm*: handing back the same circuit object lets the
    process-wide :class:`~repro.checker.incremental.UnrolledModelCache` (and
    the learned facts riding its models) hit across requests.  The service
    workers hold one such cache for their whole life.
    """
    key = ref.cache_key() if cache is not None else None
    if cache is not None:
        resolved = cache.get(key)
        if resolved is not None:
            return resolved
    resolved = _resolve_uncached(ref)
    if cache is not None:
        cache[key] = resolved
    return resolved


def _resolve_uncached(ref: CircuitRef) -> ResolvedDesign:
    if ref.kind == "inline":
        if ref.circuit is None:
            raise RequestError("inline circuit ref carries no circuit")
        return ResolvedDesign(circuit=ref.circuit)
    if ref.kind == "case":
        from repro.circuits import build_case

        try:
            case = build_case(ref.case_id)
        except (KeyError, ValueError) as exc:
            raise RequestError("unknown benchmark case %r" % (ref.case_id,)) from exc
        return ResolvedDesign(
            circuit=case.circuit,
            environment=case.environment,
            initial_state=(
                None if case.initial_state is None else dict(case.initial_state)
            ),
            default_properties=(PropertySpec.from_property(case.prop),),
            default_max_frames=case.max_frames,
        )
    from repro.hdl import compile_verilog

    if ref.kind == "source":
        text = ref.text or ""
    else:
        try:
            with open(ref.path or "") as stream:
                text = stream.read()
        except OSError as exc:
            raise RequestError("cannot read design %r: %s" % (ref.path, exc)) from exc
    circuit = compile_verilog(text, top=ref.top)
    circuit.validate()
    return ResolvedDesign(circuit=circuit)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PropertyVerdict:
    """One property's outcome inside a :class:`CheckReport`."""

    name: str
    kind: str  # "assertion" | "witness"
    status: str  # a CheckStatus value
    conclusive: bool
    winner: Optional[str] = None
    frames_explored: Optional[int] = None
    wall_seconds: float = 0.0
    trace: Optional[Dict[str, object]] = None
    stats: Dict[str, object] = field(default_factory=dict)
    engines: Tuple[Dict[str, object], ...] = ()
    seed: Optional[int] = None
    disagreement: Tuple[str, ...] = ()

    @property
    def check_status(self) -> CheckStatus:
        return CheckStatus(self.status)

    @property
    def failed(self) -> bool:
        """Whether this verdict makes the whole request fail (CLI contract):
        a violated assertion, or no conclusive answer at all."""
        return (
            (self.kind == "assertion" and self.status == CheckStatus.FAILS.value)
            or not self.conclusive
        )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "property": self.name,
            "kind": self.kind,
            "status": self.status,
            "conclusive": self.conclusive,
            "winner": self.winner,
            "wall_seconds": round(self.wall_seconds, 6),
            "stats": dict(self.stats),
        }
        if self.frames_explored is not None:
            payload["frames_explored"] = self.frames_explored
        if self.seed is not None:
            payload["seed"] = self.seed
        if self.engines:
            payload["engines"] = [dict(engine) for engine in self.engines]
        if self.disagreement:
            payload["disagreement"] = list(self.disagreement)
        if self.trace is not None:
            payload["trace"] = dict(self.trace)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PropertyVerdict":
        return cls(
            name=str(payload.get("property", "")),
            kind=str(payload.get("kind", "assertion")),
            status=str(payload.get("status", CheckStatus.ABORTED.value)),
            conclusive=bool(payload.get("conclusive", False)),
            winner=_opt_str(payload.get("winner")),
            frames_explored=_opt_int(payload.get("frames_explored")),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            trace=dict(payload["trace"]) if payload.get("trace") is not None else None,
            stats=dict(_mapping(payload.get("stats"))),
            engines=tuple(dict(e) for e in payload.get("engines") or []),
            seed=_opt_int(payload.get("seed")),
            disagreement=tuple(str(d) for d in payload.get("disagreement") or []),
        )


@dataclass(frozen=True)
class CheckReport:
    """The unified, serialisable outcome of one :class:`CheckRequest`.

    Produced identically by the in-process facade (:func:`check`) and the
    service daemon (whose ``result`` verb ships this very JSON), so a client
    can compare verdicts and counterexample traces bit-for-bit across the
    two paths.
    """

    results: Tuple[PropertyVerdict, ...]
    engines: Tuple[str, ...] = ("atpg",)
    wall_seconds: float = 0.0
    #: where the checking ran: ``in-process`` or ``daemon``.
    source: str = "in-process"
    #: service-side execution details (worker id, warm stats) when daemon-run.
    service: Optional[Dict[str, object]] = None

    @property
    def disagreements(self) -> Tuple[str, ...]:
        """Property names whose engines returned conflicting verdicts."""
        return tuple(r.name for r in self.results if r.disagreement)

    @property
    def exit_code(self) -> int:
        """The CLI exit-code contract: 1 on any failure or disagreement."""
        failing = any(r.failed for r in self.results)
        return 1 if failing or self.disagreements else 0

    def aggregate(self, key: str) -> int:
        """Sum an integer statistic over all results and engine details.

        The service layer uses this for warm-path accounting
        (``models_reused``, ``kb_hits``, ...) without caring which execution
        path produced the report.
        """
        total = 0
        for result in self.results:
            value = result.stats.get(key)
            if isinstance(value, (int, float)):
                total += int(value)
            for engine in result.engines:
                stats = engine.get("stats")
                if isinstance(stats, Mapping):
                    value = stats.get(key)
                    if isinstance(value, (int, float)):
                        total += int(value)
        return total

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "schema": REPORT_SCHEMA,
            "source": self.source,
            "engines": list(self.engines),
            "wall_seconds": round(self.wall_seconds, 6),
            "exit_code": self.exit_code,
            "disagreements": list(self.disagreements),
            "results": [result.to_dict() for result in self.results],
        }
        if self.service is not None:
            payload["service"] = dict(self.service)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CheckReport":
        if not _schema_compatible(payload.get("schema"), REPORT_SCHEMA):
            raise RequestError(
                "incompatible report schema %r (expected %s)"
                % (payload.get("schema"), REPORT_SCHEMA)
            )
        service = payload.get("service")
        return cls(
            results=tuple(
                PropertyVerdict.from_dict(item) for item in payload.get("results") or []
            ),
            engines=tuple(str(e) for e in payload.get("engines") or ()),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            source=str(payload.get("source", "in-process")),
            service=dict(service) if isinstance(service, Mapping) else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "CheckReport":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise RequestError("report is not valid JSON: %s" % (exc,)) from exc
        return cls.from_dict(payload)

    def summary(self) -> str:
        """A short human-readable rendering (used by ``repro submit``)."""
        lines = []
        for result in self.results:
            line = "property %s (%s): %s" % (result.name, result.kind, result.status)
            if result.winner:
                line += " [winner: %s]" % result.winner
            lines.append(line)
            if result.trace is not None:
                lines.append(
                    "  trace: %d frame(s), goal at frame %s"
                    % (len(result.trace.get("inputs", ())), result.trace.get("target_frame"))
                )
            if result.disagreement:
                lines.append("  ENGINES DISAGREE: %s" % ", ".join(result.disagreement))
        lines.append(
            "%d propert%s checked in %.3fs (%s)"
            % (
                len(self.results),
                "y" if len(self.results) == 1 else "ies",
                self.wall_seconds,
                self.source,
            )
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass
class RequestOutcome:
    """The raw objects one executed request produced, plus the unified report.

    The CLI keeps printing its classic formats from ``results`` / ``batch``;
    everything else should use ``report``.
    """

    request: CheckRequest
    circuit: Circuit
    report: CheckReport
    #: single-engine path only: the checker's native results.
    results: Optional[List[CheckResult]] = None
    #: portfolio/batch path only: the batch runner's native report.
    batch: Optional[object] = None


def clamp_to_deadline(request: CheckRequest,
                      deadline_seconds: Optional[float]) -> CheckRequest:
    """Fold an end-to-end deadline into the request's engine time budget.

    The one clamp rule every execution path shares: the service worker
    applies it to forwarded jobs, and the client's in-process fallback
    applies it before running locally -- so ``--deadline`` bounds the
    solver itself no matter which path answers.  A request whose own
    ``time_budget`` is already tighter is returned unchanged.
    """
    if deadline_seconds is None:
        return request
    remaining = max(0.01, float(deadline_seconds))
    if request.time_budget is None or request.time_budget > remaining:
        return replace(request, time_budget=remaining)
    return request


def check(
    request: CheckRequest,
    *,
    design_cache: Optional[MutableMapping[Tuple, ResolvedDesign]] = None,
) -> CheckReport:
    """Check a request in-process and return the unified report.

    The stable public entry point: routes through the classic single-engine
    checker or the portfolio/batch machinery exactly as ``repro check``
    does, based on the request's own knobs.
    """
    return run_request(request, design_cache=design_cache).report


def check_batch(
    request: CheckRequest,
    *,
    design_cache: Optional[MutableMapping[Tuple, ResolvedDesign]] = None,
) -> CheckReport:
    """Check a request through the portfolio/batch machinery unconditionally.

    Use this when per-engine details, worker fan-out or compare mode are
    wanted even for a single default-engine request.
    """
    return run_request(
        request, design_cache=design_cache, force_batch=True
    ).report


def run_request(
    request: CheckRequest,
    *,
    design_cache: Optional[MutableMapping[Tuple, ResolvedDesign]] = None,
    force_batch: bool = False,
) -> RequestOutcome:
    """Execute a request and return both raw and unified outcomes."""
    from repro.portfolio.engines import available_engines

    for name in request.engines:
        if name not in available_engines():
            raise RequestError(
                "unknown engine %r (available: %s)"
                % (name, ", ".join(available_engines()))
            )
    resolved = resolve_design(request.circuit, design_cache)
    environment = request.build_environment()
    if environment is None:
        environment = resolved.environment
    initial_state = request.initial_state_mapping()
    if initial_state is None:
        initial_state = resolved.initial_state
    specs = request.properties or resolved.default_properties
    if not specs:
        raise RequestError(
            "request has no properties and the circuit ref supplies no default"
        )
    max_frames = request.max_frames
    if max_frames is None:
        max_frames = resolved.default_max_frames
    if max_frames is not None and request.max_frames is None:
        request = replace(request, max_frames=max_frames)

    if force_batch or request.uses_portfolio:
        return _run_batch(request, resolved.circuit, environment, initial_state, specs)
    return _run_single(request, resolved.circuit, environment, initial_state, specs)


def _run_single(
    request: CheckRequest,
    circuit: Circuit,
    environment: Optional[Environment],
    initial_state: Optional[Dict[str, int]],
    specs: Sequence[PropertySpec],
) -> RequestOutcome:
    """The classic deterministic path: one checker, properties in order."""
    started = time.perf_counter()
    checker = AssertionChecker(
        circuit,
        environment=environment,
        initial_state=initial_state,
        options=CheckerOptions.from_request(request),
    )
    results = []
    for spec in specs:
        results.append(checker.check(spec.to_property(), max_frames=spec.max_frames))
    wall = time.perf_counter() - started
    verdicts = tuple(_verdict_from_result(result) for result in results)
    report = CheckReport(
        results=verdicts,
        engines=tuple(request.engines),
        wall_seconds=wall,
    )
    return RequestOutcome(
        request=request, circuit=circuit, report=report, results=results
    )


def _run_batch(
    request: CheckRequest,
    circuit: Circuit,
    environment: Optional[Environment],
    initial_state: Optional[Dict[str, int]],
    specs: Sequence[PropertySpec],
) -> RequestOutcome:
    """The portfolio/batch path (mirrors the classic ``repro check`` flags)."""
    from repro.portfolio import BatchJob, BatchOptions, BatchRunner

    jobs = [
        BatchJob(
            spec.name,
            circuit,
            spec.to_property(),
            environment=environment,
            initial_state=initial_state,
            max_frames=spec.max_frames,
            seed=spec.seed,
        )
        for spec in specs
    ]
    batch_report = BatchRunner(BatchOptions.from_request(request)).run(jobs)
    verdicts = tuple(_verdict_from_batch_item(item) for item in batch_report.items)
    report = CheckReport(
        results=verdicts,
        engines=tuple(batch_report.engines),
        wall_seconds=batch_report.wall_seconds,
    )
    return RequestOutcome(
        request=request, circuit=circuit, report=report, batch=batch_report
    )


def _verdict_from_result(result: CheckResult) -> PropertyVerdict:
    stats = statistics_to_dict(result.statistics)
    stats["cpu_seconds"] = round(result.statistics.cpu_seconds, 6)
    return PropertyVerdict(
        name=result.prop.name,
        kind="assertion" if result.prop.is_assertion else "witness",
        status=result.status.value,
        conclusive=result.status.is_conclusive,
        winner="atpg" if result.status.is_conclusive else None,
        frames_explored=result.frames_explored,
        wall_seconds=result.statistics.cpu_seconds,
        trace=(
            counterexample_to_dict(result.counterexample)
            if result.counterexample is not None
            else None
        ),
        stats=stats,
    )


def _verdict_from_batch_item(item) -> PropertyVerdict:
    result = item.result
    return PropertyVerdict(
        name=result.prop_name,
        kind=result.kind,
        status=result.status.value,
        conclusive=result.conclusive,
        winner=result.winner,
        wall_seconds=result.wall_seconds,
        trace=(
            counterexample_to_dict(result.counterexample)
            if result.counterexample is not None
            else None
        ),
        stats={},
        engines=tuple(engine.to_dict() for engine in result.engine_results),
        seed=item.seed,
        disagreement=tuple(result.disagreement),
    )


__all__ = [
    "REQUEST_SCHEMA",
    "REPORT_SCHEMA",
    "CheckReport",
    "CheckRequest",
    "CheckStatus",
    "CircuitRef",
    "PropertySpec",
    "PropertyVerdict",
    "RequestError",
    "RequestOutcome",
    "ResolvedDesign",
    "build_request",
    "check",
    "check_batch",
    "clamp_to_deadline",
    "resolve_design",
    "run_request",
]
