"""Fanning (circuit, property) jobs across a worker pool.

The checker loop in :mod:`repro.checker.engine` decides one property on one
circuit; a verification run in practice is hundreds of such jobs.
:class:`BatchRunner` spreads a job list across a ``multiprocessing`` pool
(one portfolio per job) and produces a structured, JSON-serialisable
:class:`BatchReport`:

* result ordering is deterministic -- reports always follow the submission
  order, regardless of which worker finished first;
* per-job RNG seeds are derived from a single base seed
  (``base_seed + job index``) unless the job pins its own, so a batch is
  bit-for-bit reproducible in CI;
* workers are plain (non-daemonic) processes fed from a task queue -- not a
  ``multiprocessing.Pool``, whose daemonic workers may not fork children --
  so every job's portfolio can still race its engines in separate processes
  and wall-clock budgets stay enforced by cancellation under ``jobs > 1``.
"""

from __future__ import annotations

import json
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.checker.result import CheckStatus
from repro.netlist.circuit import Circuit
from repro.portfolio.checker import (
    PortfolioChecker,
    PortfolioOptions,
    drain_queue,
    fork_context,
)
from repro.portfolio.engines import Engine, EngineBudget
from repro.portfolio.result import EngineResult, PortfolioResult
from repro.properties.environment import Environment
from repro.properties.spec import Property

#: JSON schema tag of the batch report (bump on incompatible change).
REPORT_SCHEMA = "repro-batch-report/v1"


@dataclass
class BatchJob:
    """One (circuit, property) work item."""

    job_id: str
    circuit: Circuit
    prop: Property
    environment: Optional[Environment] = None
    initial_state: Optional[Mapping[str, int]] = None
    #: per-job unrolling bound; ``None`` inherits the batch budget.
    max_frames: Optional[int] = None
    #: per-job RNG seed; ``None`` derives one from the batch base seed.
    seed: Optional[int] = None


@dataclass
class BatchOptions:
    """Configuration of a batch run."""

    #: registry names or ready-made :class:`Engine` adapters.
    engines: Sequence[Union[str, Engine]] = ("atpg",)
    budget: EngineBudget = field(default_factory=EngineBudget)
    #: worker processes; 1 runs inline (and lets the portfolio race).
    jobs: int = 1
    #: base RNG seed; job ``i`` runs with ``base_seed + i`` unless pinned.
    #: ``None`` (the default) derives it from ``budget.seed``, so configuring
    #: a seed in either place works.
    base_seed: Optional[int] = None
    #: run every engine to completion for cross-engine comparison.
    run_all: bool = False
    #: incremental unrolled-model reuse in the ATPG engine.  Jobs that share
    #: one circuit object and land on the same worker also share the cached
    #: skeleton across properties (monitor logic is absorbed incrementally).
    incremental: bool = True
    #: cross-bound search learning in the ATPG engine (illegal cubes and
    #: proven-FAIL targets persist on the cached models, so grouped jobs
    #: sharing a circuit also share what earlier properties learned).
    learning: bool = True
    #: path of a persistent knowledge base (:mod:`repro.kb`) threaded into
    #: the ATPG engine: workers open the store read-mostly (one load per
    #: cached model) and flush learned facts after every circuit group, so
    #: concurrent batches accumulate into one store (merges commute).
    kb_path: Optional[str] = None

    @classmethod
    def from_request(cls, request) -> "BatchOptions":
        """Adapter over the unified :class:`repro.api.CheckRequest`.

        The request carries the only authoritative knob list; this maps it
        onto the batch runner's shape, configuring an
        :class:`~repro.portfolio.engines.AtpgEngine` adapter in place of the
        bare ``"atpg"`` name when checker-specific knobs (``fsm_guidance``)
        are set.  Duck-typed to keep layering one-way.
        """
        from repro.portfolio.engines import AtpgEngine, EngineBudget

        configured = tuple(
            AtpgEngine.from_request(request)
            if name == "atpg" and request.fsm_guidance
            else name
            for name in request.engines
        )
        return cls(
            engines=configured,
            budget=EngineBudget.from_request(request),
            jobs=request.jobs,
            run_all=request.compare,
            incremental=request.incremental,
            learning=request.learning,
            kb_path=request.kb_path,
        )


@dataclass
class BatchItem:
    """One job's portfolio outcome inside a batch report."""

    job_id: str
    seed: int
    result: PortfolioResult

    def to_dict(self) -> Dict[str, object]:
        payload = self.result.to_dict()
        payload["job_id"] = self.job_id
        payload["seed"] = self.seed
        return payload


@dataclass
class BatchReport:
    """Structured outcome of a whole batch, ordered by submission."""

    engines: List[str]
    items: List[BatchItem]
    wall_seconds: float = 0.0
    base_seed: int = 2000
    #: resilience counters of the run (additive to ``repro-batch-report/v1``):
    #: ``worker_deaths`` (pool workers that exited nonzero), ``requeued``
    #: (jobs re-run inline after their worker died without reporting) and
    #: ``lost`` (jobs that still produced no result -- always 0 unless the
    #: inline requeue itself was impossible).
    resilience: Dict[str, int] = field(default_factory=dict)

    @property
    def disagreements(self) -> List[str]:
        """Job ids where engines returned conflicting verdicts."""
        return [item.job_id for item in self.items if item.result.disagreement]

    @property
    def inconclusive(self) -> List[str]:
        """Job ids where no engine reached a verdict."""
        return [item.job_id for item in self.items if not item.result.conclusive]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "engines": list(self.engines),
            "base_seed": self.base_seed,
            "jobs": len(self.items),
            "wall_seconds": round(self.wall_seconds, 6),
            "disagreements": self.disagreements,
            "inconclusive": self.inconclusive,
            "resilience": dict(self.resilience),
            "results": [item.to_dict() for item in self.items],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ----------------------------------------------------------------------
def _job_budget(budget: EngineBudget, job: BatchJob, seed: int) -> EngineBudget:
    """Specialise the batch budget with the job's bound and derived seed."""
    from dataclasses import replace

    overrides: Dict[str, object] = {"seed": seed}
    if job.max_frames is not None:
        overrides["max_frames"] = job.max_frames
    return replace(budget, **overrides)


def _engine_names(engines: Sequence[Union[str, Engine]]) -> List[str]:
    return [e if isinstance(e, str) else e.name for e in engines]


def _configure_engines(
    engines: Sequence[Union[str, Engine]], incremental: bool, learning: bool = True,
    kb_path: Optional[str] = None,
) -> Sequence[Union[str, Engine]]:
    """Materialise per-batch engine configuration (ATPG toggles).

    The batch flags apply to the registry name ``"atpg"`` and to
    :class:`AtpgEngine` instances that did not pin their own ``incremental``
    / ``learning`` / ``kb_path`` arguments; an engine constructed with an
    explicit choice wins.
    """
    if incremental and learning and kb_path is None:
        return engines  # the checker's defaults are already on
    from repro.portfolio.engines import AtpgEngine

    incremental_override = None if incremental else False
    learning_override = None if learning else False
    configured: List[Union[str, Engine]] = []
    for engine in engines:
        if engine == "atpg":
            configured.append(
                AtpgEngine(
                    incremental=incremental_override, learning=learning_override,
                    kb_path=kb_path,
                )
            )
        elif isinstance(engine, AtpgEngine):
            new_incremental = engine.incremental
            new_learning = engine.learning
            new_kb_path = engine.kb_path
            if not incremental and new_incremental is None:
                new_incremental = False
            if not learning and new_learning is None:
                new_learning = False
            if kb_path is not None and new_kb_path is None:
                new_kb_path = kb_path
            unchanged = (new_incremental, new_learning, new_kb_path) == (
                engine.incremental, engine.learning, engine.kb_path
            )
            if unchanged:
                configured.append(engine)
            else:
                configured.append(
                    AtpgEngine(
                        engine.options,
                        incremental=new_incremental,
                        learning=new_learning,
                        kb_path=new_kb_path,
                    )
                )
        else:
            configured.append(engine)
    return configured


def _run_batch_job(payload: Tuple[int, BatchJob, Sequence[Union[str, Engine]],
                                  EngineBudget, int, bool, bool, bool,
                                  Optional[str]]) -> BatchItem:
    """Run one job's portfolio (in the worker or inline) and wrap the outcome."""
    (_index, job, engines, budget, seed, run_all, incremental, learning,
     kb_path) = payload
    try:
        checker = PortfolioChecker(
            job.circuit,
            engines=_configure_engines(engines, incremental, learning, kb_path),
            environment=job.environment,
            initial_state=job.initial_state,
            options=PortfolioOptions(
                budget=_job_budget(budget, job, seed),
                run_all=run_all,
            ),
        )
        result = checker.check(job.prop)
    except Exception as exc:
        # One broken job must not take down the batch; surface the failure
        # in the report instead.
        return _error_item(job, engines, seed, "%s: %s" % (type(exc).__name__, exc))
    return BatchItem(job_id=job.job_id, seed=seed, result=result)


def _error_item(job: BatchJob, engines: Sequence[Union[str, Engine]],
                seed: int, message: str) -> BatchItem:
    """A placeholder item for a job that produced no portfolio result."""
    return BatchItem(
        job_id=job.job_id,
        seed=seed,
        result=PortfolioResult(
            prop_name=job.prop.name,
            kind="assertion" if job.prop.is_assertion else "witness",
            status=CheckStatus.ABORTED,
            winner=None,
            engine_results=[
                EngineResult(
                    engine=name, status=CheckStatus.ABORTED, conclusive=False,
                    error=message,
                )
                for name in _engine_names(engines)
            ],
        ),
    )


def _batch_worker(task_queue, result_queue) -> None:
    """Worker loop: pop payload *groups* until the ``None`` sentinel.

    Each task is the list of payloads sharing one circuit.  Shipping them
    together matters twice: the group is pickled in one message, so every
    job in it unpickles the *same* circuit object, and the jobs then run
    back-to-back in this process -- which is exactly what the process-wide
    :class:`~repro.checker.incremental.UnrolledModelCache` (and the learned
    cubes riding its models) needs to hit across properties.
    """
    from repro.kb import flush_attached_stores

    while True:
        group = task_queue.get()
        if group is None:
            return
        for payload in group:
            result_queue.put((payload[0], _run_batch_job(payload)))
        # Group-completion flush: a circuit group's learned facts land on
        # disk before the next group starts (no-op without a knowledge
        # base); merge-on-write means concurrent workers cannot clobber
        # each other's flushes.
        flush_attached_stores()


class BatchRunner:
    """Runs a list of :class:`BatchJob` items and collects a report."""

    def __init__(self, options: Optional[BatchOptions] = None):
        self.options = options if options is not None else BatchOptions()
        if self.options.jobs < 1:
            raise ValueError("jobs must be >= 1")

    def run(self, jobs: Sequence[BatchJob]) -> BatchReport:
        """Execute every job and return the ordered report."""
        options = self.options
        started = time.perf_counter()
        base_seed = (
            options.base_seed if options.base_seed is not None else options.budget.seed
        )
        payloads = [
            (
                index,
                job,
                tuple(options.engines),
                options.budget,
                job.seed if job.seed is not None else base_seed + index,
                options.run_all,
                options.incremental,
                options.learning,
                options.kb_path,
            )
            for index, job in enumerate(jobs)
        ]
        pool_size = self._pool_size(jobs)
        resilience = {"worker_deaths": 0, "requeued": 0, "lost": 0}
        if pool_size > 1:
            collected, deaths = self._run_workers(payloads, pool_size)
            resilience["worker_deaths"] = deaths
            for payload in payloads:
                if payload[0] in collected:
                    continue
                # A worker died without reporting this job; re-run it inline
                # once so a single crash never punches a hole in the report.
                resilience["requeued"] += 1
                collected[payload[0]] = _run_batch_job(payload)
        else:
            collected = {p[0]: _run_batch_job(p) for p in payloads}
        resilience["lost"] = sum(
            1 for index in range(len(payloads)) if collected.get(index) is None
        )
        items = [
            collected.get(index) or self._lost_item(payloads[index])
            for index in range(len(payloads))
        ]
        return BatchReport(
            engines=_engine_names(options.engines),
            items=items,
            wall_seconds=time.perf_counter() - started,
            base_seed=base_seed,
            resilience=resilience,
        )

    @staticmethod
    def _group_by_circuit(payloads, pool_size: int = 1) -> List[List[tuple]]:
        """Partition payloads into per-circuit task chunks (submission order).

        Jobs sharing a circuit ship together, so a worker unpickles the
        circuit once per chunk and runs the jobs back-to-back -- which is
        what the process-wide model cache (and the learned facts attached
        to the cached models) needs to hit across properties.  Oversized
        groups are *chunked* so a batch dominated by one circuit (the
        common shape) still spreads across all ``pool_size`` workers
        instead of serialising on one; each chunk keeps the single-pickle
        circuit sharing, and a worker crash loses at most one chunk.
        Report ordering is unaffected: results are reassembled by payload
        index.
        """
        groups: Dict[int, List[tuple]] = {}
        ordered: List[List[tuple]] = []
        for payload in payloads:
            circuit_id = id(payload[1].circuit)
            group = groups.get(circuit_id)
            if group is None:
                group = groups[circuit_id] = []
                ordered.append(group)
            group.append(payload)
        if pool_size <= 1:
            return ordered
        # Even chunking: enough tasks to occupy every worker, while keeping
        # chunks as large as possible (cache hits scale with chunk length).
        chunk_size = max(1, -(-len(payloads) // pool_size))
        chunked: List[List[tuple]] = []
        for group in ordered:
            for start in range(0, len(group), chunk_size):
                chunked.append(group[start:start + chunk_size])
        return chunked

    # ------------------------------------------------------------------
    def _run_workers(
        self, payloads, pool_size: int
    ) -> Tuple[Dict[int, BatchItem], int]:
        """Fan payload groups across non-daemonic worker processes.

        Results are drained while the workers run (never after join: a child
        blocks on exit until its queue buffer is read), and submission order
        is restored from the payload index afterwards.  Returns the collected
        items plus the number of workers that died (nonzero exit codes).
        """
        ctx = fork_context()
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        for group in self._group_by_circuit(payloads, pool_size):
            task_queue.put(group)
        for _ in range(pool_size):
            task_queue.put(None)  # one stop sentinel per worker
        workers = [
            ctx.Process(target=_batch_worker, args=(task_queue, result_queue))
            for _ in range(pool_size)
        ]
        for worker in workers:
            worker.start()

        collected: Dict[int, BatchItem] = {}
        while len(collected) < len(payloads):
            try:
                index, item = result_queue.get(timeout=0.1)
            except queue_module.Empty:
                if not any(worker.is_alive() for worker in workers):
                    # Workers are gone (crash or clean exit); pick up results
                    # flushed in the race window, then report what we have.
                    drain_queue(result_queue, collected)
                    break
                continue
            collected[index] = item
        # Never read from the queue after a terminate() below: a worker
        # killed mid-write leaves a truncated payload behind.
        deaths = 0
        for worker in workers:
            worker.join(timeout=10.0)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                deaths += 1
            elif worker.exitcode not in (0, None):
                deaths += 1
        return collected, deaths

    @staticmethod
    def _lost_item(payload) -> BatchItem:
        """Placeholder for a job whose worker died without reporting."""
        job, engines, seed = payload[1], payload[2], payload[4]
        return _error_item(
            job, engines, seed, "batch worker died before reporting a result"
        )

    def _pool_size(self, jobs: Sequence[BatchJob]) -> int:
        if fork_context() is None:  # pragma: no cover - non-POSIX platforms
            return 1
        return max(1, min(self.options.jobs, len(jobs)))
