"""Racing a portfolio of engines on one property.

Complementary engines have complementary failure modes: BDD reachability is
instant on small state spaces but explodes on wide datapaths, the word-level
ATPG engine shines exactly there, SAT is robust but slow on deep UNSAT
unrollings, and random simulation stumbles on easy violations in
microseconds.  Rather than picking one heuristic up front, a
:class:`PortfolioChecker` runs several engines on the same property and
returns the first conclusive answer.

Two execution modes:

* ``process`` -- every engine runs in its own forked worker; the first
  conclusive result wins and the losers are terminated immediately.  This is
  real cancellation (a diverging BDD traversal is killed mid-flight) and also
  enforces the per-engine wall-clock budget.
* ``sequential`` -- engines run in order in the current process, stopping at
  the first conclusive answer.  The fallback on platforms without ``fork``.
  A running engine cannot be preempted in this mode: an inconclusive engine
  that overran its per-engine cap is merely flagged ``timed_out`` after the
  fact (which is why ``auto`` resolves to ``process`` whenever a time budget
  is set, even for a single engine); the step budgets
  (:class:`~repro.portfolio.engines.EngineBudget`) still apply inside each
  engine.  Batch-runner workers are plain non-daemonic processes, so even
  nested portfolios resolve to ``process`` mode and stay budget-enforced.

With ``run_all=True`` every engine runs to completion (no early cancel) so
the per-engine results can be compared -- that is the differential-testing /
benchmarking configuration, where
:attr:`~repro.portfolio.result.PortfolioResult.disagreement` flags soundness
bugs.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.checker.result import CheckStatus
from repro.netlist.circuit import Circuit
from repro.portfolio.engines import Engine, EngineBudget, make_engine
from repro.portfolio.result import EngineResult, PortfolioResult
from repro.properties.environment import Environment
from repro.properties.spec import Property


@dataclass
class PortfolioOptions:
    """Configuration of a portfolio race."""

    budget: EngineBudget = field(default_factory=EngineBudget)
    #: ``"process"``, ``"sequential"`` or ``"auto"`` (process when ``fork``
    #: is available and more than one engine competes).
    mode: str = "auto"
    #: run every engine to completion instead of cancelling after the first
    #: conclusive answer (for disagreement detection and benchmarking).
    run_all: bool = False


def fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def can_spawn_engines() -> bool:
    """Whether this process may fork engine-race children.

    Daemonic processes (e.g. the verification service's per-circuit
    workers) are forbidden children by multiprocessing; a budgeted check
    running inside one must race sequentially instead of crashing.
    """
    return fork_context() is not None and not multiprocessing.current_process().daemon


def _run_engine_to_queue(result_queue, index, engine, circuit, prop,
                         environment, initial_state, budget):
    """Worker body: run one engine and ship its result to the parent."""
    result = engine.run(circuit, prop, environment, initial_state, budget)
    result_queue.put((index, result))


def drain_queue(result_queue, collected: Dict[int, object]) -> None:
    """Collect whatever complete results are sitting in a queue, non-blocking.

    Must only be called while the writers are alive or have exited cleanly:
    a worker killed mid-write leaves a truncated pickle in the pipe, and
    reading it can block or raise.  Any deserialisation error therefore just
    stops the drain -- one broken payload must not take down the layer.
    """
    while True:
        try:
            index, result = result_queue.get_nowait()
        except queue_module.Empty:
            return
        except Exception:  # truncated/corrupt payload, closed queue, ...
            return
        collected.setdefault(index, result)


class PortfolioChecker:
    """Checks properties by racing several engines (first answer wins).

    ``engines`` accepts registry names (``"atpg"``, ``"bdd"``, ``"sat"``,
    ``"random"``) or ready-made :class:`~repro.portfolio.engines.Engine`
    objects; results are always reported in the given engine order,
    regardless of finishing order.
    """

    def __init__(
        self,
        circuit: Circuit,
        engines: Sequence[Union[str, Engine]] = ("atpg", "bdd"),
        environment: Optional[Environment] = None,
        initial_state: Optional[Mapping[str, int]] = None,
        options: Optional[PortfolioOptions] = None,
    ):
        circuit.validate()
        if not engines:
            raise ValueError("portfolio needs at least one engine")
        self.circuit = circuit
        self.engines: List[Engine] = [
            make_engine(engine) if isinstance(engine, str) else engine
            for engine in engines
        ]
        names = [engine.name for engine in self.engines]
        if len(set(names)) != len(names):
            raise ValueError("duplicate engines in portfolio: %s" % (names,))
        self.environment = environment
        self.initial_state = dict(initial_state) if initial_state else None
        self.options = options if options is not None else PortfolioOptions()

    # ------------------------------------------------------------------
    def check(self, prop: Property) -> PortfolioResult:
        """Race the configured engines on one property."""
        started = time.perf_counter()
        mode = self._resolve_mode()
        if mode == "process":
            results = self._race_processes(prop)
        else:
            results = self._run_sequential(prop)
        winner = self._pick_winner(results)
        status = (
            results[[r.engine for r in results].index(winner)].status
            if winner is not None
            else CheckStatus.ABORTED
        )
        return PortfolioResult(
            prop_name=prop.name,
            kind="assertion" if prop.is_assertion else "witness",
            status=status,
            winner=winner,
            engine_results=results,
            wall_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def _resolve_mode(self) -> str:
        mode = self.options.mode
        if mode not in ("auto", "process", "sequential"):
            raise ValueError("unknown portfolio mode %r" % (mode,))
        if mode == "auto":
            needs_process = (
                len(self.engines) > 1
                # A wall-clock budget is only enforceable by terminating the
                # worker, so a budgeted single-engine run still forks.
                or self.options.budget.time_seconds is not None
            )
            if needs_process and can_spawn_engines():
                return "process"
            return "sequential"
        if mode == "process" and not can_spawn_engines():
            return "sequential"
        return mode

    def _pick_winner(self, results: List[EngineResult]) -> Optional[str]:
        """First conclusive engine by completion time (ties: engine order)."""
        conclusive = [r for r in results if r.verdict is not None]
        if not conclusive:
            return None
        return min(conclusive, key=lambda r: r.wall_seconds).engine

    # ------------------------------------------------------------------
    def _run_sequential(self, prop: Property) -> List[EngineResult]:
        budget = self.options.budget
        results: List[EngineResult] = []
        finished = False
        for engine in self.engines:
            if finished:
                results.append(
                    EngineResult(
                        engine=engine.name,
                        status=CheckStatus.ABORTED,
                        conclusive=False,
                        cancelled=True,
                    )
                )
                continue
            # Each engine compiles monitor logic into the circuit it is
            # given; hand every engine a private copy so runs stay isolated.
            circuit = pickle.loads(pickle.dumps(self.circuit))
            result = engine.run(
                circuit, prop, self.environment, self.initial_state, budget
            )
            # This mode cannot preempt a running engine; flag an
            # inconclusive overrun of the per-engine cap after the fact (a
            # conclusive answer is kept -- discarding it would be worse).
            if (
                budget.time_seconds is not None
                and result.verdict is None
                and result.wall_seconds > budget.time_seconds
            ):
                result.timed_out = True
            results.append(result)
            if result.verdict is not None and not self.options.run_all:
                finished = True
        return results

    # ------------------------------------------------------------------
    def _race_processes(self, prop: Property) -> List[EngineResult]:
        ctx = fork_context()
        budget = self.options.budget
        result_queue = ctx.Queue()
        processes = []
        for index, engine in enumerate(self.engines):
            process = ctx.Process(
                target=_run_engine_to_queue,
                args=(
                    result_queue, index, engine, self.circuit, prop,
                    self.environment, self.initial_state, budget,
                ),
                daemon=True,
            )
            process.start()
            processes.append(process)

        started = time.perf_counter()
        deadline = (
            started + budget.time_seconds if budget.time_seconds is not None else None
        )
        collected: Dict[int, EngineResult] = {}
        winner_seen = False
        timed_out = False
        while len(collected) < len(self.engines):
            if deadline is not None and time.perf_counter() >= deadline:
                timed_out = True
                break
            try:
                index, result = result_queue.get(timeout=0.05)
            except queue_module.Empty:
                if all(not process.is_alive() for process in processes):
                    # Every worker exited; drain whatever is still in flight.
                    drain_queue(result_queue, collected)
                    break
                continue
            collected[index] = result
            if result.verdict is not None and not self.options.run_all:
                winner_seen = True
                break

        # Pick up results that completed in the same window BEFORE stopping
        # anyone -- after terminate() the pipe may hold a truncated pickle
        # and must not be read again.
        drain_queue(result_queue, collected)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)
        result_queue.close()
        result_queue.cancel_join_thread()

        results: List[EngineResult] = []
        for index, engine in enumerate(self.engines):
            if index in collected:
                results.append(collected[index])
            elif winner_seen:
                results.append(
                    EngineResult(
                        engine=engine.name,
                        status=CheckStatus.ABORTED,
                        conclusive=False,
                        wall_seconds=time.perf_counter() - started,
                        cancelled=True,
                    )
                )
            elif timed_out:
                results.append(
                    EngineResult(
                        engine=engine.name,
                        status=CheckStatus.ABORTED,
                        conclusive=False,
                        wall_seconds=time.perf_counter() - started,
                        timed_out=True,
                    )
                )
            else:
                results.append(
                    EngineResult(
                        engine=engine.name,
                        status=CheckStatus.ABORTED,
                        conclusive=False,
                        wall_seconds=time.perf_counter() - started,
                        error="engine worker exited without reporting a result",
                    )
                )
        return results
