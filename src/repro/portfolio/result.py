"""Normalized results for the engine portfolio.

Every backend engine (word-level ATPG, BDD reachability, SAT bounded model
checking, random simulation) reports its own result dataclass with its own
cost counters.  The portfolio layer needs one shape it can race, compare and
serialise, so the adapters in :mod:`repro.portfolio.engines` normalise each
backend verdict into an :class:`EngineResult`:

* ``status`` uses the shared :class:`~repro.checker.result.CheckStatus`;
* ``conclusive`` is the *engine-aware* notion of a final answer -- random
  simulation reports ``HOLDS`` when its budget runs out, but that is not a
  proof, so its adapter marks the result inconclusive;
* ``counterexample`` is always a validated
  :class:`~repro.checker.result.Counterexample` (SAT traces are replayed
  through the concrete simulator first);
* ``stats`` is a flat JSON-friendly dict of the engine's native counters.

:class:`PortfolioResult` aggregates the per-engine results of one property
together with the winning engine and cross-engine disagreement detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checker.report import counterexample_to_dict
from repro.checker.result import CheckStatus, Counterexample

#: Statuses meaning "the goal state is reachable" under normalisation.
_REACHABLE = (CheckStatus.FAILS, CheckStatus.WITNESS_FOUND)
#: Statuses meaning "the goal state was not reached / cannot be reached".
_UNREACHABLE = (CheckStatus.HOLDS, CheckStatus.WITNESS_NOT_FOUND)


@dataclass
class EngineResult:
    """One engine's verdict on one property, in portfolio-normalised form."""

    #: registry name of the engine that produced this result.
    engine: str
    status: CheckStatus
    #: whether the engine considers this a final answer (see module docstring).
    conclusive: bool
    wall_seconds: float = 0.0
    counterexample: Optional[Counterexample] = None
    #: engine-native cost counters (decisions, BDD nodes, clauses, vectors...).
    stats: Dict[str, object] = field(default_factory=dict)
    #: the engine exceeded its wall-clock budget and was stopped.
    timed_out: bool = False
    #: another engine answered first and this one was cancelled.
    cancelled: bool = False
    #: the engine raised; the message is recorded instead of propagating.
    error: Optional[str] = None
    #: for an "unreachable" verdict: the number of frames it covers (the
    #: engine only searched counterexamples with ``target_frame < bound``).
    #: ``None`` means the verdict is an unbounded proof (BDD fixed point).
    bound: Optional[int] = None

    @property
    def verdict(self) -> Optional[str]:
        """``"reachable"`` / ``"unreachable"``, or ``None`` if inconclusive."""
        if not self.conclusive or self.error is not None:
            return None
        if self.status in _REACHABLE:
            return "reachable"
        if self.status in _UNREACHABLE:
            return "unreachable"
        return None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly description of this engine run."""
        payload: Dict[str, object] = {
            "engine": self.engine,
            "status": self.status.value,
            "conclusive": self.conclusive,
            "verdict": self.verdict,
            "wall_seconds": round(self.wall_seconds, 6),
            "stats": dict(self.stats),
        }
        if self.bound is not None:
            payload["bound"] = self.bound
        if self.timed_out:
            payload["timed_out"] = True
        if self.cancelled:
            payload["cancelled"] = True
        if self.error is not None:
            payload["error"] = self.error
        if self.counterexample is not None:
            payload["trace"] = counterexample_to_dict(self.counterexample)
        return payload


def detect_disagreement(results: List[EngineResult]) -> List[str]:
    """Names of engines whose conclusive verdicts genuinely conflict.

    Only conclusive results participate: a timed-out BDD run or an
    inconclusive random-simulation sweep cannot disagree with anything.
    Bounded and unbounded engines are compared soundly:

    * an unbounded "unreachable" proof (``bound is None``) conflicts with
      *any* "reachable" claim;
    * a bounded "unreachable within k frames" verdict only conflicts with a
      "reachable" result whose witness trace lands inside those k frames --
      an exact engine finding a deeper witness is expected, not a bug;
    * a "reachable" claim without a trace (the BDD engine decides state
      *sets*, not traces) cannot contradict a bounded verdict either way.

    Returns the conflicting engine names in portfolio order, or an empty
    list when every conclusive verdict is consistent.
    """
    reachable = [r for r in results if r.verdict == "reachable"]
    unreachable = [r for r in results if r.verdict == "unreachable"]
    conflicting = set()
    for absent in unreachable:
        for present in reachable:
            depth = (
                present.counterexample.target_frame
                if present.counterexample is not None
                else None
            )
            if absent.bound is None:
                # A proof of absence contradicts every claimed hit.
                conflict = True
            else:
                conflict = depth is not None and depth < absent.bound
            if conflict:
                conflicting.add(absent.engine)
                conflicting.add(present.engine)
    return [r.engine for r in results if r.engine in conflicting]


@dataclass
class PortfolioResult:
    """The outcome of racing a portfolio of engines on one property."""

    prop_name: str
    #: ``"assertion"`` or ``"witness"``.
    kind: str
    #: overall verdict: the winner's status, or ``ABORTED`` if nobody won.
    status: CheckStatus
    #: engine that produced the first conclusive answer, if any.
    winner: Optional[str]
    #: per-engine results, in the portfolio's configured engine order.
    engine_results: List[EngineResult] = field(default_factory=list)
    #: wall-clock time of the whole race (first conclusive answer wins).
    wall_seconds: float = 0.0

    @property
    def conclusive(self) -> bool:
        return self.winner is not None

    @property
    def counterexample(self) -> Optional[Counterexample]:
        """The winning engine's trace, or any available validated trace."""
        ranked = sorted(
            self.engine_results, key=lambda r: r.engine != self.winner
        )
        for result in ranked:
            if result.counterexample is not None and result.counterexample.validated:
                return result.counterexample
        return None

    @property
    def disagreement(self) -> List[str]:
        """Engines with conflicting conclusive verdicts (soundness alarm)."""
        return detect_disagreement(self.engine_results)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly description of the race."""
        return {
            "property": self.prop_name,
            "kind": self.kind,
            "status": self.status.value,
            "winner": self.winner,
            "wall_seconds": round(self.wall_seconds, 6),
            "disagreement": self.disagreement,
            "engines": [result.to_dict() for result in self.engine_results],
        }
