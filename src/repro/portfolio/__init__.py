"""Engine portfolio: race diverse checkers, batch jobs across workers.

The repo contains four complementary decision procedures for the same
question ("can this property be violated?"):

* the paper's word-level ATPG + modular arithmetic checker
  (:mod:`repro.checker.engine`),
* BDD symbolic reachability (:mod:`repro.baselines.bdd_checker`),
* SAT bounded model checking (:mod:`repro.baselines.sat_checker`),
* constrained random simulation (:mod:`repro.baselines.random_sim`).

This package wraps them behind one :class:`~repro.portfolio.engines.Engine`
protocol with a normalised :class:`~repro.portfolio.result.EngineResult`,
races them per property (:class:`~repro.portfolio.checker.PortfolioChecker`,
first conclusive answer wins, losers are cancelled) and fans many
(circuit, property) jobs across a process pool
(:class:`~repro.portfolio.batch.BatchRunner`) with deterministic ordering,
derived per-job seeds and structured JSON reports.

Quickstart::

    from repro.portfolio import BatchJob, BatchOptions, BatchRunner

    report = BatchRunner(BatchOptions(engines=("atpg", "bdd"), jobs=4)).run([
        BatchJob("overflow", circuit, Assertion("no_overflow", expr)),
        ...
    ])
    print(report.to_json())
"""

from repro.portfolio.batch import (
    REPORT_SCHEMA,
    BatchItem,
    BatchJob,
    BatchOptions,
    BatchReport,
    BatchRunner,
)
from repro.portfolio.checker import PortfolioChecker, PortfolioOptions
from repro.portfolio.engines import (
    ENGINE_REGISTRY,
    AtpgEngine,
    BddEngine,
    Engine,
    EngineBudget,
    RandomSimEngine,
    SatEngine,
    available_engines,
    make_engine,
)
from repro.portfolio.result import (
    EngineResult,
    PortfolioResult,
    detect_disagreement,
)

__all__ = [
    "REPORT_SCHEMA",
    "BatchItem",
    "BatchJob",
    "BatchOptions",
    "BatchReport",
    "BatchRunner",
    "PortfolioChecker",
    "PortfolioOptions",
    "ENGINE_REGISTRY",
    "AtpgEngine",
    "BddEngine",
    "Engine",
    "EngineBudget",
    "RandomSimEngine",
    "SatEngine",
    "available_engines",
    "make_engine",
    "EngineResult",
    "PortfolioResult",
    "detect_disagreement",
]
