"""Engine protocol and adapters wrapping the four checking backends.

The repo grew four independent ways to decide a property -- the paper's
word-level ATPG checker, BDD symbolic reachability, SAT bounded model
checking and random simulation -- each with its own constructor signature and
result type.  This module puts them behind one small protocol:

.. code-block:: python

    class Engine(Protocol):
        name: str
        can_prove: bool
        def run(circuit, prop, environment, initial_state, budget) -> EngineResult

Adapters never raise: backend exceptions are captured into
``EngineResult.error`` so one broken engine cannot take down a portfolio
race.  Budgets are normalised by :class:`EngineBudget` and mapped onto each
backend's native knobs (unrolling bound, BDD iteration/node limits, random
run counts and seed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Protocol

from repro.checker.engine import AssertionChecker, CheckerOptions
from repro.checker.result import CheckStatus, Counterexample
from repro.netlist.circuit import Circuit
from repro.portfolio.result import EngineResult
from repro.properties.environment import Environment
from repro.properties.spec import Property
from repro.simulation.simulator import Simulator


@dataclass(frozen=True)
class EngineBudget:
    """Per-engine resource budget, mapped onto each backend's native knobs.

    ``time_seconds`` is enforced by the portfolio's process-mode race (the
    engine is terminated when it expires); the step-style limits below are
    enforced inside the engines themselves.
    """

    #: wall-clock cap per engine; ``None`` means no cap.
    time_seconds: Optional[float] = None
    #: unrolling bound for the bounded engines (ATPG, SAT).
    max_frames: int = 8
    #: fixed-point iteration cap for the BDD engine.
    bdd_iterations: int = 256
    #: BDD node allocation cap (the memory-explosion guard).
    bdd_node_limit: int = 2_000_000
    #: independent runs for the random-simulation engine.
    random_runs: int = 64
    #: cycles per random-simulation run.
    random_cycles: int = 16
    #: lanes per bit-parallel batch (K) for the random-simulation engine;
    #: each lane is an independent run on the compiled kernel.
    sim_width: int = 64
    #: RNG seed threaded through the stochastic engines for reproducibility.
    seed: int = 2000

    @classmethod
    def from_request(cls, request) -> "EngineBudget":
        """Adapter over the unified :class:`repro.api.CheckRequest`.

        ``None`` request fields keep the budget's own defaults (duck-typed,
        like :meth:`repro.checker.engine.CheckerOptions.from_request`).
        """
        overrides = {}
        for name in ("max_frames", "seed", "sim_width", "random_runs",
                     "random_cycles", "bdd_iterations", "bdd_node_limit"):
            value = getattr(request, name, None)
            if value is not None:
                overrides[name] = value
        return cls(time_seconds=request.time_budget, **overrides)


class Engine(Protocol):
    """What the portfolio needs from a checking backend."""

    #: registry name (``atpg``, ``bdd``, ``sat``, ``random``).
    name: str
    #: whether an "unreachable" answer from this engine is a proof.  Random
    #: simulation can only ever find violations, never prove their absence.
    can_prove: bool

    def run(
        self,
        circuit: Circuit,
        prop: Property,
        environment: Optional[Environment],
        initial_state: Optional[Mapping[str, int]],
        budget: EngineBudget,
    ) -> EngineResult:
        """Decide ``prop`` on ``circuit`` within ``budget``; never raises."""
        ...


def _error_result(name: str, started: float, exc: Exception) -> EngineResult:
    return EngineResult(
        engine=name,
        status=CheckStatus.ABORTED,
        conclusive=False,
        wall_seconds=time.perf_counter() - started,
        error="%s: %s" % (type(exc).__name__, exc),
    )


class AtpgEngine:
    """Adapter for the paper's word-level ATPG :class:`AssertionChecker`.

    ``incremental`` toggles the shared unrolled-model reuse path (see
    :mod:`repro.checker.incremental`), ``learning`` the cross-bound search
    learning riding the cached models, and ``kb_path`` the persistent
    knowledge base (:mod:`repro.kb`) extending that learning across
    processes.  Left at ``None`` they defer to the ``options`` object
    (whose defaults are on / no store); passed explicitly they override it.
    Consecutive ``run`` calls against the *same circuit object* (the common
    batch shape) reuse the cached skeleton -- and its learned illegal cubes
    -- across properties.
    """

    name = "atpg"
    can_prove = True

    def __init__(
        self,
        options: Optional[CheckerOptions] = None,
        incremental: Optional[bool] = None,
        learning: Optional[bool] = None,
        kb_path: Optional[str] = None,
    ):
        self.options = options
        self.incremental = incremental
        self.learning = learning
        self.kb_path = kb_path

    @classmethod
    def from_request(cls, request) -> "AtpgEngine":
        """A fully configured adapter from the unified request type.

        Used when checker-specific request knobs (``fsm_guidance``) cannot
        ride on a bare registry name.
        """
        return cls(CheckerOptions.from_request(request))

    def run(self, circuit, prop, environment, initial_state, budget) -> EngineResult:
        started = time.perf_counter()
        try:
            options = self.options if self.options is not None else CheckerOptions()
            overrides = {"max_frames": budget.max_frames}
            if self.incremental is not None:
                overrides["incremental"] = self.incremental
            if self.learning is not None:
                overrides["learning"] = self.learning
            if self.kb_path is not None:
                overrides["kb_path"] = self.kb_path
            options = replace(options, **overrides)
            checker = AssertionChecker(
                circuit,
                environment=environment,
                initial_state=initial_state,
                options=options,
            )
            result = checker.check(prop)
        except Exception as exc:  # pragma: no cover - defensive
            return _error_result(self.name, started, exc)
        from repro.checker.report import statistics_to_dict

        stats = {"frames_explored": result.frames_explored,
                 "incremental": options.incremental,
                 "learning": options.learning and options.incremental}
        stats.update(statistics_to_dict(result.statistics))
        return EngineResult(
            engine=self.name,
            status=result.status,
            conclusive=result.status.is_conclusive,
            wall_seconds=time.perf_counter() - started,
            counterexample=result.counterexample,
            bound=budget.max_frames,
            stats=stats,
        )


class BddEngine:
    """Adapter for the BDD symbolic reachability baseline."""

    name = "bdd"
    can_prove = True

    def run(self, circuit, prop, environment, initial_state, budget) -> EngineResult:
        started = time.perf_counter()
        try:
            from repro.baselines.bdd_checker import BddSymbolicChecker

            checker = BddSymbolicChecker(
                circuit,
                environment=environment,
                initial_state=initial_state,
                max_iterations=budget.bdd_iterations,
                node_limit=budget.bdd_node_limit,
            )
            result = checker.check(prop)
        except Exception as exc:  # pragma: no cover - defensive
            return _error_result(self.name, started, exc)
        return EngineResult(
            engine=self.name,
            status=result.status,
            conclusive=result.status.is_conclusive,
            wall_seconds=time.perf_counter() - started,
            # The BDD engine decides reachability over state *sets*; it does
            # not produce an input trace.
            counterexample=None,
            stats={
                "iterations": result.iterations,
                "peak_nodes": result.peak_nodes,
                "reachable_nodes": result.reachable_nodes,
                "reachable_states": result.reachable_states,
                "peak_memory_mb": round(result.peak_memory_mb, 4),
            },
        )


class SatEngine:
    """Adapter for the bit-blasting SAT bounded model checker."""

    name = "sat"
    can_prove = True

    def run(self, circuit, prop, environment, initial_state, budget) -> EngineResult:
        started = time.perf_counter()
        try:
            from repro.baselines.sat_checker import SATBoundedChecker

            checker = SATBoundedChecker(
                circuit,
                environment=environment,
                initial_state=initial_state,
                max_frames=budget.max_frames,
            )
            result = checker.check(prop)
            counterexample = None
            if result.trace_inputs is not None and result.monitor_name is not None:
                counterexample = self._replay(
                    circuit, initial_state, result.trace_inputs,
                    result.monitor_name, result.goal_value,
                )
                if not counterexample.validated:
                    # The model did not survive concrete replay: the encoder
                    # over-approximated, so the verdict cannot be trusted.
                    return EngineResult(
                        engine=self.name,
                        status=CheckStatus.ABORTED,
                        conclusive=False,
                        wall_seconds=time.perf_counter() - started,
                        error="SAT model failed concrete replay validation",
                        bound=budget.max_frames,
                    )
        except Exception as exc:  # pragma: no cover - defensive
            return _error_result(self.name, started, exc)
        return EngineResult(
            engine=self.name,
            status=result.status,
            conclusive=result.status.is_conclusive,
            wall_seconds=time.perf_counter() - started,
            counterexample=counterexample,
            bound=budget.max_frames,
            stats={
                "frames_explored": result.frames_explored,
                "clauses": result.clauses,
                "variables": result.variables,
                "decisions": result.decisions,
                "peak_memory_mb": round(result.peak_memory_mb, 4),
            },
        )

    @staticmethod
    def _replay(
        circuit: Circuit,
        initial_state: Optional[Mapping[str, int]],
        inputs: List[Dict[str, int]],
        monitor_name: str,
        goal_value: int,
    ) -> Counterexample:
        """Replay SAT model inputs through the concrete simulator.

        This both normalises the trace into the shared
        :class:`Counterexample` shape and independently validates the SAT
        model (the monitor must really take the goal value at the last
        frame).
        """
        simulator = Simulator(circuit, initial_state=initial_state)
        start = simulator.register_values()
        trace: List[Dict[str, int]] = []
        for vector in inputs:
            trace.append(simulator.step(vector))
        target_frame = len(inputs) - 1
        validated = trace[target_frame][monitor_name] == goal_value
        return Counterexample(
            initial_state=start,
            inputs=[dict(vector) for vector in inputs],
            trace=trace,
            target_frame=target_frame,
            monitor_name=monitor_name,
            validated=validated,
        )


class RandomSimEngine:
    """Adapter for the random-simulation baseline on the bit-parallel kernel.

    A found violation/witness is conclusive (the trace is concrete), but an
    exhausted budget proves nothing, so "not found" is normalised to an
    *inconclusive* result -- in a race this engine can win reachable cases
    but never unreachable ones.  ``budget.sim_width`` sets the lane count K
    of the compiled kernel (``repro check --sim-width``); the interpreted
    reference path remains reachable by constructing the adapter with
    ``backend="interpreted"``.
    """

    name = "random"
    can_prove = False

    def __init__(self, backend: str = "bitparallel"):
        self.backend = backend

    def run(self, circuit, prop, environment, initial_state, budget) -> EngineResult:
        started = time.perf_counter()
        try:
            from repro.baselines.random_sim import (
                RandomSimulationChecker,
                RandomSimulationOptions,
            )

            checker = RandomSimulationChecker(
                circuit,
                environment=environment,
                initial_state=initial_state,
                options=RandomSimulationOptions(
                    num_runs=budget.random_runs,
                    cycles_per_run=budget.random_cycles,
                    backend=self.backend,
                    sim_width=budget.sim_width,
                ),
            )
            result = checker.check(prop, seed=budget.seed)
        except Exception as exc:  # pragma: no cover - defensive
            return _error_result(self.name, started, exc)
        found = result.counterexample is not None
        return EngineResult(
            engine=self.name,
            status=result.status,
            conclusive=found,
            wall_seconds=time.perf_counter() - started,
            counterexample=result.counterexample,
            stats={
                "vectors_simulated": result.frames_explored,
                "seed": budget.seed,
                "sim_width": budget.sim_width,
                "backend": self.backend,
                "peak_memory_mb": round(result.statistics.peak_memory_mb, 4),
            },
        )


#: Engine registry: name -> zero-argument adapter factory.
ENGINE_REGISTRY = {
    AtpgEngine.name: AtpgEngine,
    BddEngine.name: BddEngine,
    SatEngine.name: SatEngine,
    RandomSimEngine.name: RandomSimEngine,
}


def available_engines() -> List[str]:
    """Registry names of all known engines, in canonical order."""
    return list(ENGINE_REGISTRY)


def make_engine(name: str) -> Engine:
    """Instantiate an engine adapter by registry name."""
    try:
        factory = ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown engine %r (available: %s)" % (name, ", ".join(ENGINE_REGISTRY))
        ) from None
    return factory()
