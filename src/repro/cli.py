"""Command-line interface: ``python -m repro <command>``.

Four commands cover the flows described in the paper:

``stats``
    Quick-synthesise a Verilog file and print the Table-1 style statistics
    together with the control/datapath structure report.

``analyze``
    Run the structural analyses (counter / shift-register recognition and
    local FSM extraction) on a Verilog file.

``check``
    Check assertion / witness properties (given as expression strings) on a
    Verilog file, with optional environment constraints, JSON output, VCD
    trace dumping and a persistent knowledge base (``--kb``).

``kb``
    Inspect and maintain persistent knowledge-base stores:
    ``kb stats`` / ``kb prune`` / ``kb merge``.

``serve`` / ``submit``
    Run the verification daemon (warm per-circuit workers behind a unix
    socket) and submit check jobs to it; ``submit`` degrades gracefully to
    in-process checking when no daemon is listening, and shards across a
    fleet of daemons when one is configured (``--endpoint`` / a fleet
    file / ``$REPRO_SERVICE_ENDPOINTS``).

``fleet``
    Operate a fleet of daemons: ``fleet status`` (health-checked probes),
    ``fleet sync`` (knowledge-base anti-entropy) and ``fleet batch``
    (route bundled cases across the shards with failover).

``table1`` / ``table2``
    Regenerate the paper's evaluation tables from the bundled benchmark
    designs.

Every checking command parses its flags into one
:class:`repro.api.CheckRequest` -- the same serialisable request type the
library facade and the daemon protocol use, so there is exactly one knob
list end to end.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro import api
from repro.analysis import analyze_structure, extract_local_fsms, recognize_modules
from repro.checker import (
    AssertionChecker,
    CheckerOptions,
    format_result,
    format_results_table,
    results_to_json,
)
from repro.hdl import compile_verilog
from repro.netlist.circuit import Circuit
from repro.properties.parse import PropertyParseError, parse_expression
from repro.simulation.vcd import trace_to_vcd


def _load_circuit(path: str, top: Optional[str] = None) -> Circuit:
    """Read and elaborate a Verilog file."""
    with open(path) as stream:
        source = stream.read()
    circuit = compile_verilog(source, top=top)
    circuit.validate()
    return circuit


def _parse_named_property(text: str) -> Tuple[Optional[str], str]:
    """Split ``name=expression``; the name part is optional.

    Returns the (possibly ``None``) name and the expression *text*, which
    is validated by parsing but kept as a string -- properties travel
    through :class:`repro.api.CheckRequest` in textual form.
    """
    if "=" in text and not text.split("=", 1)[0].strip().isdigit():
        candidate_name, expression_text = text.split("=", 1)
        # Avoid eating a leading comparison such as "a==b".
        if not candidate_name.rstrip().endswith(("=", "!", "<", ">")):
            name = candidate_name.strip()
            parse_expression(expression_text)
            return name, expression_text
    parse_expression(text)
    return None, text


def _kb_path(args: argparse.Namespace) -> Optional[str]:
    """Resolve the knowledge-base path for a ``check`` invocation.

    Precedence: ``--no-kb`` wins over everything; otherwise ``--kb PATH``;
    otherwise the ``REPRO_KB`` environment variable; otherwise no store.
    """
    if getattr(args, "no_kb", False):
        return None
    explicit = getattr(args, "kb", None)
    if explicit:
        return explicit
    return os.environ.get("REPRO_KB") or None


def _property_specs(args: argparse.Namespace) -> List[api.PropertySpec]:
    """The ``--assert`` / ``--witness`` flags as request property specs."""
    specs: List[api.PropertySpec] = []
    for index, text in enumerate(args.assertion or []):
        try:
            name, expression_text = _parse_named_property(text)
        except PropertyParseError as exc:
            raise SystemExit(str(exc))
        specs.append(api.PropertySpec.assertion(name or "assert_%d" % index, expression_text))
    for index, text in enumerate(args.witness or []):
        try:
            name, expression_text = _parse_named_property(text)
        except PropertyParseError as exc:
            raise SystemExit(str(exc))
        specs.append(api.PropertySpec.witness(name or "witness_%d" % index, expression_text))
    if not specs:
        raise SystemExit("no properties given; use --assert and/or --witness")
    return specs


def _request_from_args(args: argparse.Namespace) -> api.CheckRequest:
    """Build the one :class:`repro.api.CheckRequest` a checking command runs.

    This is the single place CLI flags meet the unified request schema;
    ``repro check`` and ``repro submit`` both go through it.
    """
    engines = [name.strip() for name in args.engines.split(",") if name.strip()]
    if not engines:
        raise SystemExit("--engines expects a comma-separated list, got %r" % (args.engines,))
    if len(set(engines)) != len(engines):
        raise SystemExit("--engines contains duplicates: %s" % (args.engines,))
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1, got %d" % (args.jobs,))
    if args.sim_width is not None and args.sim_width < 1:
        raise SystemExit("--sim-width must be >= 1, got %d" % (args.sim_width,))

    pinned = []
    for pin in args.pin or []:
        if "=" not in pin:
            raise SystemExit("--pin expects signal=value, got %r" % (pin,))
        name, value = pin.split("=", 1)
        pinned.append((name.strip(), int(value, 0)))
    one_hot = tuple(
        tuple(name.strip() for name in group.split(","))
        for group in args.one_hot or []
    )
    for assumption in args.assume or []:
        try:
            parse_expression(assumption)
        except PropertyParseError as exc:
            raise SystemExit(str(exc))

    try:
        return api.CheckRequest(
            circuit=api.CircuitRef.verilog(args.design, top=args.top),
            properties=tuple(_property_specs(args)),
            pinned=tuple(pinned),
            one_hot=one_hot,
            assumptions=tuple(args.assume or []),
            engines=tuple(engines),
            max_frames=args.max_frames,
            time_budget=args.time_budget,
            sim_width=args.sim_width,
            seed=args.seed,
            incremental=not args.no_incremental,
            learning=not args.no_learning,
            compiled=not args.no_compiled,
            cube_hit_ordering=args.cube_hit_ordering,
            kb_path=_kb_path(args),
            fsm_guidance=args.fsm_guidance,
            jobs=args.jobs,
            compare=args.compare,
        )
    except api.RequestError as exc:
        raise SystemExit(str(exc))


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _command_stats(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.design, top=args.top)
    stats = circuit.stats()
    print(
        "%-14s %8s %8s %6s %6s %6s"
        % ("ckt name", "#lines", "#gates", "#FFs", "#ins", "#outs")
    )
    print(
        "%-14s %8d %8d %6d %6d %6d"
        % (stats.name, stats.lines, stats.gates, stats.flip_flops, stats.inputs, stats.outputs)
    )
    print()
    print(analyze_structure(circuit).format())
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.design, top=args.top)
    print(analyze_structure(circuit).format())
    print()
    print(recognize_modules(circuit).format())
    fsms = extract_local_fsms(circuit, max_width=args.max_fsm_width)
    if fsms:
        print()
        for fsm in fsms:
            print(fsm.format())
    return 0


def _dump_first_trace(path: str, circuit: Circuit, traces) -> None:
    """Write the first available counterexample as VCD.

    ``traces`` yields ``(label, counterexample-or-None)`` pairs; the first
    pair with a trace wins.
    """
    for label, counterexample in traces:
        if counterexample is not None:
            with open(path, "w") as stream:
                stream.write(trace_to_vcd(circuit, counterexample.trace))
            print("trace of %s written to %s" % (label, path))
            return
    print("no trace produced; %s not written" % (path,))


def _command_check(args: argparse.Namespace) -> int:
    # All flags funnel into one CheckRequest; api.run_request routes it to
    # the classic single-engine path or the portfolio/batch machinery with
    # the same semantics (and output schemas) as before.
    request = _request_from_args(args)
    try:
        outcome = api.run_request(request)
    except api.RequestError as exc:
        raise SystemExit(str(exc))
    if outcome.results is not None:
        return _render_single_check(args, outcome)
    return _render_portfolio_check(args, outcome)


def _render_single_check(args: argparse.Namespace, outcome: api.RequestOutcome) -> int:
    """Classic output of the deterministic single-engine path."""
    results = outcome.results

    if args.json:
        print(results_to_json(results))
    else:
        for result in results:
            print(format_result(result))
            print()
        print(format_results_table(results))

    if args.vcd:
        _dump_first_trace(
            args.vcd,
            outcome.circuit,
            ((result.prop.name, result.counterexample) for result in results),
        )

    failing = [
        result
        for result in results
        if (result.prop.is_assertion and result.status.value == "fails")
        or result.status.value == "aborted"
    ]
    return 1 if failing else 0


def _render_portfolio_check(args: argparse.Namespace, outcome: api.RequestOutcome) -> int:
    """Classic output of the multi-engine / multi-job path."""
    report = outcome.batch
    circuit = outcome.circuit

    if args.json:
        print(report.to_json())
    else:
        for item in report.items:
            result = item.result
            print(
                "property %s (%s): %s%s"
                % (
                    result.prop_name,
                    result.kind,
                    result.status.value,
                    " [winner: %s]" % result.winner if result.winner else "",
                )
            )
            for engine_result in result.engine_results:
                flags = []
                if engine_result.cancelled:
                    flags.append("cancelled")
                if engine_result.timed_out:
                    flags.append("timed out")
                if engine_result.error:
                    flags.append("error: %s" % engine_result.error)
                print(
                    "  %-8s %-18s %8.3fs%s"
                    % (
                        engine_result.engine,
                        engine_result.status.value,
                        engine_result.wall_seconds,
                        "  (%s)" % ", ".join(flags) if flags else "",
                    )
                )
            if result.disagreement:
                print("  ENGINES DISAGREE: %s" % ", ".join(result.disagreement))
            counterexample = result.counterexample
            if counterexample is not None:
                label = (
                    "counterexample" if result.kind == "assertion" else "witness trace"
                )
                print("  %s:" % (label,))
                for line in counterexample.summary().splitlines():
                    print("    " + line)
            print()
        if report.disagreements:
            print("disagreements on: %s" % ", ".join(report.disagreements))

    if args.vcd:
        _dump_first_trace(
            args.vcd,
            circuit,
            ((item.job_id, item.result.counterexample) for item in report.items),
        )

    failing = any(
        (item.result.kind == "assertion" and item.result.status.value == "fails")
        or not item.result.conclusive
        for item in report.items
    )
    return 1 if failing or report.disagreements else 0


def _command_kb(args: argparse.Namespace) -> int:
    """The ``repro kb stats|prune|merge`` maintenance sub-commands."""
    from repro.kb import KnowledgeBase

    if args.kb_command == "stats":
        store = KnowledgeBase(args.store)
        try:
            stats = store.stats()
        finally:
            store.close()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print("knowledge base: %s" % stats["path"])
        if stats.get("disabled"):
            print("  DISABLED: %s" % stats.get("reason"))
            return 1
        print("  schema version: %d" % stats["schema_version"])
        print(
            "  %d model(s), %d cube(s), %d proven-FAIL memo(s), %d recorded hit(s)"
            % (stats["models"], stats["cubes"], stats["fail_memos"], stats["hits"])
        )
        for row in stats["per_model"]:
            print(
                "  model %s (%s): %d cube(s), %d memo(s), %d hit(s)"
                % (
                    row["model_key"],
                    row["circuit"],
                    row["cubes"],
                    row["fail_memos"],
                    row["hits"],
                )
            )
        return 0

    if args.kb_command == "prune":
        store = KnowledgeBase(args.store)
        try:
            if store.disabled:
                print("cannot prune %s: %s" % (args.store, store.disabled_reason))
                return 1
            removed = store.prune(min_hits=args.min_hits, keep=args.keep)
        finally:
            store.close()
        print("pruned %d cube(s) from %s" % (removed, args.store))
        return 0

    if args.kb_command == "merge":
        # All sources land in ONE write transaction (merge_many): either the
        # destination gains every readable source or none of them, and N
        # sources cost one commit instead of N.
        dest = KnowledgeBase(args.dest)
        sources = []
        try:
            if dest.disabled:
                print("cannot merge into %s: %s" % (args.dest, dest.disabled_reason))
                return 1
            for source_path in args.sources:
                source = KnowledgeBase(source_path)
                sources.append(source)
                if source.disabled:
                    print("skipping %s: %s" % (source_path, source.disabled_reason))
            merged = dest.merge_many(sources)
        finally:
            for source in sources:
                source.close()
            dest.close()
        print(
            "merged %d source(s) in one transaction: %d model(s), %d cube(s), "
            "%d memo(s)"
            % (
                merged["sources"],
                merged["models"],
                merged["cubes"],
                merged["fail_memos"],
            )
        )
        return 0

    raise SystemExit("unknown kb sub-command %r" % (args.kb_command,))


def _command_table1(args: argparse.Namespace) -> int:
    from repro.circuits import circuit_statistics

    print(
        "%-14s %8s %8s %6s %6s %6s"
        % ("ckt name", "#lines", "#gates", "#FFs", "#ins", "#outs")
    )
    for stats in circuit_statistics():
        print(
            "%-14s %8d %8d %6d %6d %6d"
            % (stats.name, stats.lines, stats.gates, stats.flip_flops, stats.inputs, stats.outputs)
        )
    return 0


def _command_table2(args: argparse.Namespace) -> int:
    from repro.circuits import all_case_ids, build_case

    case_ids = args.cases.split(",") if args.cases else all_case_ids()
    results = []
    labels = []
    for case_id in case_ids:
        case_id = case_id.strip()
        case = build_case(case_id)
        checker = AssertionChecker(
            case.circuit,
            environment=case.environment,
            initial_state=case.initial_state,
            options=CheckerOptions(max_frames=case.max_frames),
        )
        result = checker.check(case.prop)
        results.append(result)
        labels.append("%s (%s)" % (case_id, case.design))
        status = "ok" if result.status is case.expected_status else "UNEXPECTED"
        print("%s: %s [%s]" % (case_id, result.status.value, status))
    print()
    print(format_results_table(results, labels=labels))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Run the verification daemon until a shutdown verb arrives."""
    import asyncio

    from repro.service import ServiceOptions, Supervisor, default_socket_path
    from repro.service.protocol import PROTOCOL

    if args.fault_plan:
        # Arm through the environment so the forked worker tree inherits the
        # plan; the state dir shares nth/limit counters across respawns.
        import tempfile

        from repro import faults

        try:
            plan = faults.FaultPlan.parse(args.fault_plan, seed=args.fault_seed)
        except faults.FaultPlanError as exc:
            raise SystemExit("bad --fault-plan: %s" % (exc,))
        state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        os.environ.update(faults.plan_environment(plan, state_dir))
        print("fault plan armed (seed %d): %s" % (plan.seed, plan.to_json()),
              flush=True)

    def _mb(value: Optional[float]) -> Optional[int]:
        return None if value is None else int(value * 1024 * 1024)

    options = ServiceOptions(
        socket_path=args.socket or default_socket_path(),
        max_workers=args.max_workers,
        job_timeout=args.job_timeout,
        requeue_limit=args.requeue_limit,
        heartbeat_interval=args.heartbeat_interval,
        hang_timeout=args.hang_timeout if args.hang_timeout > 0 else None,
        quarantine_limit=args.quarantine_limit,
        rss_soft_bytes=_mb(args.rss_soft_mb),
        rss_hard_bytes=_mb(args.rss_hard_mb),
    )

    async def _serve() -> None:
        supervisor = Supervisor(options)
        await supervisor.start()
        print("%s listening on %s" % (PROTOCOL, options.socket_path), flush=True)
        try:
            await supervisor.shutdown_event.wait()
        finally:
            await supervisor.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    print("daemon shut down cleanly", flush=True)
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    """Submit one check to the daemon, or manage it (--stats / --shutdown)."""
    from repro.service import (
        JobFailure,
        RetryPolicy,
        ServiceClient,
        ServiceError,
        check_via_service,
    )

    if args.stats or args.shutdown or args.drain:
        try:
            with ServiceClient(args.socket) as client:
                if args.stats:
                    print(json.dumps(client.stats(), indent=2, sort_keys=True))
                if args.drain:
                    client.shutdown(mode="drain")
                    print("drain requested (in-flight jobs finish first)")
                elif args.shutdown:
                    client.shutdown()
                    print("shutdown requested")
        except ServiceError as exc:
            print("error: %s" % (exc,), file=sys.stderr)
            return 1
        return 0

    if not args.design:
        raise SystemExit(
            "a design is required unless --stats/--shutdown/--drain is given")
    request = _request_from_args(args)
    retry = None
    if args.retries is not None:
        retry = RetryPolicy(attempts=max(1, args.retries + 1))
    try:
        router = _fleet_router_from_args(args, retry=retry)
        if router is not None:
            report = router.check(
                request,
                deadline=args.deadline,
                timeout=args.timeout,
                fallback=not args.no_fallback,
            )
        else:
            report = check_via_service(
                request,
                socket_path=args.socket,
                fallback=not args.no_fallback,
                timeout=args.timeout,
                deadline=args.deadline,
                retry=retry,
                read_timeout=args.read_timeout,
            )
    except JobFailure as exc:
        # Typed daemon-side failure: surface the machine-readable cause so
        # scripts can branch on it (and never silently re-run locally).
        print("error: %s" % (exc,), file=sys.stderr)
        if exc.cause:
            print("cause: %s" % (exc.cause,), file=sys.stderr)
        return 1
    except (ServiceError, api.RequestError) as exc:
        print("error: %s" % (exc,), file=sys.stderr)
        return 1

    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
        worker = (report.service or {}).get("worker")
        if isinstance(worker, dict):
            print(
                "daemon worker %s: jobs=%s warm_hits=%s kb_cubes_loaded=%s "
                "cache_entries=%s"
                % (
                    str(worker.get("worker_key", "?"))[:8],
                    worker.get("jobs_done"),
                    worker.get("warm_hits"),
                    worker.get("kb_cubes_loaded"),
                    worker.get("cache_residency"),
                )
            )
    return report.exit_code


def _fleet_router_from_args(args: argparse.Namespace, retry=None):
    """Build a :class:`~repro.service.fleet.FleetRouter` when a fleet is
    configured (``--endpoint`` / ``--fleet-file`` / the environment);
    ``None`` means single-daemon behaviour."""
    from repro.service import fleet as fleet_mod

    try:
        endpoints, options = fleet_mod.resolve_endpoints(
            getattr(args, "endpoint", None), getattr(args, "fleet_file", None)
        )
    except fleet_mod.FleetError as exc:
        raise SystemExit(str(exc))
    if not endpoints:
        return None
    hedge_after = getattr(args, "hedge_after", None)
    if hedge_after is None:
        hedge_after = options.get("hedge_after")
    try:
        return fleet_mod.FleetRouter(
            endpoints,
            trip_threshold=int(options.get(
                "trip_threshold", fleet_mod.DEFAULT_TRIP_THRESHOLD)),
            cooldown=float(options.get("cooldown", fleet_mod.DEFAULT_COOLDOWN)),
            hedge_after=hedge_after,
            retry=retry,
            read_timeout=getattr(args, "read_timeout", None),
            sync_on_failover=getattr(args, "sync_on_failover", False),
        )
    except fleet_mod.FleetError as exc:
        raise SystemExit(str(exc))


def _command_fleet(args: argparse.Namespace) -> int:
    """The ``repro fleet status|sync|batch`` sub-commands."""
    from repro.service import fleet as fleet_mod

    if args.fleet_command == "sync":
        stores = list(args.stores or [])
        if not stores:
            try:
                endpoints, _ = fleet_mod.resolve_endpoints(
                    args.endpoint, args.fleet_file)
            except fleet_mod.FleetError as exc:
                raise SystemExit(str(exc))
            stores = [e.kb for e in endpoints if e.kb]
        if len(stores) < 2:
            print("nothing to sync: need at least two stores "
                  "(positional paths, --endpoint ...;kb=..., or a fleet file)",
                  file=sys.stderr)
            return 1
        results = fleet_mod.sync_stores(stores)
        if args.json:
            print(json.dumps(results, indent=2, sort_keys=True))
            return 0
        for row in results:
            if row.get("disabled"):
                print("%s: DISABLED (%s)" % (row["path"], row.get("reason")))
                continue
            print(
                "%s <- %d source(s): %d model(s), %d cube(s), %d memo(s)"
                % (row["path"], row["sources"], row["models"], row["cubes"],
                   row["fail_memos"])
            )
        return 1 if any(row.get("disabled") for row in results) else 0

    router = _fleet_router_from_args(args)
    if router is None:
        raise SystemExit(
            "no fleet configured; pass --endpoint/--fleet-file or set "
            "$%s" % (fleet_mod.ENDPOINTS_ENV,))

    if args.fleet_command == "status":
        status = router.status(probe=True)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            for block in status["endpoints"]:
                probe = block.get("probe", {})
                if probe.get("alive"):
                    detail = "up"
                    if probe.get("legacy"):
                        detail += " (legacy, pre-ping protocol)"
                    elif probe.get("draining"):
                        detail = "draining"
                    else:
                        detail += " pid=%s uptime=%.1fs" % (
                            probe.get("pid", "?"),
                            float(probe.get("uptime_seconds", 0.0)))
                else:
                    detail = "DOWN (%s)" % probe.get("error", "unreachable")
                print("%-12s %s %s" % (block["name"], block["socket"], detail))
                if block.get("kb"):
                    print("%-12s kb: %s" % ("", block["kb"]))
            print("%d/%d endpoint(s) up" % (status["up"], status["total"]))
        return 0 if status["up"] > 0 else 1

    if args.fleet_command == "batch":
        case_ids = [cid.strip() for cid in args.case or [] if cid.strip()]
        if not case_ids:
            raise SystemExit("fleet batch needs at least one --case")
        requests = [
            api.CheckRequest(circuit=api.CircuitRef.case(case_id))
            for case_id in case_ids
        ]
        report = router.run_batch(
            requests,
            deadline=args.deadline,
            timeout=args.timeout,
            fallback=not args.no_fallback,
            max_workers=args.jobs,
        )
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            for item in report["items"]:
                where = item.get("endpoint") or item.get("source", "?")
                if item["state"] == "done":
                    verdicts = ",".join(
                        "%s=%s" % (v["property"], v["status"])
                        for v in item["verdicts"])
                    print("%-6s done on %-12s %s"
                          % (item["circuit"], where, verdicts))
                else:
                    print("%-6s FAILED (%s): %s"
                          % (item["circuit"], item.get("cause"),
                             item.get("error")))
            print(
                "%d done, %d failed, %d lost of %d "
                "(failovers=%d hedges_won=%d fell_back=%d)"
                % (report["done"], report["failed"], report["lost"],
                   report["total"], report["counters"]["failovers"],
                   report["counters"]["hedges_won"],
                   report["counters"]["fell_back"])
            )
        failing = report["failed"] or report["lost"] or any(
            item.get("exit_code") for item in report["items"])
        return 1 if failing else 0

    raise SystemExit("unknown fleet sub-command %r" % (args.fleet_command,))


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _add_check_arguments(parser: argparse.ArgumentParser,
                         design_optional: bool = False) -> None:
    """The one flag set shared by ``repro check`` and ``repro submit``.

    Both commands feed :func:`_request_from_args`, so the knob list exists
    exactly once (it mirrors :class:`repro.api.CheckRequest`).
    """
    if design_optional:
        parser.add_argument("design", nargs="?", help="Verilog source file")
    else:
        parser.add_argument("design", help="Verilog source file")
    parser.add_argument("--top", help="top module name")
    parser.add_argument(
        "--assert",
        dest="assertion",
        action="append",
        metavar="NAME=EXPR",
        help="assertion property (may be repeated)",
    )
    parser.add_argument(
        "--witness",
        action="append",
        metavar="NAME=EXPR",
        help="witness property (may be repeated)",
    )
    parser.add_argument("--max-frames", type=int, default=8, help="unrolling bound")
    parser.add_argument(
        "--one-hot",
        action="append",
        metavar="SIG1,SIG2,...",
        help="one-hot input group (may be repeated)",
    )
    parser.add_argument(
        "--pin", action="append", metavar="SIG=VALUE", help="pin an input to a constant"
    )
    parser.add_argument(
        "--assume", action="append", metavar="EXPR", help="environment assumption expression"
    )
    parser.add_argument(
        "--fsm-guidance",
        action="store_true",
        help="seed the search with local FSM reachability facts",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parser.add_argument(
        "--engines",
        default="atpg",
        metavar="NAME[,NAME...]",
        help="engine portfolio raced per property: atpg, bdd, sat, random "
        "(default: atpg only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes checking properties in parallel (default: 1)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        help="base RNG seed for reproducible portfolio/batch runs (no effect "
        "on the deterministic default engine alone)",
    )
    parser.add_argument(
        "--sim-width",
        type=int,
        metavar="K",
        help="bit-parallel lanes for the random-simulation engine: K vectors "
        "are evaluated per gate visit on the compiled kernel (default: 64; "
        "no effect on the deterministic default engine alone)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget per engine (enforced by cancellation)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run every engine to completion and report disagreements "
        "instead of racing",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="rebuild the unrolled implication network from scratch for "
        "every bound instead of reusing it incrementally (debug/ablation)",
    )
    parser.add_argument(
        "--no-learning",
        action="store_true",
        help="disable cross-bound search learning (persistent illegal-state "
        "cubes and proven-FAIL target memoisation on the cached unrolled "
        "models); verdicts are unchanged, only speed (debug/ablation)",
    )
    parser.add_argument(
        "--no-compiled",
        action="store_true",
        help="run the interpreted implication engine instead of the "
        "compiled slot-indexed kernel; verdicts, traces and statistics are "
        "bit-identical, only speed differs (debug/ablation)",
    )
    parser.add_argument(
        "--cube-hit-ordering",
        action="store_true",
        help="rank decision candidates by accumulated learned-cube hit "
        "counts (experimental heuristic; changes decision order and hence "
        "search statistics, never verdicts)",
    )
    parser.add_argument(
        "--kb",
        metavar="PATH",
        help="persistent knowledge-base store (sqlite): load previously "
        "learned cubes / proven-FAIL memos before checking and flush new "
        "facts afterwards; verdicts are unchanged, only speed "
        "(default: the REPRO_KB environment variable, if set)",
    )
    parser.add_argument(
        "--no-kb",
        action="store_true",
        help="ignore --kb and REPRO_KB; run with in-process learning only",
    )


def _add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    """Fleet-configuration flags shared by ``submit`` and ``fleet ...``.

    Precedence (see :func:`repro.service.fleet.resolve_endpoints`):
    ``--endpoint`` flags, then ``--fleet-file``, then the
    ``REPRO_SERVICE_ENDPOINTS`` / ``REPRO_FLEET_FILE`` environment.
    """
    parser.add_argument(
        "--endpoint",
        action="append",
        metavar="[NAME=]SOCKET[;kb=STORE]",
        help="fleet endpoint (repeat for each daemon); jobs are sharded "
        "across endpoints by circuit fingerprint with health-checked "
        "failover",
    )
    parser.add_argument(
        "--fleet-file",
        metavar="FILE",
        help="TOML fleet file ([[endpoints]] tables plus an optional "
        "[fleet] options table)",
    )
    parser.add_argument(
        "--hedge-after",
        type=float,
        metavar="SECONDS",
        help="hedged submits: also try the next endpoint when the assigned "
        "one has not answered after this long (first answer wins)",
    )
    parser.add_argument(
        "--sync-on-failover",
        action="store_true",
        help="after a failover, merge the failed endpoint's KB store into "
        "the takeover endpoint's (anti-entropy nudge)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Word-level ATPG + modular arithmetic RTL assertion checking",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser("stats", help="print circuit statistics for a Verilog file")
    stats.add_argument("design", help="Verilog source file")
    stats.add_argument("--top", help="top module name (default: last module)")
    stats.set_defaults(func=_command_stats)

    analyze = subparsers.add_parser("analyze", help="run structural analyses on a Verilog file")
    analyze.add_argument("design", help="Verilog source file")
    analyze.add_argument("--top", help="top module name")
    analyze.add_argument(
        "--max-fsm-width", type=int, default=4, help="register width limit for FSM extraction"
    )
    analyze.set_defaults(func=_command_analyze)

    check = subparsers.add_parser("check", help="check properties on a Verilog file")
    _add_check_arguments(check)
    check.add_argument("--vcd", metavar="FILE", help="dump the first trace as VCD")
    check.set_defaults(func=_command_check)

    serve = subparsers.add_parser(
        "serve", help="run the verification daemon (warm per-circuit workers)"
    )
    serve.add_argument(
        "--socket",
        metavar="PATH",
        help="unix socket to listen on (default: $REPRO_SERVICE_SOCKET or a "
        "per-user path under the temp directory)",
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=4,
        metavar="N",
        help="resident per-circuit workers before idle LRU eviction (default: 4)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        metavar="SECONDS",
        help="wall-clock cap per job; exceeding it aborts the job and "
        "restarts its worker (default: none)",
    )
    serve.add_argument(
        "--requeue-limit",
        type=int,
        default=1,
        metavar="N",
        help="retries for a job orphaned by a worker crash (default: 1)",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="how often running workers heartbeat to the supervisor "
        "(default: 1.0)",
    )
    serve.add_argument(
        "--hang-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="a running worker silent this long is killed as hung; 0 "
        "disables the watchdog (default: 30)",
    )
    serve.add_argument(
        "--quarantine-limit",
        type=int,
        default=3,
        metavar="N",
        help="a request that kills this many workers is quarantined "
        "instead of retried forever (default: 3)",
    )
    serve.add_argument(
        "--rss-soft-mb",
        type=float,
        metavar="MB",
        help="worker RSS soft watermark: above it the worker evicts its "
        "model caches and flushes its KB stores (default: none)",
    )
    serve.add_argument(
        "--rss-hard-mb",
        type=float,
        metavar="MB",
        help="worker RSS hard watermark: above it the worker is retired "
        "after the current job and respawned cold (default: none)",
    )
    serve.add_argument(
        "--fault-plan",
        metavar="PLAN",
        help="arm deterministic fault injection for the daemon and its "
        "workers (chaos testing; see docs/resilience.md for the syntax)",
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the fault schedule (default: 0)",
    )
    serve.set_defaults(func=_command_serve)

    submit = subparsers.add_parser(
        "submit",
        help="submit a check to the daemon (falls back to in-process "
        "checking when none is listening)",
    )
    _add_check_arguments(submit, design_optional=True)
    submit.add_argument(
        "--socket", metavar="PATH", help="daemon unix socket (default: as for serve)"
    )
    submit.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail instead of checking in-process when no daemon answers",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="give up waiting for the job result after this long",
    )
    submit.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="end-to-end deadline for the job: propagated to the daemon "
        "and folded into the worker's engine time budget",
    )
    submit.add_argument(
        "--retries",
        type=int,
        metavar="N",
        help="connection-level retries with jittered exponential backoff "
        "(default: 2; daemon answers are never retried)",
    )
    submit.add_argument(
        "--read-timeout",
        type=float,
        metavar="SECONDS",
        help="per-protocol-read deadline on the daemon socket (default: 60)",
    )
    _add_fleet_arguments(submit)
    submit.add_argument(
        "--stats",
        action="store_true",
        help="print the daemon's live stats (JSON) and exit",
    )
    submit.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the daemon to flush its workers' KB state and exit",
    )
    submit.add_argument(
        "--drain",
        action="store_true",
        help="graceful shutdown: finish in-flight jobs, refuse new submits, "
        "flush every worker's KB state, then exit",
    )
    submit.set_defaults(func=_command_submit)

    fleet = subparsers.add_parser(
        "fleet",
        help="route jobs across several daemons (health-checked sharding, "
        "failover, KB anti-entropy)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status", help="probe every endpoint and print its health"
    )
    _add_fleet_arguments(fleet_status)
    fleet_status.add_argument("--json", action="store_true", help="emit JSON")
    fleet_status.set_defaults(func=_command_fleet)
    fleet_sync = fleet_sub.add_parser(
        "sync",
        help="anti-entropy: pairwise-merge shard KB stores until all hold "
        "the union of learned facts",
    )
    fleet_sync.add_argument(
        "stores",
        nargs="*",
        metavar="STORE",
        help="knowledge-base files to sync (default: the kb= paths of the "
        "configured endpoints)",
    )
    _add_fleet_arguments(fleet_sync)
    fleet_sync.add_argument("--json", action="store_true", help="emit JSON")
    fleet_sync.set_defaults(func=_command_fleet)
    fleet_batch = fleet_sub.add_parser(
        "batch", help="route a batch of bundled cases across the fleet"
    )
    _add_fleet_arguments(fleet_batch)
    fleet_batch.add_argument(
        "--case",
        action="append",
        metavar="ID",
        help="bundled benchmark case to check (may be repeated)",
    )
    fleet_batch.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="end-to-end deadline per job (engine budget included)",
    )
    fleet_batch.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="give up waiting for any single job after this long",
    )
    fleet_batch.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="jobs routed concurrently (default: min(8, batch size))",
    )
    fleet_batch.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail a job instead of checking in-process when every "
        "endpoint is down",
    )
    fleet_batch.add_argument("--json", action="store_true", help="emit JSON")
    fleet_batch.set_defaults(func=_command_fleet)

    kb = subparsers.add_parser(
        "kb", help="inspect / maintain a persistent knowledge-base store"
    )
    kb_sub = kb.add_subparsers(dest="kb_command", required=True)
    kb_stats = kb_sub.add_parser("stats", help="print store totals per model")
    kb_stats.add_argument("store", help="knowledge-base file (sqlite)")
    kb_stats.add_argument("--json", action="store_true", help="emit JSON")
    kb_stats.set_defaults(func=_command_kb)
    kb_prune = kb_sub.add_parser("prune", help="drop cold cubes from a store")
    kb_prune.add_argument("store", help="knowledge-base file (sqlite)")
    kb_prune.add_argument(
        "--min-hits",
        type=int,
        default=0,
        metavar="N",
        help="drop cubes with fewer than N recorded hits",
    )
    kb_prune.add_argument(
        "--keep",
        type=int,
        metavar="N",
        help="keep only the hottest N cubes per model",
    )
    kb_prune.set_defaults(func=_command_kb)
    kb_merge = kb_sub.add_parser(
        "merge", help="merge source stores into a destination store"
    )
    kb_merge.add_argument("dest", help="destination knowledge-base file")
    kb_merge.add_argument(
        "sources", nargs="+", metavar="SOURCE", help="source knowledge-base files"
    )
    kb_merge.set_defaults(func=_command_kb)

    table1 = subparsers.add_parser("table1", help="regenerate the paper's Table 1")
    table1.set_defaults(func=_command_table1)

    table2 = subparsers.add_parser("table2", help="regenerate the paper's Table 2")
    table2.add_argument("--cases", help="comma-separated property ids (default: all)")
    table2.set_defaults(func=_command_table2)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
