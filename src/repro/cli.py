"""Command-line interface: ``python -m repro <command>``.

Four commands cover the flows described in the paper:

``stats``
    Quick-synthesise a Verilog file and print the Table-1 style statistics
    together with the control/datapath structure report.

``analyze``
    Run the structural analyses (counter / shift-register recognition and
    local FSM extraction) on a Verilog file.

``check``
    Check assertion / witness properties (given as expression strings) on a
    Verilog file, with optional environment constraints, JSON output, VCD
    trace dumping and a persistent knowledge base (``--kb``).

``kb``
    Inspect and maintain persistent knowledge-base stores:
    ``kb stats`` / ``kb prune`` / ``kb merge``.

``table1`` / ``table2``
    Regenerate the paper's evaluation tables from the bundled benchmark
    designs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis import analyze_structure, extract_local_fsms, recognize_modules
from repro.checker import (
    AssertionChecker,
    CheckerOptions,
    CheckResult,
    format_result,
    format_results_table,
    results_to_json,
)
from repro.hdl import compile_verilog
from repro.netlist.circuit import Circuit
from repro.properties import Assertion, Environment, Witness
from repro.properties.parse import PropertyParseError, parse_expression
from repro.simulation.vcd import trace_to_vcd


def _load_circuit(path: str, top: Optional[str] = None) -> Circuit:
    """Read and elaborate a Verilog file."""
    with open(path) as stream:
        source = stream.read()
    circuit = compile_verilog(source, top=top)
    circuit.validate()
    return circuit


def _parse_named_property(text: str) -> Tuple[Optional[str], object]:
    """Parse ``name=expression``; the name part is optional."""
    if "=" in text and not text.split("=", 1)[0].strip().isdigit():
        candidate_name, expression_text = text.split("=", 1)
        # Avoid eating a leading comparison such as "a==b".
        if not candidate_name.rstrip().endswith(("=", "!", "<", ">")):
            name = candidate_name.strip()
            expression = parse_expression(expression_text)
            return name, expression
    return None, parse_expression(text)


def _kb_path(args: argparse.Namespace) -> Optional[str]:
    """Resolve the knowledge-base path for a ``check`` invocation.

    Precedence: ``--no-kb`` wins over everything; otherwise ``--kb PATH``;
    otherwise the ``REPRO_KB`` environment variable; otherwise no store.
    """
    if getattr(args, "no_kb", False):
        return None
    explicit = getattr(args, "kb", None)
    if explicit:
        return explicit
    return os.environ.get("REPRO_KB") or None


def _build_environment(args: argparse.Namespace) -> Environment:
    environment = Environment()
    for group in getattr(args, "one_hot", None) or []:
        environment.one_hot([name.strip() for name in group.split(",")])
    for pin in getattr(args, "pin", None) or []:
        if "=" not in pin:
            raise SystemExit("--pin expects signal=value, got %r" % (pin,))
        name, value = pin.split("=", 1)
        environment.pin(name.strip(), int(value, 0))
    for assumption in getattr(args, "assume", None) or []:
        environment.assume(parse_expression(assumption))
    return environment


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _command_stats(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.design, top=args.top)
    stats = circuit.stats()
    print(
        "%-14s %8s %8s %6s %6s %6s"
        % ("ckt name", "#lines", "#gates", "#FFs", "#ins", "#outs")
    )
    print(
        "%-14s %8d %8d %6d %6d %6d"
        % (stats.name, stats.lines, stats.gates, stats.flip_flops, stats.inputs, stats.outputs)
    )
    print()
    print(analyze_structure(circuit).format())
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.design, top=args.top)
    print(analyze_structure(circuit).format())
    print()
    print(recognize_modules(circuit).format())
    fsms = extract_local_fsms(circuit, max_width=args.max_fsm_width)
    if fsms:
        print()
        for fsm in fsms:
            print(fsm.format())
    return 0


def _parse_properties(args: argparse.Namespace) -> List[object]:
    properties = []
    for index, text in enumerate(args.assertion or []):
        try:
            name, expression = _parse_named_property(text)
        except PropertyParseError as exc:
            raise SystemExit(str(exc))
        properties.append(Assertion(name or "assert_%d" % index, expression))
    for index, text in enumerate(args.witness or []):
        try:
            name, expression = _parse_named_property(text)
        except PropertyParseError as exc:
            raise SystemExit(str(exc))
        properties.append(Witness(name or "witness_%d" % index, expression))
    if not properties:
        raise SystemExit("no properties given; use --assert and/or --witness")
    return properties


def _dump_first_trace(path: str, circuit: Circuit, traces) -> None:
    """Write the first available counterexample as VCD.

    ``traces`` yields ``(label, counterexample-or-None)`` pairs; the first
    pair with a trace wins.
    """
    for label, counterexample in traces:
        if counterexample is not None:
            with open(path, "w") as stream:
                stream.write(trace_to_vcd(circuit, counterexample.trace))
            print("trace of %s written to %s" % (label, path))
            return
    print("no trace produced; %s not written" % (path,))


def _command_check(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.design, top=args.top)
    environment = _build_environment(args)
    properties = _parse_properties(args)

    engines = [name.strip() for name in args.engines.split(",") if name.strip()]
    if not engines:
        raise SystemExit("--engines expects a comma-separated list, got %r" % (args.engines,))
    if len(set(engines)) != len(engines):
        raise SystemExit("--engines contains duplicates: %s" % (args.engines,))
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1, got %d" % (args.jobs,))
    if args.sim_width is not None and args.sim_width < 1:
        raise SystemExit("--sim-width must be >= 1, got %d" % (args.sim_width,))
    # --seed and --sim-width alone do not reroute: the default single-engine
    # path is deterministic (and does not use the simulation kernel), and
    # silently switching the output schema would break existing consumers.
    # Both take effect whenever another flag selects the portfolio path.
    portfolio_flags = (
        engines != ["atpg"]
        or args.jobs > 1
        or args.time_budget is not None
        or args.compare
    )
    if portfolio_flags:
        return _check_portfolio(args, circuit, environment, properties, engines)

    options = CheckerOptions(
        max_frames=args.max_frames,
        use_local_fsm_guidance=args.fsm_guidance,
        incremental=not args.no_incremental,
        learning=not args.no_learning,
        kb_path=_kb_path(args),
    )
    checker = AssertionChecker(circuit, environment=environment, options=options)
    results: List[CheckResult] = [checker.check(prop) for prop in properties]

    if args.json:
        print(results_to_json(results))
    else:
        for result in results:
            print(format_result(result))
            print()
        print(format_results_table(results))

    if args.vcd:
        _dump_first_trace(
            args.vcd,
            circuit,
            ((result.prop.name, result.counterexample) for result in results),
        )

    failing = [
        result
        for result in results
        if (result.prop.is_assertion and result.status.value == "fails")
        or result.status.value == "aborted"
    ]
    return 1 if failing else 0


def _check_portfolio(
    args: argparse.Namespace,
    circuit: Circuit,
    environment: Environment,
    properties: List[object],
    engines: List[str],
) -> int:
    """The multi-engine / multi-job path of ``repro check``."""
    from repro.portfolio import (
        AtpgEngine,
        BatchJob,
        BatchOptions,
        BatchRunner,
        EngineBudget,
        available_engines,
    )

    for name in engines:
        if name not in available_engines():
            raise SystemExit(
                "unknown engine %r (available: %s)" % (name, ", ".join(available_engines()))
            )

    budget_overrides = {}
    if args.seed is not None:
        budget_overrides["seed"] = args.seed
    if args.sim_width is not None:
        budget_overrides["sim_width"] = args.sim_width
    budget = EngineBudget(
        time_seconds=args.time_budget,
        max_frames=args.max_frames,
        **budget_overrides,
    )
    kb_path = _kb_path(args)
    # Checker-specific flags (--fsm-guidance) ride on a configured adapter.
    configured = [
        AtpgEngine(
            CheckerOptions(
                use_local_fsm_guidance=True,
                incremental=not args.no_incremental,
                learning=not args.no_learning,
                kb_path=kb_path,
            )
        )
        if name == "atpg" and args.fsm_guidance
        else name
        for name in engines
    ]
    jobs = [
        BatchJob(prop.name, circuit, prop, environment=environment)
        for prop in properties
    ]
    report = BatchRunner(
        BatchOptions(
            engines=tuple(configured),
            budget=budget,
            jobs=args.jobs,
            run_all=args.compare,
            incremental=not args.no_incremental,
            learning=not args.no_learning,
            kb_path=kb_path,
        )
    ).run(jobs)

    if args.json:
        print(report.to_json())
    else:
        for item in report.items:
            result = item.result
            print(
                "property %s (%s): %s%s"
                % (
                    result.prop_name,
                    result.kind,
                    result.status.value,
                    " [winner: %s]" % result.winner if result.winner else "",
                )
            )
            for engine_result in result.engine_results:
                flags = []
                if engine_result.cancelled:
                    flags.append("cancelled")
                if engine_result.timed_out:
                    flags.append("timed out")
                if engine_result.error:
                    flags.append("error: %s" % engine_result.error)
                print(
                    "  %-8s %-18s %8.3fs%s"
                    % (
                        engine_result.engine,
                        engine_result.status.value,
                        engine_result.wall_seconds,
                        "  (%s)" % ", ".join(flags) if flags else "",
                    )
                )
            if result.disagreement:
                print("  ENGINES DISAGREE: %s" % ", ".join(result.disagreement))
            counterexample = result.counterexample
            if counterexample is not None:
                label = (
                    "counterexample" if result.kind == "assertion" else "witness trace"
                )
                print("  %s:" % (label,))
                for line in counterexample.summary().splitlines():
                    print("    " + line)
            print()
        if report.disagreements:
            print("disagreements on: %s" % ", ".join(report.disagreements))

    if args.vcd:
        _dump_first_trace(
            args.vcd,
            circuit,
            ((item.job_id, item.result.counterexample) for item in report.items),
        )

    failing = any(
        (item.result.kind == "assertion" and item.result.status.value == "fails")
        or not item.result.conclusive
        for item in report.items
    )
    return 1 if failing or report.disagreements else 0


def _command_kb(args: argparse.Namespace) -> int:
    """The ``repro kb stats|prune|merge`` maintenance sub-commands."""
    from repro.kb import KnowledgeBase

    if args.kb_command == "stats":
        store = KnowledgeBase(args.store)
        try:
            stats = store.stats()
        finally:
            store.close()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print("knowledge base: %s" % stats["path"])
        if stats.get("disabled"):
            print("  DISABLED: %s" % stats.get("reason"))
            return 1
        print("  schema version: %d" % stats["schema_version"])
        print(
            "  %d model(s), %d cube(s), %d proven-FAIL memo(s), %d recorded hit(s)"
            % (stats["models"], stats["cubes"], stats["fail_memos"], stats["hits"])
        )
        for row in stats["per_model"]:
            print(
                "  model %s (%s): %d cube(s), %d memo(s), %d hit(s)"
                % (
                    row["model_key"],
                    row["circuit"],
                    row["cubes"],
                    row["fail_memos"],
                    row["hits"],
                )
            )
        return 0

    if args.kb_command == "prune":
        store = KnowledgeBase(args.store)
        try:
            if store.disabled:
                print("cannot prune %s: %s" % (args.store, store.disabled_reason))
                return 1
            removed = store.prune(min_hits=args.min_hits, keep=args.keep)
        finally:
            store.close()
        print("pruned %d cube(s) from %s" % (removed, args.store))
        return 0

    if args.kb_command == "merge":
        dest = KnowledgeBase(args.dest)
        try:
            if dest.disabled:
                print("cannot merge into %s: %s" % (args.dest, dest.disabled_reason))
                return 1
            for source_path in args.sources:
                source = KnowledgeBase(source_path)
                try:
                    if source.disabled:
                        print(
                            "skipping %s: %s" % (source_path, source.disabled_reason)
                        )
                        continue
                    merged = dest.merge_from(source)
                finally:
                    source.close()
                print(
                    "merged %s: %d model(s), %d cube(s), %d memo(s)"
                    % (
                        source_path,
                        merged["models"],
                        merged["cubes"],
                        merged["fail_memos"],
                    )
                )
        finally:
            dest.close()
        return 0

    raise SystemExit("unknown kb sub-command %r" % (args.kb_command,))


def _command_table1(args: argparse.Namespace) -> int:
    from repro.circuits import circuit_statistics

    print(
        "%-14s %8s %8s %6s %6s %6s"
        % ("ckt name", "#lines", "#gates", "#FFs", "#ins", "#outs")
    )
    for stats in circuit_statistics():
        print(
            "%-14s %8d %8d %6d %6d %6d"
            % (stats.name, stats.lines, stats.gates, stats.flip_flops, stats.inputs, stats.outputs)
        )
    return 0


def _command_table2(args: argparse.Namespace) -> int:
    from repro.circuits import all_case_ids, build_case

    case_ids = args.cases.split(",") if args.cases else all_case_ids()
    results = []
    labels = []
    for case_id in case_ids:
        case_id = case_id.strip()
        case = build_case(case_id)
        checker = AssertionChecker(
            case.circuit,
            environment=case.environment,
            initial_state=case.initial_state,
            options=CheckerOptions(max_frames=case.max_frames),
        )
        result = checker.check(case.prop)
        results.append(result)
        labels.append("%s (%s)" % (case_id, case.design))
        status = "ok" if result.status is case.expected_status else "UNEXPECTED"
        print("%s: %s [%s]" % (case_id, result.status.value, status))
    print()
    print(format_results_table(results, labels=labels))
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Word-level ATPG + modular arithmetic RTL assertion checking",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser("stats", help="print circuit statistics for a Verilog file")
    stats.add_argument("design", help="Verilog source file")
    stats.add_argument("--top", help="top module name (default: last module)")
    stats.set_defaults(func=_command_stats)

    analyze = subparsers.add_parser("analyze", help="run structural analyses on a Verilog file")
    analyze.add_argument("design", help="Verilog source file")
    analyze.add_argument("--top", help="top module name")
    analyze.add_argument(
        "--max-fsm-width", type=int, default=4, help="register width limit for FSM extraction"
    )
    analyze.set_defaults(func=_command_analyze)

    check = subparsers.add_parser("check", help="check properties on a Verilog file")
    check.add_argument("design", help="Verilog source file")
    check.add_argument("--top", help="top module name")
    check.add_argument(
        "--assert",
        dest="assertion",
        action="append",
        metavar="NAME=EXPR",
        help="assertion property (may be repeated)",
    )
    check.add_argument(
        "--witness",
        action="append",
        metavar="NAME=EXPR",
        help="witness property (may be repeated)",
    )
    check.add_argument("--max-frames", type=int, default=8, help="unrolling bound")
    check.add_argument(
        "--one-hot",
        action="append",
        metavar="SIG1,SIG2,...",
        help="one-hot input group (may be repeated)",
    )
    check.add_argument(
        "--pin", action="append", metavar="SIG=VALUE", help="pin an input to a constant"
    )
    check.add_argument(
        "--assume", action="append", metavar="EXPR", help="environment assumption expression"
    )
    check.add_argument(
        "--fsm-guidance",
        action="store_true",
        help="seed the search with local FSM reachability facts",
    )
    check.add_argument("--json", action="store_true", help="emit JSON instead of text")
    check.add_argument("--vcd", metavar="FILE", help="dump the first trace as VCD")
    check.add_argument(
        "--engines",
        default="atpg",
        metavar="NAME[,NAME...]",
        help="engine portfolio raced per property: atpg, bdd, sat, random "
        "(default: atpg only)",
    )
    check.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes checking properties in parallel (default: 1)",
    )
    check.add_argument(
        "--seed",
        type=int,
        help="base RNG seed for reproducible portfolio/batch runs (no effect "
        "on the deterministic default engine alone)",
    )
    check.add_argument(
        "--sim-width",
        type=int,
        metavar="K",
        help="bit-parallel lanes for the random-simulation engine: K vectors "
        "are evaluated per gate visit on the compiled kernel (default: 64; "
        "no effect on the deterministic default engine alone)",
    )
    check.add_argument(
        "--time-budget",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget per engine (enforced by cancellation)",
    )
    check.add_argument(
        "--compare",
        action="store_true",
        help="run every engine to completion and report disagreements "
        "instead of racing",
    )
    check.add_argument(
        "--no-incremental",
        action="store_true",
        help="rebuild the unrolled implication network from scratch for "
        "every bound instead of reusing it incrementally (debug/ablation)",
    )
    check.add_argument(
        "--no-learning",
        action="store_true",
        help="disable cross-bound search learning (persistent illegal-state "
        "cubes and proven-FAIL target memoisation on the cached unrolled "
        "models); verdicts are unchanged, only speed (debug/ablation)",
    )
    check.add_argument(
        "--kb",
        metavar="PATH",
        help="persistent knowledge-base store (sqlite): load previously "
        "learned cubes / proven-FAIL memos before checking and flush new "
        "facts afterwards; verdicts are unchanged, only speed "
        "(default: the REPRO_KB environment variable, if set)",
    )
    check.add_argument(
        "--no-kb",
        action="store_true",
        help="ignore --kb and REPRO_KB; run with in-process learning only",
    )
    check.set_defaults(func=_command_check)

    kb = subparsers.add_parser(
        "kb", help="inspect / maintain a persistent knowledge-base store"
    )
    kb_sub = kb.add_subparsers(dest="kb_command", required=True)
    kb_stats = kb_sub.add_parser("stats", help="print store totals per model")
    kb_stats.add_argument("store", help="knowledge-base file (sqlite)")
    kb_stats.add_argument("--json", action="store_true", help="emit JSON")
    kb_stats.set_defaults(func=_command_kb)
    kb_prune = kb_sub.add_parser("prune", help="drop cold cubes from a store")
    kb_prune.add_argument("store", help="knowledge-base file (sqlite)")
    kb_prune.add_argument(
        "--min-hits",
        type=int,
        default=0,
        metavar="N",
        help="drop cubes with fewer than N recorded hits",
    )
    kb_prune.add_argument(
        "--keep",
        type=int,
        metavar="N",
        help="keep only the hottest N cubes per model",
    )
    kb_prune.set_defaults(func=_command_kb)
    kb_merge = kb_sub.add_parser(
        "merge", help="merge source stores into a destination store"
    )
    kb_merge.add_argument("dest", help="destination knowledge-base file")
    kb_merge.add_argument(
        "sources", nargs="+", metavar="SOURCE", help="source knowledge-base files"
    )
    kb_merge.set_defaults(func=_command_kb)

    table1 = subparsers.add_parser("table1", help="regenerate the paper's Table 1")
    table1.set_defaults(func=_command_table1)

    table2 = subparsers.add_parser("table2", help="regenerate the paper's Table 2")
    table2.add_argument("--cases", help="comma-separated property ids (default: all)")
    table2.set_defaults(func=_command_table2)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
