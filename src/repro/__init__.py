"""repro -- word-level ATPG + modular arithmetic assertion checking.

A from-scratch Python reproduction of

    Huang & Cheng, "Assertion Checking by Combined Word-level ATPG and
    Modular Arithmetic Constraint-Solving Techniques", DAC 2000.

The package provides:

* a word-level RTL netlist and builder API (:mod:`repro.netlist`),
* a Verilog-subset front end (:mod:`repro.hdl`),
* three-valued word-level implication (:mod:`repro.implication`) over the
  cube/interval domain of :mod:`repro.bitvector`,
* the branch-and-bound word-level ATPG (:mod:`repro.atpg`),
* the modular arithmetic constraint solver (:mod:`repro.modsolver`),
* assertion / witness properties and environments (:mod:`repro.properties`),
* the top-level checker (:mod:`repro.checker`),
* baseline engines for comparison (:mod:`repro.baselines`),
* a compiled bit-parallel simulation kernel (:mod:`repro.sim`),
* the paper's benchmark designs and properties (:mod:`repro.circuits`).

The supported import surface for library users is the facade
(:mod:`repro.api`), re-exported here: build one serialisable
:class:`CheckRequest`, run it with :func:`check` / :func:`check_batch`, and
read the unified :class:`CheckReport`.  Internal modules such as
``repro.checker.engine`` stay importable but are not a stability contract.

Quickstart::

    from repro import Circuit, Assertion, Signal, build_request, check

    c = Circuit("demo")
    a = c.input("a", 4)
    b = c.input("b", 4)
    c.output(c.add(a, b), name="total")

    request = build_request(c, Assertion("no_overflow", Signal("total") >= Signal("a")))
    report = check(request)
"""

from repro import api
from repro.api import (
    CheckReport,
    CheckRequest,
    CircuitRef,
    PropertySpec,
    PropertyVerdict,
    RequestError,
    build_request,
    check,
    check_batch,
)
from repro.bitvector import BV3, ValueRange
from repro.netlist import Circuit, NetKind
from repro.properties import (
    Assertion,
    Witness,
    Signal,
    Const,
    And,
    Or,
    Not,
    Implies,
    Delayed,
    OneHot,
    AtMostOneHot,
    Environment,
)
from repro.checker import AssertionChecker, CheckerOptions, CheckResult, CheckStatus
from repro.sim import BitParallelSim, compile_circuit
from repro.simulation import Simulator

__version__ = "0.3.0"

__all__ = [
    "api",
    "CheckReport",
    "CheckRequest",
    "CircuitRef",
    "PropertySpec",
    "PropertyVerdict",
    "RequestError",
    "build_request",
    "check",
    "check_batch",
    "BV3",
    "ValueRange",
    "Circuit",
    "NetKind",
    "Assertion",
    "Witness",
    "Signal",
    "Const",
    "And",
    "Or",
    "Not",
    "Implies",
    "Delayed",
    "OneHot",
    "AtMostOneHot",
    "Environment",
    "AssertionChecker",
    "CheckerOptions",
    "CheckResult",
    "CheckStatus",
    "Simulator",
    "BitParallelSim",
    "compile_circuit",
    "__version__",
]
