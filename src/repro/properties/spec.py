"""Property expressions and the assertion / witness property classes.

An expression tree references circuit signals by name and combines them with
comparison, arithmetic and Boolean operators, plus a ``Delayed`` operator
giving access to a signal's value a fixed number of cycles earlier (used for
transition properties such as "after 11:59 the clock shows 12:00").

Two property kinds cover the paper's experiments:

* :class:`Assertion` -- a safety property: the expression must hold in every
  reachable cycle.  The checker searches for a *counter-example*.
* :class:`Witness` -- a reachability goal: the checker searches for an input
  sequence making the expression true in some cycle (the paper's "witness
  sequence" for p1, p4, p6, p8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

#: Operators allowed in :class:`BinOp`.
BINARY_OPERATORS = (
    "==", "!=", "<", "<=", ">", ">=",
    "&", "|", "^",
    "+", "-", "*",
)


class Expression:
    """Base class of the property expression AST."""

    # Convenience operator overloading so properties read naturally.
    def __eq__(self, other: object):  # type: ignore[override]
        return BinOp("==", self, _wrap(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return BinOp("!=", self, _wrap(other))

    def __lt__(self, other):
        return BinOp("<", self, _wrap(other))

    def __le__(self, other):
        return BinOp("<=", self, _wrap(other))

    def __gt__(self, other):
        return BinOp(">", self, _wrap(other))

    def __ge__(self, other):
        return BinOp(">=", self, _wrap(other))

    def __and__(self, other):
        return And(self, _wrap(other))

    def __or__(self, other):
        return Or(self, _wrap(other))

    def __xor__(self, other):
        return BinOp("^", self, _wrap(other))

    def __add__(self, other):
        return BinOp("+", self, _wrap(other))

    def __sub__(self, other):
        return BinOp("-", self, _wrap(other))

    def __mul__(self, other):
        return BinOp("*", self, _wrap(other))

    def __invert__(self):
        return Not(self)

    def implies(self, other):
        """Logical implication ``self -> other``."""
        return Implies(self, _wrap(other))

    def __hash__(self):  # expressions are used as dict keys in tests
        return id(self)

    # ------------------------------------------------------------------
    def children(self) -> Sequence["Expression"]:
        """Sub-expressions (overridden by composite nodes)."""
        return ()

    def signals(self) -> List[str]:
        """Names of all signals referenced by this expression."""
        found: List[str] = []
        stack: List[Expression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Signal):
                if node.name not in found:
                    found.append(node.name)
            if isinstance(node, Delayed):
                stack.append(node.expr)
            stack.extend(node.children())
        return found


def _wrap(value) -> "Expression":
    if isinstance(value, Expression):
        return value
    if isinstance(value, int):
        return Const(value)
    raise TypeError("cannot use %r in a property expression" % (value,))


class Signal(Expression):
    """A reference to a circuit net by name."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return "Signal(%r)" % (self.name,)


class Const(Expression):
    """An integer constant; the width is inferred from its context."""

    def __init__(self, value: int, width: Optional[int] = None):
        self.value = value
        self.width = width

    def __repr__(self) -> str:
        return "Const(%d)" % (self.value,)


class BinOp(Expression):
    """A binary operator over two sub-expressions."""

    def __init__(self, op: str, lhs: Expression, rhs: Expression):
        if op not in BINARY_OPERATORS:
            raise ValueError("unsupported property operator %r" % (op,))
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def children(self) -> Sequence[Expression]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.lhs, self.op, self.rhs)


class Not(Expression):
    """Logical negation of a 1-bit expression."""

    def __init__(self, expr: Expression):
        self.expr = expr

    def children(self) -> Sequence[Expression]:
        return (self.expr,)

    def __repr__(self) -> str:
        return "Not(%r)" % (self.expr,)


class And(Expression):
    """Logical conjunction of 1-bit expressions."""

    def __init__(self, *terms: Expression):
        if len(terms) < 2:
            raise ValueError("And needs at least two terms")
        self.terms = [_wrap(t) for t in terms]

    def children(self) -> Sequence[Expression]:
        return tuple(self.terms)

    def __repr__(self) -> str:
        return "And(%s)" % (", ".join(repr(t) for t in self.terms),)


class Or(Expression):
    """Logical disjunction of 1-bit expressions."""

    def __init__(self, *terms: Expression):
        if len(terms) < 2:
            raise ValueError("Or needs at least two terms")
        self.terms = [_wrap(t) for t in terms]

    def children(self) -> Sequence[Expression]:
        return tuple(self.terms)

    def __repr__(self) -> str:
        return "Or(%s)" % (", ".join(repr(t) for t in self.terms),)


class Implies(Expression):
    """Logical implication ``antecedent -> consequent``."""

    def __init__(self, antecedent: Expression, consequent: Expression):
        self.antecedent = _wrap(antecedent)
        self.consequent = _wrap(consequent)

    def children(self) -> Sequence[Expression]:
        return (self.antecedent, self.consequent)

    def __repr__(self) -> str:
        return "Implies(%r, %r)" % (self.antecedent, self.consequent)


class Delayed(Expression):
    """The value of an expression ``cycles`` clock cycles earlier.

    Compiled into monitor registers; at cycles earlier than ``cycles`` the
    value is ``initial`` (default 0), so transition properties should be
    written to be vacuous in those cycles (e.g. guard with the delayed
    expression itself).
    """

    def __init__(self, expr: Expression, cycles: int = 1, initial: int = 0):
        if cycles < 1:
            raise ValueError("Delayed requires cycles >= 1")
        self.expr = _wrap(expr)
        self.cycles = cycles
        self.initial = initial

    def children(self) -> Sequence[Expression]:
        return (self.expr,)

    def __repr__(self) -> str:
        return "Delayed(%r, %d)" % (self.expr, self.cycles)


class OneHot(Expression):
    """Exactly one of the listed 1-bit expressions is 1."""

    def __init__(self, *terms: Expression):
        if len(terms) < 2:
            raise ValueError("OneHot needs at least two terms")
        self.terms = [_wrap(t) for t in terms]

    def children(self) -> Sequence[Expression]:
        return tuple(self.terms)

    def __repr__(self) -> str:
        return "OneHot(%d terms)" % (len(self.terms),)


class AtMostOneHot(Expression):
    """At most one of the listed 1-bit expressions is 1."""

    def __init__(self, *terms: Expression):
        if len(terms) < 2:
            raise ValueError("AtMostOneHot needs at least two terms")
        self.terms = [_wrap(t) for t in terms]

    def children(self) -> Sequence[Expression]:
        return tuple(self.terms)

    def __repr__(self) -> str:
        return "AtMostOneHot(%d terms)" % (len(self.terms),)


# ----------------------------------------------------------------------
# Property kinds
# ----------------------------------------------------------------------
@dataclass
class Property:
    """Base property: a named expression over circuit signals."""

    name: str
    expr: Expression
    description: str = ""

    @property
    def is_assertion(self) -> bool:
        return isinstance(self, Assertion)


@dataclass
class Assertion(Property):
    """A safety assertion: the expression must hold in every cycle."""


@dataclass
class Witness(Property):
    """A reachability goal: find a cycle where the expression holds."""
