"""Environmental setup: input constraints and initialization sequences.

The paper's framework requires an environmental setup defining constraints on
the circuit inputs (clock waveforms, one-hot constraints, ...) and an
initialization sequence used to derive the set of initial states.  We model:

* *pinned inputs* -- an input held at a constant value in every frame;
* *one-hot input groups* -- exactly one signal of the group is 1 per frame;
* *assumption expressions* -- arbitrary 1-bit conditions that must hold in
  every frame (compiled to monitor nets like properties);
* *initialization sequences* -- concrete input vectors simulated from the
  power-on state to produce the initial state used for checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net
from repro.properties.spec import Expression
from repro.simulation.simulator import Simulator


@dataclass
class InitializationSequence:
    """Concrete input vectors applied from power-on to derive initial states."""

    vectors: List[Dict[str, int]] = field(default_factory=list)

    def derive_initial_state(self, circuit: Circuit) -> Dict[str, int]:
        """Simulate the sequence and return the resulting register values."""
        simulator = Simulator(circuit)
        for vector in self.vectors:
            simulator.step(vector)
        return simulator.register_values()

    def __len__(self) -> int:
        return len(self.vectors)


class Environment:
    """Constraints on the circuit inputs assumed by every property check."""

    def __init__(self):
        self.pinned: Dict[str, int] = {}
        self.one_hot_groups: List[List[str]] = []
        self.assumptions: List[Expression] = []
        self.initialization: Optional[InitializationSequence] = None

    # ------------------------------------------------------------------
    def pin(self, signal: Union[str, Net], value: int) -> "Environment":
        """Hold an input at a constant value in every frame."""
        name = signal.name if isinstance(signal, Net) else signal
        self.pinned[name] = value
        return self

    def one_hot(self, signals: Sequence[Union[str, Net]]) -> "Environment":
        """Require exactly one of the listed 1-bit inputs to be 1 per frame."""
        names = [s.name if isinstance(s, Net) else s for s in signals]
        if len(names) < 2:
            raise ValueError("a one-hot group needs at least two signals")
        self.one_hot_groups.append(names)
        return self

    def assume(self, expr: Expression) -> "Environment":
        """Add an arbitrary 1-bit assumption that must hold in every frame."""
        self.assumptions.append(expr)
        return self

    def initialize_with(self, vectors: Sequence[Mapping[str, int]]) -> "Environment":
        """Provide an initialization sequence (applied before checking)."""
        self.initialization = InitializationSequence([dict(v) for v in vectors])
        return self

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when no constraint at all was declared."""
        return (
            not self.pinned
            and not self.one_hot_groups
            and not self.assumptions
            and self.initialization is None
        )

    def satisfied_by(self, input_vector: Mapping[str, int]) -> bool:
        """Check a concrete input vector against pinned and one-hot constraints.

        Used to validate generated counterexample traces.
        """
        for name, value in self.pinned.items():
            if name in input_vector and input_vector[name] != value:
                return False
        for group in self.one_hot_groups:
            ones = sum(1 for name in group if input_vector.get(name, 0) & 1)
            if ones != 1:
                return False
        return True

    def random_consistent_vector(
        self, circuit: Circuit, seed: int = 0
    ) -> Dict[str, int]:
        """A deterministic input vector satisfying pin/one-hot constraints.

        Useful for building initialization sequences and smoke tests.
        """
        vector: Dict[str, int] = {}
        for net in circuit.inputs:
            vector[net.name] = 0
        vector.update(self.pinned)
        for index, group in enumerate(self.one_hot_groups):
            chosen = group[(seed + index) % len(group)]
            for name in group:
                vector[name] = 1 if name == chosen else 0
        return vector

    def __repr__(self) -> str:
        return "Environment(%d pinned, %d one-hot groups, %d assumptions)" % (
            len(self.pinned),
            len(self.one_hot_groups),
            len(self.assumptions),
        )
