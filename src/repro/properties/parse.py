"""Parsing of property expressions from text.

The CLI (``python -m repro check``) and configuration files need to accept
properties written as plain strings, e.g.::

    hour != 13
    onehot(gnt0, gnt1, gnt2)
    (req0 & req1) == 0
    delayed(minute == 59, 1) >> (minute == 0)

The grammar is Python's own expression grammar (parsed with :mod:`ast`,
never evaluated), mapped onto the property AST of
:mod:`repro.properties.spec`:

* identifiers become :class:`~repro.properties.spec.Signal`;
* integer literals become constants;
* ``== != < <= > >= + - * & | ^ ~`` map to the matching operators;
* ``and`` / ``or`` / ``not`` map to :class:`And` / :class:`Or` / :class:`Not`;
* ``>>`` is logical implication;
* the function forms ``onehot(...)``, ``atmostone(...)``,
  ``delayed(expr, cycles)`` and ``implies(a, b)`` are also available.
"""

from __future__ import annotations

import ast
from typing import Union

from repro.properties.spec import (
    And,
    AtMostOneHot,
    BinOp,
    Const,
    Delayed,
    Expression,
    Implies,
    Not,
    OneHot,
    Or,
    Signal,
)


class PropertyParseError(ValueError):
    """Raised when a property string cannot be parsed."""


#: Binary AST operator types mapped to the property-spec operator symbol.
_BIN_OPERATORS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
}

_COMPARE_OPERATORS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}


def parse_expression(text: str) -> Expression:
    """Parse a property expression string into an expression tree."""
    if not text or not text.strip():
        raise PropertyParseError("empty property expression")
    try:
        tree = ast.parse(text.strip(), mode="eval")
    except SyntaxError as exc:
        raise PropertyParseError("invalid property expression %r: %s" % (text, exc)) from exc
    return _convert(tree.body)


def _operand(node: ast.AST) -> Union[Expression, int]:
    """Convert a node that may be a plain integer operand."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            raise PropertyParseError("only integer constants are allowed, got %r" % (node.value,))
        return node.value
    return _convert(node)


def _convert(node: ast.AST) -> Expression:
    if isinstance(node, ast.Name):
        return Signal(node.id)

    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            raise PropertyParseError("only integer constants are allowed, got %r" % (node.value,))
        return Const(node.value)

    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, (ast.Invert, ast.Not)):
            return Not(_convert(node.operand))
        raise PropertyParseError("unsupported unary operator %r" % (node.op,))

    if isinstance(node, ast.BoolOp):
        terms = [_convert(value) for value in node.values]
        return And(*terms) if isinstance(node.op, ast.And) else Or(*terms)

    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.RShift):
            return Implies(_convert(node.left), _convert(node.right))
        symbol = _BIN_OPERATORS.get(type(node.op))
        if symbol is None:
            raise PropertyParseError("unsupported operator %r" % (node.op,))
        left = _convert(node.left)
        right = _operand(node.right)
        return _apply_binop(left, symbol, right)

    if isinstance(node, ast.Compare):
        if len(node.ops) != 1 or len(node.comparators) != 1:
            raise PropertyParseError("chained comparisons are not supported")
        symbol = _COMPARE_OPERATORS.get(type(node.ops[0]))
        if symbol is None:
            raise PropertyParseError("unsupported comparison %r" % (node.ops[0],))
        left = _convert(node.left)
        right = _operand(node.comparators[0])
        return _apply_binop(left, symbol, right)

    if isinstance(node, ast.Call):
        return _convert_call(node)

    raise PropertyParseError("unsupported syntax %r" % (ast.dump(node),))


def _apply_binop(left: Expression, symbol: str, right: Union[Expression, int]) -> Expression:
    builders = {
        "==": lambda: left == right,
        "!=": lambda: left != right,
        "<": lambda: left < right,
        "<=": lambda: left <= right,
        ">": lambda: left > right,
        ">=": lambda: left >= right,
        "+": lambda: left + right,
        "-": lambda: left - right,
        "*": lambda: left * right,
        "&": lambda: left & right,
        "|": lambda: left | right,
        "^": lambda: left ^ right,
    }
    return builders[symbol]()


def _convert_call(node: ast.Call) -> Expression:
    if not isinstance(node.func, ast.Name):
        raise PropertyParseError("only simple function calls are supported")
    name = node.func.id.lower()
    arguments = [_convert(argument) for argument in node.args]

    if name == "onehot":
        return OneHot(*arguments)
    if name in ("atmostone", "atmostonehot"):
        return AtMostOneHot(*arguments)
    if name == "implies":
        if len(arguments) != 2:
            raise PropertyParseError("implies() takes exactly two arguments")
        return Implies(arguments[0], arguments[1])
    if name == "delayed":
        if (
            len(node.args) not in (2, 3)
            or not all(isinstance(arg, ast.Constant) for arg in node.args[1:])
        ):
            raise PropertyParseError(
                "delayed(expr, cycles[, initial]) needs constant cycle/initial counts"
            )
        initial = int(node.args[2].value) if len(node.args) == 3 else 0
        return Delayed(arguments[0], cycles=int(node.args[1].value), initial=initial)
    raise PropertyParseError("unknown property function %r" % (name,))


# ----------------------------------------------------------------------
# Rendering (the inverse of :func:`parse_expression`)
# ----------------------------------------------------------------------
def format_expression(expr: Expression) -> str:
    """Render an expression tree as text that :func:`parse_expression` accepts.

    This is what makes programmatically built properties *serialisable*: the
    :class:`~repro.api.CheckRequest` schema carries properties as expression
    strings, and this renderer turns an in-memory tree back into one.  The
    round trip is structure-exact --
    ``property_search_digest(parse_expression(format_expression(e)))``
    equals the digest of ``e`` -- because every composite is parenthesised
    and n-ary operators are kept flat.
    """
    if isinstance(expr, Signal):
        if not expr.name.isidentifier():
            raise PropertyParseError(
                "signal name %r is not renderable as an identifier" % (expr.name,)
            )
        return expr.name
    if isinstance(expr, Const):
        if expr.width is not None:
            raise PropertyParseError(
                "explicit-width constants have no textual form (Const(%d, width=%d))"
                % (expr.value, expr.width)
            )
        return str(expr.value)
    if isinstance(expr, Not):
        return "(~%s)" % format_expression(expr.expr)
    if isinstance(expr, And):
        return "(%s)" % " and ".join(format_expression(t) for t in expr.terms)
    if isinstance(expr, Or):
        return "(%s)" % " or ".join(format_expression(t) for t in expr.terms)
    if isinstance(expr, Implies):
        return "implies(%s, %s)" % (
            format_expression(expr.antecedent),
            format_expression(expr.consequent),
        )
    if isinstance(expr, OneHot):
        return "onehot(%s)" % ", ".join(format_expression(t) for t in expr.terms)
    if isinstance(expr, AtMostOneHot):
        return "atmostone(%s)" % ", ".join(format_expression(t) for t in expr.terms)
    if isinstance(expr, Delayed):
        if expr.initial:
            return "delayed(%s, %d, %d)" % (
                format_expression(expr.expr), expr.cycles, expr.initial,
            )
        return "delayed(%s, %d)" % (format_expression(expr.expr), expr.cycles)
    if isinstance(expr, BinOp):
        return "(%s %s %s)" % (
            format_expression(expr.lhs), expr.op, format_expression(expr.rhs),
        )
    raise PropertyParseError(
        "cannot render expression node %s" % (type(expr).__name__,)
    )
