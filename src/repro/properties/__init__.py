"""Assertion / witness properties and environmental constraints.

Properties are written as expressions over named circuit signals
(:mod:`repro.properties.spec`).  The converter compiles an expression into a
1-bit *monitor* net inside the circuit and translates the (inverted) property
into value requirements at specific time frames
(:mod:`repro.properties.convert`), exactly as the paper's
property-to-constraint converter does.  Environmental setup -- one-hot input
constraints, pinned values, initialization sequences -- lives in
:mod:`repro.properties.environment`.
"""

from repro.properties.spec import (
    Expression,
    Signal,
    Const,
    BinOp,
    Not,
    And,
    Or,
    Implies,
    Delayed,
    OneHot,
    AtMostOneHot,
    Assertion,
    Witness,
    Property,
)
from repro.properties.convert import PropertyCompiler, CompiledProperty
from repro.properties.environment import Environment, InitializationSequence
from repro.properties.parse import (
    PropertyParseError,
    format_expression,
    parse_expression,
)

__all__ = [
    "Expression",
    "Signal",
    "Const",
    "BinOp",
    "Not",
    "And",
    "Or",
    "Implies",
    "Delayed",
    "OneHot",
    "AtMostOneHot",
    "Assertion",
    "Witness",
    "Property",
    "PropertyCompiler",
    "CompiledProperty",
    "Environment",
    "InitializationSequence",
    "PropertyParseError",
    "format_expression",
    "parse_expression",
]
