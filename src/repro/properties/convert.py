"""Compilation of property expressions into monitor logic and frame requirements.

The property-to-constraint converter of the paper turns the (inverted)
assertion into value requirements in different time frames.  We realise this
by compiling the property expression into a 1-bit *monitor net* built from
the same word-level primitives as the design, so that every implication and
justification technique applies to the property logic as well.  The
requirement then reduces to a single-bit assignment at the target frame:
``monitor = 0`` to generate an assertion counter-example, ``monitor = 1`` to
generate a witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net, NetKind
from repro.properties.spec import (
    And,
    Assertion,
    AtMostOneHot,
    BinOp,
    Const,
    Delayed,
    Expression,
    Implies,
    Not,
    OneHot,
    Or,
    Property,
    Signal,
)


@dataclass
class CompiledProperty:
    """A property compiled into monitor logic inside the circuit."""

    prop: Property
    monitor: Net
    #: value the monitor must take at the target frame to produce a
    #: counter-example (assertions) or a witness (witness properties).
    goal_value: int
    #: number of leading frames in which the property is not meaningful
    #: because Delayed() registers still hold their initial values.
    warmup_frames: int

    @property
    def is_assertion(self) -> bool:
        return isinstance(self.prop, Assertion)


class PropertyCompiler:
    """Compiles property expressions into monitor nets of a circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._counter = 0

    # ------------------------------------------------------------------
    def compile(self, prop: Property) -> CompiledProperty:
        """Compile a property; the monitor gates are added to the circuit.

        Compiling the same property into the same circuit twice returns the
        first compilation's monitor instead of growing the netlist.  This
        keeps long-lived circuits (a daemon worker's resident design) from
        accumulating one monitor cone per job, and keeps monitor net names
        -- which appear in reported traces -- deterministic across repeats.
        """
        memo = self._memo()
        key = self._memo_key(prop)
        if key is not None and key in memo:
            return memo[key]
        monitor, delay_depth = self._compile_bool(prop.expr)
        named = self.circuit.buf(monitor, name=self._fresh("monitor_%s" % prop.name))
        goal_value = 0 if isinstance(prop, Assertion) else 1
        compiled = CompiledProperty(
            prop=prop,
            monitor=named,
            goal_value=goal_value,
            warmup_frames=delay_depth,
        )
        if key is not None:
            memo[key] = compiled
        return compiled

    # ------------------------------------------------------------------
    def _memo(self) -> dict:
        memo = getattr(self.circuit, "_property_monitor_memo", None)
        if memo is None:
            memo = {}
            self.circuit._property_monitor_memo = memo
        return memo

    @staticmethod
    def _memo_key(prop: Property):
        # The textual render is a structural identity for the expression;
        # expressions it cannot render (non-identifier signal names) are
        # simply not memoised.
        from repro.properties.parse import format_expression

        try:
            return (type(prop).__name__, prop.name, format_expression(prop.expr))
        except Exception:
            return None

    def compile_condition(self, expr: Expression, name: str = "cond") -> Net:
        """Compile a bare 1-bit condition (used for environment constraints)."""
        net, _ = self._compile_bool(expr)
        return self.circuit.buf(net, name=self._fresh(name))

    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        while True:
            self._counter += 1
            candidate = "%s_%d" % (prefix, self._counter)
            if not self.circuit.has_net(candidate):
                return candidate

    def _compile_bool(self, expr: Expression) -> Tuple[Net, int]:
        """Compile an expression to a 1-bit net; returns (net, delay depth)."""
        net, depth = self._compile(expr)
        if net.width != 1:
            net = self.circuit.ne(net, 0)
        return net, depth

    def _compile(self, expr: Expression) -> Tuple[Net, int]:
        circuit = self.circuit

        if isinstance(expr, Signal):
            return circuit.net(expr.name), 0

        if isinstance(expr, Const):
            width = expr.width if expr.width is not None else max(1, expr.value.bit_length())
            return circuit.const(expr.value, width), 0

        if isinstance(expr, BinOp):
            lhs, depth_l = self._compile(expr.lhs)
            rhs, depth_r = self._compile(expr.rhs)
            lhs, rhs = self._match_widths(lhs, rhs)
            depth = max(depth_l, depth_r)
            op = expr.op
            if op in ("==", "!=", "<", "<=", ">", ">="):
                build = {
                    "==": circuit.eq, "!=": circuit.ne, "<": circuit.lt,
                    "<=": circuit.le, ">": circuit.gt, ">=": circuit.ge,
                }[op]
                return build(lhs, rhs), depth
            if op == "&":
                return circuit.and_(lhs, rhs), depth
            if op == "|":
                return circuit.or_(lhs, rhs), depth
            if op == "^":
                return circuit.xor(lhs, rhs), depth
            if op == "+":
                return circuit.add(lhs, rhs), depth
            if op == "-":
                return circuit.sub(lhs, rhs), depth
            if op == "*":
                return circuit.mul(lhs, rhs), depth
            raise ValueError("unsupported operator %r" % (op,))

        if isinstance(expr, Not):
            net, depth = self._compile_bool(expr.expr)
            return circuit.not_(net), depth

        if isinstance(expr, And):
            nets, depth = self._compile_terms(expr.terms)
            return circuit.and_(*nets), depth

        if isinstance(expr, Or):
            nets, depth = self._compile_terms(expr.terms)
            return circuit.or_(*nets), depth

        if isinstance(expr, Implies):
            antecedent, depth_a = self._compile_bool(expr.antecedent)
            consequent, depth_c = self._compile_bool(expr.consequent)
            return circuit.or_(circuit.not_(antecedent), consequent), max(depth_a, depth_c)

        if isinstance(expr, Delayed):
            inner, depth = self._compile(expr.expr)
            current = inner
            for _ in range(expr.cycles):
                current = circuit.dff(
                    current,
                    init_value=expr.initial,
                    name=self._fresh("monitor_delay"),
                    kind=NetKind.DATA if current.width > 1 else NetKind.CONTROL,
                )
            return current, depth + expr.cycles

        if isinstance(expr, OneHot):
            nets, depth = self._compile_terms(expr.terms)
            return self._one_hot(nets, exactly=True), depth

        if isinstance(expr, AtMostOneHot):
            nets, depth = self._compile_terms(expr.terms)
            return self._one_hot(nets, exactly=False), depth

        raise TypeError("cannot compile property expression %r" % (expr,))

    def _compile_terms(self, terms: List[Expression]) -> Tuple[List[Net], int]:
        nets: List[Net] = []
        depth = 0
        for term in terms:
            net, term_depth = self._compile_bool(term)
            nets.append(net)
            depth = max(depth, term_depth)
        return nets, depth

    def _match_widths(self, lhs: Net, rhs: Net) -> Tuple[Net, Net]:
        if lhs.width == rhs.width:
            return lhs, rhs
        width = max(lhs.width, rhs.width)
        return self.circuit.zext(lhs, width), self.circuit.zext(rhs, width)

    def _one_hot(self, nets: List[Net], exactly: bool) -> Net:
        """Build a one-hot (or at-most-one-hot) checker from 1-bit nets.

        The pairwise formulation keeps the logic shallow: no two terms are
        simultaneously 1, and (for the exact variant) at least one term is 1.
        """
        circuit = self.circuit
        no_pair = None
        for i in range(len(nets)):
            for j in range(i + 1, len(nets)):
                pair = circuit.nand(nets[i], nets[j])
                no_pair = pair if no_pair is None else circuit.and_(no_pair, pair)
        if not exactly:
            return no_pair
        any_set = circuit.or_(*nets) if len(nets) > 1 else nets[0]
        return circuit.and_(no_pair, any_set)
