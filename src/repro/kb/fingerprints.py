"""Process-stable fingerprints naming a model configuration on disk.

The in-process :class:`~repro.checker.incremental.UnrolledModelCache` keys
cached models by ``id(circuit)`` -- perfect for object identity within one
process, useless across processes.  The knowledge base instead keys its rows
by *structural* fingerprints: pure FNV-1a hashes of a canonical dump of the
circuit, the initial register state, and the environmental setup.  Two
processes that elaborate the same design the same way compute the same key
and therefore see each other's learned facts.

The circuit fingerprint is taken over a snapshot of the circuit *as it was
when the first knowledge-base-enabled checker saw it* -- before that checker
compiles any property or assumption monitors into it.  The snapshot also
records the set of net names existing at that moment: only learned cubes
whose literals all lie inside the snapshot are persisted, because monitor
nets synthesised later carry generated names that another process has no
obligation to reproduce.  Both the fingerprint and the name snapshot are
cached on the circuit object, so every checker sharing that circuit (the
batch-group shape) agrees on the key.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Optional, Tuple

from repro.atpg.statehash import fnv1a, property_search_digest

#: attribute caching the (fingerprint, net-name snapshot) pair on a circuit.
_SNAPSHOT_ATTR = "_kb_snapshot"


def circuit_snapshot(circuit) -> Tuple[int, FrozenSet[str]]:
    """The circuit's structural fingerprint and persistable-net-name set.

    Computed once per circuit object (cached on the instance) at the moment
    the first knowledge-base-enabled checker is constructed for it; see the
    module docstring for why the timing matters.
    """
    cached = getattr(circuit, _SNAPSHOT_ATTR, None)
    if cached is not None:
        return cached
    snapshot = (circuit_fingerprint(circuit), frozenset(net.name for net in circuit.nets))
    setattr(circuit, _SNAPSHOT_ATTR, snapshot)
    return snapshot


def circuit_fingerprint(circuit) -> int:
    """Stable 64-bit structural hash of a circuit.

    Covers every net (name, width, kind), every gate (class, name, input and
    output net names, plus any scalar parameters such as constant values,
    slice bounds or comparison operators), the flip-flop list and the primary
    input/output designations.  Deliberately ignores object identities and
    insertion bookkeeping (``uid``), so re-elaborating the same source in a
    fresh process reproduces the hash.
    """
    parts = ["circuit:%s" % getattr(circuit, "name", "")]
    for net in circuit.nets:
        parts.append("n:%s/%d/%s" % (net.name, net.width, net.kind.value))
    for gate in circuit.gates:
        scalars = []
        for attr, value in sorted(vars(gate).items()):
            if attr in ("name", "uid"):
                continue
            if isinstance(value, (bool, int, str)):
                scalars.append("%s=%r" % (attr, value))
        parts.append(
            "g:%s:%s(%s)->%s{%s}"
            % (
                type(gate).__name__,
                gate.name,
                ",".join(net.name for net in gate.inputs),
                gate.output.name,
                ",".join(scalars),
            )
        )
    parts.append("i:" + ",".join(net.name for net in circuit.inputs))
    parts.append("o:" + ",".join(net.name for net in circuit.outputs))
    parts.append("f:" + ",".join(gate.name for gate in circuit.flip_flops))
    return fnv1a("\n".join(parts).encode("utf-8"))


def initial_state_kb_fingerprint(initial_state: Optional[Mapping[str, int]]) -> int:
    """Stable hash of the initial register-state mapping (``None`` included)."""
    if initial_state is None:
        payload = "initial:none"
    else:
        items = sorted((str(name), int(value)) for name, value in initial_state.items())
        payload = "initial:" + ";".join("%s=%d" % item for item in items)
    return fnv1a(payload.encode("utf-8"))


def environment_kb_fingerprint(environment) -> int:
    """Stable hash of an environmental setup.

    Assumption expressions are digested structurally (via
    :func:`~repro.atpg.statehash.property_search_digest`, exact spelling)
    rather than through ``repr``, which elides the terms of one-hot
    expressions and is therefore collision-prone.
    """
    if environment is None:
        return fnv1a(b"env:none")
    parts = ["env"]
    for name in sorted(environment.pinned):
        parts.append("pin:%s=%d" % (name, environment.pinned[name]))
    for group in environment.one_hot_groups:
        parts.append("onehot:" + ",".join(group))
    for expr in environment.assumptions:
        parts.append("assume:%016x" % property_search_digest(expr))
    init = environment.initialization
    if init is not None:
        for vector in init.vectors:
            items = sorted((str(k), int(v)) for k, v in vector.items())
            parts.append("init:" + ";".join("%s=%d" % item for item in items))
    return fnv1a("\n".join(parts).encode("utf-8"))


def model_kb_key(circuit, initial_state, environment) -> str:
    """The on-disk key naming one (circuit, initial state, environment) model.

    A fixed-width hex triple -- process-stable, filesystem- and SQL-friendly.
    """
    circuit_fp, _ = circuit_snapshot(circuit)
    return "%016x-%016x-%016x" % (
        circuit_fp,
        initial_state_kb_fingerprint(initial_state),
        environment_kb_fingerprint(environment),
    )
