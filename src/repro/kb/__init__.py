"""Persistent cross-process knowledge base for learned search facts.

Everything the checker learns while riding a cached unrolled model --
conflict-lifted cubes, verified illegal-state cubes, datapath infeasibility
certificates, proven-FAIL target memos -- used to die with the process.
This package persists those facts in a versioned sqlite store keyed by
process-stable structural fingerprints, so batch workers and successive CLI
runs pick up where the last process left off.

Public surface:

* :func:`open_knowledge_base` / :class:`KnowledgeBase` -- the store handle;
* :func:`model_kb_key` / :func:`circuit_fingerprint` -- the structural keys;
* :func:`flush_attached_stores` -- the worker's sync-to-disk barrier.

See ``docs/knowledge-base.md`` for the on-disk format and guarantees.
"""

from repro.kb.fingerprints import (
    circuit_fingerprint,
    circuit_snapshot,
    environment_kb_fingerprint,
    initial_state_kb_fingerprint,
    model_kb_key,
)
from repro.kb.store import (
    SCHEMA_VERSION,
    KnowledgeBase,
    flush_attached_stores,
    open_knowledge_base,
)

__all__ = [
    "SCHEMA_VERSION",
    "KnowledgeBase",
    "circuit_fingerprint",
    "circuit_snapshot",
    "environment_kb_fingerprint",
    "flush_attached_stores",
    "initial_state_kb_fingerprint",
    "model_kb_key",
    "open_knowledge_base",
]
