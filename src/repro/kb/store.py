"""The sqlite-backed persistent knowledge base for learned search facts.

One :class:`KnowledgeBase` wraps one sqlite file holding, per *model key*
(the structural circuit/initial-state/environment fingerprint triple from
:mod:`repro.kb.fingerprints`):

* the model's **learned cubes** -- literals, anchoring metadata (shiftable /
  frame window), property digest scope, derivation source and hit counter;
* its **proven-FAIL target memos** -- (search fingerprint, target frame)
  pairs whose whole justification search completed with FAIL;
* its **solver infeasibility cores** (schema v2) -- canonical arithmetic
  problem fingerprints mapped to the conflict core the modular solver
  certified, so repeated datapath refutations replay without a solver call.

Design rules (see ``docs/knowledge-base.md`` for the full contract):

* **versioned schema** -- ``kb_meta.schema_version`` names the on-disk
  format; stores written by a *newer* repro are left untouched and the
  handle disables itself, older versions are migrated forward in place;
* **merge, never clobber** -- flushing unions cubes (keyed by their
  process-stable fingerprint) taking the maximum hit counter, and only ever
  *adds* proven-FAIL memos; concurrent flushes from batch workers therefore
  commute;
* **crash safety** -- every flush is a single immediate write transaction;
  a reader either sees the previous consistent state or the new one;
* **fail open** -- a corrupt, truncated or unreadable store never fails a
  check: the handle degrades to an empty, write-disabled knowledge base and
  records the reason in :attr:`KnowledgeBase.disabled_reason`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.atpg.estg import ExtendedStateTransitionGraph, LearnedCube
from repro.bitvector import BV3
from repro.kb.fingerprints import circuit_snapshot, model_kb_key

#: current on-disk format version (bump on any incompatible schema change).
#: v1: cubes + fail memos.  v2: adds the ``solver_cores`` table.
SCHEMA_VERSION = 2

#: seconds sqlite waits on a locked database before raising; concurrent
#: batch workers flush small transactions, so collisions resolve quickly.
_BUSY_TIMEOUT = 30.0

#: retry count for flushes that still hit a lock after the busy timeout.
_WRITE_RETRIES = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS kb_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS models (
    model_key TEXT PRIMARY KEY,
    circuit_name TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS cubes (
    model_key TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    literals TEXT NOT NULL,
    shiftable INTEGER NOT NULL,
    min_position INTEGER NOT NULL,
    max_position INTEGER NOT NULL,
    prop_digest TEXT,
    source TEXT NOT NULL,
    hits INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (model_key, fingerprint)
);
CREATE TABLE IF NOT EXISTS fail_memos (
    model_key TEXT NOT NULL,
    search_fp TEXT NOT NULL,
    target_frame INTEGER NOT NULL,
    PRIMARY KEY (model_key, search_fp, target_frame)
);
CREATE TABLE IF NOT EXISTS solver_cores (
    model_key TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    core TEXT NOT NULL,
    hits INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (model_key, fingerprint)
);
"""

#: per-version upgrade steps applied by :meth:`KnowledgeBase._migrate`;
#: entry N upgrades a v(N) store to v(N+1).
_MIGRATIONS = {
    1: [
        # v1 -> v2: solver infeasibility cores.  Purely additive -- the
        # existing cube / memo rows are untouched, so a migrated store is
        # byte-compatible with one freshly created at v2 plus its history.
        "CREATE TABLE IF NOT EXISTS solver_cores ("
        " model_key TEXT NOT NULL,"
        " fingerprint TEXT NOT NULL,"
        " core TEXT NOT NULL,"
        " hits INTEGER NOT NULL DEFAULT 0,"
        " PRIMARY KEY (model_key, fingerprint))",
    ],
}


def _freeze(value):
    """Recursively turn JSON lists back into the tuples fingerprints use."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def _jsonable(value) -> bool:
    """True when ``value`` is a scalar/tuple tree JSON round-trips exactly."""
    if value is None or isinstance(value, (bool, int, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_jsonable(item) for item in value)
    return False


class KnowledgeBase:
    """Handle on one knowledge-base file; never raises into a check.

    Construct via :func:`open_knowledge_base` (which deduplicates handles
    per process and survives ``fork``) rather than directly.
    """

    def __init__(self, path: str):
        """Open (creating or migrating as needed) the store at ``path``."""
        self.path = path
        self.disabled = False
        #: human-readable reason when :attr:`disabled` (shown by `kb stats`).
        self.disabled_reason: Optional[str] = None
        self._conn: Optional[sqlite3.Connection] = None
        #: models attached this process: key -> (estg weakref, names, name).
        self._attached: Dict[str, Tuple[weakref.ref, frozenset, str]] = {}
        try:
            self._conn = sqlite3.connect(path, timeout=_BUSY_TIMEOUT)
            self._conn.isolation_level = None  # explicit transactions only
            self._ensure_schema()
        except sqlite3.Error as exc:
            self._disable("cannot open %s: %s" % (path, exc))

    # ------------------------------------------------------------------
    def _disable(self, reason: str) -> None:
        self.disabled = True
        self.disabled_reason = reason
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def _tear_file(self) -> None:
        """Simulate a torn write: truncate the store mid-file and disable.

        Exists for the ``kb.flush`` / ``torn-write`` fault kind (chaos
        tests): the next :func:`open_knowledge_base` of the path must take
        the fail-open corruption path, exactly as after a real torn write.
        """
        self._disable("injected torn write during flush")
        try:
            size = os.path.getsize(self.path)
            with open(self.path, "r+b") as stream:
                stream.truncate(max(1, size // 2))
        except OSError:  # pragma: no cover - defensive
            pass

    def _ensure_schema(self) -> None:
        assert self._conn is not None
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            has_meta = conn.execute(
                "SELECT 1 FROM sqlite_master WHERE type='table' AND name='kb_meta'"
            ).fetchone()
            if not has_meta:
                # One execute per statement: executescript() would commit
                # the explicit transaction implicitly and break atomicity.
                for statement in _SCHEMA.split(";"):
                    if statement.strip():
                        conn.execute(statement)
                conn.execute(
                    "INSERT OR REPLACE INTO kb_meta(key, value) VALUES('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                conn.execute("COMMIT")
                return
            row = conn.execute(
                "SELECT value FROM kb_meta WHERE key='schema_version'"
            ).fetchone()
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        try:
            version = int(row[0]) if row else None
        except (TypeError, ValueError):
            version = None
        if version is None:
            self._disable("store has no readable schema_version")
        elif version > SCHEMA_VERSION:
            self._disable(
                "store schema v%d is newer than this build (v%d)"
                % (version, SCHEMA_VERSION)
            )
        elif version < SCHEMA_VERSION:
            self._migrate(version)

    def _migrate(self, version: int) -> None:
        """Migrate an older on-disk format forward, one version at a time.

        Policy (documented in ``docs/knowledge-base.md``): migrations are
        forward-only and additive -- each step runs in one immediate write
        transaction that applies the version's DDL and bumps
        ``kb_meta.schema_version`` together, so a crash mid-migration leaves
        the store consistently at the old version and the next open retries.
        Newer stores are never downgraded (the handle disables itself
        instead), and a version with no registered step disables fail-open.
        """
        assert self._conn is not None
        conn = self._conn
        while version < SCHEMA_VERSION:
            steps = _MIGRATIONS.get(version)
            if steps is None:
                self._disable("store schema v%d has no migration path" % version)
                return
            try:
                conn.execute("BEGIN IMMEDIATE")
                try:
                    for statement in steps:
                        conn.execute(statement)
                    conn.execute(
                        "UPDATE kb_meta SET value = ? WHERE key = 'schema_version'",
                        (str(version + 1),),
                    )
                    conn.execute("COMMIT")
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
            except sqlite3.Error as exc:
                self._disable(
                    "migration v%d -> v%d failed: %s" % (version, version + 1, exc)
                )
                return
            version += 1

    # ------------------------------------------------------------------
    def schema_version(self) -> Optional[int]:
        """The store's on-disk schema version (``None`` when disabled)."""
        return None if self.disabled else SCHEMA_VERSION

    def attach(self, model, circuit, initial_state, environment) -> Tuple[int, int]:
        """Merge the store's facts for this model into ``model.estg``.

        Idempotent per (store, model): the first call loads, later calls
        return ``(0, 0)``.  Also registers the model for flushing (including
        the cache-eviction hook; see
        :class:`~repro.checker.incremental.UnrolledModelCache`) and returns
        ``(cubes loaded, memos loaded)``.
        """
        key = model_kb_key(circuit, initial_state, environment)
        _, net_names = circuit_snapshot(circuit)
        loaded_keys = getattr(model, "kb_loaded_keys", None)
        if loaded_keys is None:
            loaded_keys = set()
            model.kb_loaded_keys = loaded_keys
        estg = model.estg
        self._attached[key] = (
            weakref.ref(estg),
            net_names,
            getattr(circuit, "name", ""),
        )
        model.kb_flush_hook = lambda: self.flush_model(
            key, estg, net_names, getattr(circuit, "name", "")
        )
        if (id(self), key) in loaded_keys:
            return (0, 0)
        loaded_keys.add((id(self), key))
        return self._load_model(key, estg, circuit)

    def _load_model(self, key: str, estg, circuit) -> Tuple[int, int]:
        if self.disabled or self._conn is None:
            return (0, 0)
        try:
            cube_rows = self._conn.execute(
                "SELECT fingerprint, literals, shiftable, min_position, max_position,"
                " prop_digest, source, hits FROM cubes WHERE model_key = ?"
                " ORDER BY hits DESC, fingerprint",
                (key,),
            ).fetchall()
            memo_rows = self._conn.execute(
                "SELECT search_fp, target_frame FROM fail_memos WHERE model_key = ?",
                (key,),
            ).fetchall()
            core_rows = self._conn.execute(
                "SELECT fingerprint, core, hits FROM solver_cores"
                " WHERE model_key = ? ORDER BY hits DESC, fingerprint",
                (key,),
            ).fetchall()
        except sqlite3.Error as exc:
            self._disable("read failed: %s" % exc)
            return (0, 0)
        budget = max(0, estg.max_learned_cubes - len(estg.learned_cubes))
        parsed: List[Tuple[int, LearnedCube]] = []
        for fp_hex, literals_json, shiftable, min_pos, max_pos, prop_json, source, hits in cube_rows:
            if len(parsed) >= budget:
                break
            cube = self._parse_cube(
                fp_hex, literals_json, shiftable, min_pos, max_pos, prop_json, source, hits, circuit
            )
            if cube is not None:
                parsed.append(cube)
        cubes_loaded = 0
        # Insert hottest last so it lands in the most-recent LRU position.
        for fingerprint, cube in reversed(parsed):
            if estg.adopt_kb_cube(cube, fingerprint):
                cubes_loaded += 1
        memos_loaded = 0
        for search_json, target_frame in memo_rows:
            try:
                search_fp = _freeze(json.loads(search_json))
            except (ValueError, TypeError):
                continue
            if estg.adopt_kb_fail(search_fp, int(target_frame)):
                memos_loaded += 1
        for fingerprint, core_json, hits in core_rows:
            core = self._parse_core(core_json, circuit)
            if core is not None:
                estg.adopt_kb_solver_core(fingerprint, core, hits=int(hits))
        return (cubes_loaded, memos_loaded)

    @staticmethod
    def _parse_core(core_json, circuit) -> Optional[Tuple[Tuple[str, int], ...]]:
        """One solver-core JSON payload -> ``((name, frame), ...)`` or ``None``.

        Like cubes, a core naming a net this circuit does not have is
        dropped whole: replaying a partial core would under-seed conflict
        analysis, so the justifier only accepts fully-resolvable cores.
        """
        try:
            raw = json.loads(core_json)
            core = []
            for name, frame in raw:
                if not circuit.has_net(str(name)):
                    return None
                core.append((str(name), int(frame)))
        except (ValueError, TypeError):
            return None
        return tuple(core)

    @staticmethod
    def _parse_cube(
        fp_hex, literals_json, shiftable, min_pos, max_pos, prop_json, source, hits, circuit
    ) -> Optional[Tuple[int, LearnedCube]]:
        """One cube row -> (fingerprint, cube), or ``None`` if not loadable.

        A cube is dropped (not an error) when a literal names a net this
        circuit does not have at the recorded width -- the defensive check
        behind the name-snapshot persistence filter.
        """
        try:
            fingerprint = int(fp_hex, 16)
            raw_literals = json.loads(literals_json)
            literals = []
            for name, width, position, value in raw_literals:
                if not circuit.has_net(name):
                    return None
                net = circuit.net(name)
                if net.width != width:
                    return None
                literals.append((net, int(position), BV3.from_string(value)))
            prop_fp = _freeze(json.loads(prop_json)) if prop_json is not None else None
        except (ValueError, TypeError, KeyError):
            return None
        cube = LearnedCube(
            literals=tuple(literals),
            shiftable=bool(shiftable),
            min_position=int(min_pos),
            max_position=int(max_pos),
            prop_fp=prop_fp,
            source=str(source),
            hits=int(hits),
        )
        return (fingerprint, cube)

    # ------------------------------------------------------------------
    def flush_model(
        self,
        key: str,
        estg: ExtendedStateTransitionGraph,
        net_names: frozenset,
        circuit_name: str = "",
    ) -> int:
        """Write the graph's persistable facts for ``key`` in one write-tx.

        Returns the number of cube rows written (0 when disabled).  Only
        cubes whose literals all name snapshot nets are persisted; memos are
        written whenever their search fingerprint JSON-round-trips.  Safe to
        call repeatedly -- merging is idempotent.
        """
        if self.disabled or self._conn is None:
            return 0
        rule = faults.maybe_fire("kb.flush")
        if rule is not None and rule.kind == "fsync-fail":
            # As if the OS failed the write-back: nothing on disk can be
            # trusted any more, so the handle degrades fail-open -- checks
            # keep their in-memory facts and simply stop persisting.
            self._disable("injected fsync failure during flush")
            return 0
        tear_after = rule is not None and rule.kind == "torn-write"
        cube_rows = []
        for fingerprint, cube in estg.learned_cubes.items():
            row = self._serialize_cube(fingerprint, cube, net_names)
            if row is not None:
                cube_rows.append((key,) + row)
        memo_rows = []
        for prop_fp, target_frame in estg.proven_fail_targets:
            if _jsonable(prop_fp) and isinstance(target_frame, int):
                memo_rows.append((key, json.dumps(prop_fp), target_frame))
        core_rows = []
        for fingerprint, entry in getattr(estg, "solver_cores", {}).items():
            if all(name in net_names for name, _frame in entry.core):
                core_rows.append(
                    (
                        key,
                        fingerprint,
                        json.dumps([[name, frame] for name, frame in entry.core]),
                        entry.hits,
                    )
                )
        for attempt in range(_WRITE_RETRIES):
            try:
                conn = self._conn
                conn.execute("BEGIN IMMEDIATE")
                try:
                    conn.execute(
                        "INSERT OR IGNORE INTO models(model_key, circuit_name) VALUES(?, ?)",
                        (key, circuit_name),
                    )
                    conn.executemany(
                        "INSERT INTO cubes(model_key, fingerprint, literals, shiftable,"
                        " min_position, max_position, prop_digest, source, hits)"
                        " VALUES(?, ?, ?, ?, ?, ?, ?, ?, ?)"
                        " ON CONFLICT(model_key, fingerprint)"
                        " DO UPDATE SET hits = MAX(hits, excluded.hits)",
                        cube_rows,
                    )
                    conn.executemany(
                        "INSERT OR IGNORE INTO fail_memos(model_key, search_fp, target_frame)"
                        " VALUES(?, ?, ?)",
                        memo_rows,
                    )
                    conn.executemany(
                        "INSERT INTO solver_cores(model_key, fingerprint, core, hits)"
                        " VALUES(?, ?, ?, ?)"
                        " ON CONFLICT(model_key, fingerprint)"
                        " DO UPDATE SET hits = MAX(hits, excluded.hits)",
                        core_rows,
                    )
                    conn.execute("COMMIT")
                    if tear_after:
                        self._tear_file()
                        return 0
                    return len(cube_rows)
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
            except sqlite3.OperationalError:
                if attempt == _WRITE_RETRIES - 1:
                    return 0
            except sqlite3.Error as exc:
                self._disable("write failed: %s" % exc)
                return 0
        return 0

    @staticmethod
    def _serialize_cube(
        fingerprint: Optional[int], cube: LearnedCube, net_names: frozenset
    ) -> Optional[tuple]:
        """One cube -> a sqlite row tail, or ``None`` when not persistable."""
        if fingerprint is None:
            return None
        literals = []
        for net, position, value in cube.literals:
            name = getattr(net, "name", None)
            width = getattr(net, "width", None)
            if name is None or width is None or name not in net_names:
                return None
            literals.append([name, width, position, str(value)])
        if cube.prop_fp is not None and not _jsonable(cube.prop_fp):
            return None
        prop_json = None if cube.prop_fp is None else json.dumps(cube.prop_fp)
        return (
            "%016x" % fingerprint,
            json.dumps(literals),
            int(cube.shiftable),
            cube.min_position,
            cube.max_position,
            prop_json,
            cube.source,
            cube.hits,
        )

    def flush_attached(self) -> int:
        """Flush every still-alive model attached this process.

        The batch worker calls this after finishing a circuit group, so a
        group's facts land on disk even if a later group crashes the worker.
        Returns total cube rows written.
        """
        written = 0
        for key, (estg_ref, net_names, circuit_name) in list(self._attached.items()):
            estg = estg_ref()
            if estg is None:
                del self._attached[key]
                continue
            written += self.flush_model(key, estg, net_names, circuit_name)
        return written

    # ------------------------------------------------------------------
    # Admin operations (the `repro kb` CLI)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Store totals plus one summary row per model (for `kb stats`)."""
        if self.disabled or self._conn is None:
            return {
                "path": self.path,
                "disabled": True,
                "reason": self.disabled_reason,
            }
        per_model = []
        try:
            for key, name in self._conn.execute(
                "SELECT model_key, circuit_name FROM models ORDER BY model_key"
            ):
                cubes, hits = self._conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(hits), 0) FROM cubes WHERE model_key = ?",
                    (key,),
                ).fetchone()
                memos = self._conn.execute(
                    "SELECT COUNT(*) FROM fail_memos WHERE model_key = ?", (key,)
                ).fetchone()[0]
                cores = self._conn.execute(
                    "SELECT COUNT(*) FROM solver_cores WHERE model_key = ?", (key,)
                ).fetchone()[0]
                per_model.append(
                    {
                        "model_key": key,
                        "circuit": name,
                        "cubes": cubes,
                        "fail_memos": memos,
                        "solver_cores": cores,
                        "hits": hits,
                    }
                )
        except sqlite3.Error as exc:
            # Corruption (e.g. a torn write) can pass the open-time schema
            # check and only surface mid-query; degrade fail-open here too.
            self._disable("stats failed: %s" % exc)
            return {
                "path": self.path,
                "disabled": True,
                "reason": self.disabled_reason,
            }
        return {
            "path": self.path,
            "disabled": False,
            "schema_version": SCHEMA_VERSION,
            "models": len(per_model),
            "cubes": sum(row["cubes"] for row in per_model),
            "fail_memos": sum(row["fail_memos"] for row in per_model),
            "solver_cores": sum(row["solver_cores"] for row in per_model),
            "hits": sum(row["hits"] for row in per_model),
            "per_model": per_model,
        }

    def prune(self, min_hits: int = 0, keep: Optional[int] = None) -> int:
        """Drop cold cubes; returns the number of cube rows removed.

        ``min_hits`` drops cubes (and solver cores) with fewer recorded
        fires; ``keep`` additionally keeps only the hottest N cubes per
        model.  Proven-FAIL memos are never pruned (they are tiny and never
        demoted).
        """
        if self.disabled or self._conn is None:
            return 0
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            before = conn.execute("SELECT COUNT(*) FROM cubes").fetchone()[0]
            if min_hits > 0:
                conn.execute("DELETE FROM cubes WHERE hits < ?", (min_hits,))
                conn.execute("DELETE FROM solver_cores WHERE hits < ?", (min_hits,))
            if keep is not None:
                conn.execute(
                    "DELETE FROM cubes WHERE (model_key, fingerprint) IN ("
                    " SELECT model_key, fingerprint FROM ("
                    "  SELECT model_key, fingerprint, ROW_NUMBER() OVER ("
                    "   PARTITION BY model_key ORDER BY hits DESC, fingerprint"
                    "  ) AS rank FROM cubes) WHERE rank > ?)",
                    (keep,),
                )
            after = conn.execute("SELECT COUNT(*) FROM cubes").fetchone()[0]
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("VACUUM")
        return before - after

    def merge_from(self, source: "KnowledgeBase") -> Dict[str, int]:
        """Merge another store into this one (union / max-hits / add-only)."""
        merged = self.merge_many([source])
        merged.pop("sources", None)
        return merged

    def merge_many(self, sources: Sequence["KnowledgeBase"]) -> Dict[str, int]:
        """Merge several stores into this one in a *single* transaction.

        The merge semantics are the commuting flush rules (union cubes
        keyed by fingerprint taking the maximum hit counter, add-only
        memos), applied to every readable source under one
        ``BEGIN IMMEDIATE`` -- so ``repro fleet sync`` over N shards pays
        one write transaction per destination, not one per source pair.
        Disabled sources (and the destination itself) are skipped; the
        returned counts are totals over the sources actually merged
        (row counts read, not deduplicated).  Merging is idempotent:
        replaying the same sources changes nothing.
        """
        totals = {
            "sources": 0, "models": 0, "cubes": 0, "fail_memos": 0,
            "solver_cores": 0,
        }
        if self.disabled or self._conn is None:
            return totals
        batches = []
        for source in sources:
            if source is self or source.path == self.path:
                continue
            if source.disabled or source._conn is None:
                continue
            try:
                models = source._conn.execute(
                    "SELECT model_key, circuit_name FROM models"
                ).fetchall()
                cubes = source._conn.execute(
                    "SELECT model_key, fingerprint, literals, shiftable,"
                    " min_position, max_position, prop_digest, source, hits"
                    " FROM cubes"
                ).fetchall()
                memos = source._conn.execute(
                    "SELECT model_key, search_fp, target_frame FROM fail_memos"
                ).fetchall()
                cores = source._conn.execute(
                    "SELECT model_key, fingerprint, core, hits FROM solver_cores"
                ).fetchall()
            except sqlite3.Error:
                # A source torn mid-read contributes nothing; the merge of
                # the remaining sources still lands atomically.
                continue
            batches.append((models, cubes, memos, cores))
        if not batches:
            return totals
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            for models, cubes, memos, cores in batches:
                conn.executemany(
                    "INSERT OR IGNORE INTO models(model_key, circuit_name)"
                    " VALUES(?, ?)",
                    models,
                )
                conn.executemany(
                    "INSERT INTO cubes(model_key, fingerprint, literals, shiftable,"
                    " min_position, max_position, prop_digest, source, hits)"
                    " VALUES(?, ?, ?, ?, ?, ?, ?, ?, ?)"
                    " ON CONFLICT(model_key, fingerprint)"
                    " DO UPDATE SET hits = MAX(hits, excluded.hits)",
                    cubes,
                )
                conn.executemany(
                    "INSERT OR IGNORE INTO fail_memos(model_key, search_fp,"
                    " target_frame) VALUES(?, ?, ?)",
                    memos,
                )
                conn.executemany(
                    "INSERT INTO solver_cores(model_key, fingerprint, core, hits)"
                    " VALUES(?, ?, ?, ?)"
                    " ON CONFLICT(model_key, fingerprint)"
                    " DO UPDATE SET hits = MAX(hits, excluded.hits)",
                    cores,
                )
                totals["sources"] += 1
                totals["models"] += len(models)
                totals["cubes"] += len(cubes)
                totals["fail_memos"] += len(memos)
                totals["solver_cores"] += len(cores)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return totals

    def close(self) -> None:
        """Close the sqlite handle (flushes nothing by itself)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None


# ----------------------------------------------------------------------
# Per-process handle registry
# ----------------------------------------------------------------------
#: path -> (owning pid, handle); the pid guard gives forked batch workers
#: fresh connections (sqlite handles must not cross a fork).
_OPEN_STORES: Dict[str, Tuple[int, KnowledgeBase]] = {}


def open_knowledge_base(path: str) -> KnowledgeBase:
    """The process's shared handle for the store at ``path``.

    Handles are deduplicated per (absolute path, pid): every checker and
    batch worker in one process shares a connection, and a worker forked
    from a parent that had the store open transparently re-opens it.
    """
    resolved = os.path.abspath(path)
    entry = _OPEN_STORES.get(resolved)
    if entry is not None and entry[0] == os.getpid():
        return entry[1]
    handle = KnowledgeBase(resolved)
    _OPEN_STORES[resolved] = (os.getpid(), handle)
    return handle


def flush_attached_stores() -> int:
    """Flush every attached model of every store opened by this process.

    Called by the batch worker after each circuit group and usable as a
    general "sync to disk now" barrier.  Returns total cube rows written.
    """
    written = 0
    pid = os.getpid()
    for owner_pid, handle in list(_OPEN_STORES.values()):
        if owner_pid == pid:
            written += handle.flush_attached()
    return written
