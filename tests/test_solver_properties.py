"""Property-based tests of the modular solving stack (hypothesis).

These tests check the solver's defining invariants on randomly generated
instances rather than hand-picked examples:

* systems built from a *planted* solution are always found satisfiable and
  every enumerated member of the closed-form solution set satisfies the
  original constraints;
* the scalar congruence solver agrees exactly with brute force over the full
  ring for small widths;
* the datapath constraint extractor + solver pipeline agrees with brute force
  on a parameterised multiply/subtract circuit (the transitive-closure case
  that once produced inconsistent partial solutions).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import UnrolledModel
from repro.bitvector import BV3
from repro.modsolver.extract import DatapathConstraintExtractor
from repro.modsolver.linear import ModularLinearSystem
from repro.modsolver.result import Solution
from repro.modsolver.modular import solve_scalar_congruence
from repro.netlist import Circuit


# ----------------------------------------------------------------------
# Planted linear systems
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(st.data())
def test_planted_linear_systems_are_solved(data):
    width = data.draw(st.integers(min_value=2, max_value=8), label="width")
    num_vars = data.draw(st.integers(min_value=1, max_value=4), label="num_vars")
    num_rows = data.draw(st.integers(min_value=1, max_value=4), label="num_rows")
    modulus = 1 << width

    planted = {
        "v%d" % index: data.draw(
            st.integers(min_value=0, max_value=modulus - 1), label="planted_%d" % index
        )
        for index in range(num_vars)
    }
    system = ModularLinearSystem(width)
    for _ in range(num_rows):
        coefficients = {
            "v%d" % index: data.draw(
                st.integers(min_value=-8, max_value=8), label="coeff"
            )
            for index in range(num_vars)
        }
        rhs = sum(coefficients[var] * planted[var] for var in coefficients) % modulus
        system.add_constraint(coefficients, rhs)

    solutions = system.solve()
    assert solutions, "a planted solution exists but the solver said UNSAT"
    assert system.is_solution(planted)
    particular = solutions.substitute([0] * solutions.num_free_variables)
    full = dict(planted)
    full.update(particular)
    assert system.is_solution(full)
    for sample in list(solutions.enumerate(limit=8)):
        candidate = dict(planted)
        candidate.update(sample)
        assert system.is_solution(candidate)


@settings(max_examples=80, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=63),
)
def test_scalar_congruence_matches_brute_force(width, coefficient, rhs):
    modulus = 1 << width
    coefficient %= modulus
    rhs %= modulus
    expected = {x for x in range(modulus) if (coefficient * x) % modulus == rhs}
    scalar = solve_scalar_congruence(coefficient, rhs, width)
    if scalar is None:
        assert expected == set()
    else:
        assert set(scalar.values()) == expected


# ----------------------------------------------------------------------
# Extractor + solver pipeline on a multiply/subtract datapath
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),      # width
    st.integers(min_value=0, max_value=15),     # constant multiplier
    st.integers(min_value=0, max_value=63),     # required difference
)
def test_extractor_solution_respects_connected_constraints(width, factor, target):
    modulus = 1 << width
    factor %= modulus
    target %= modulus

    circuit = Circuit("linear")
    a = circuit.input("a", width)
    scaled = circuit.mul(a, factor, name="scaled")
    diff = circuit.sub(scaled, a, name="diff")
    circuit.output(diff)

    model = UnrolledModel(circuit, 1)
    model.assign(diff, 0, BV3.from_int(width, target))
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    result = problem.solve()

    feasible = any((factor * value - value) % modulus == target for value in range(modulus))
    if not isinstance(result, Solution):
        # Implication may already have solved everything (no unjustified
        # nodes); in that case the assignment itself must be consistent.
        if not unjustified:
            value = model.value(a, 0)
            if value.is_fully_known():
                assert (factor * value.to_int() - value.to_int()) % modulus == target
        else:
            assert not feasible
        return
    value = result.assignment.get((a, 0))
    if value is not None:
        assert (factor * value - value) % modulus == target
