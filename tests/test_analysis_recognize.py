"""Tests for counter / shift-register recognition."""

from repro.analysis import (
    recognize_counters,
    recognize_modules,
    recognize_shift_registers,
)
from repro.circuits import build_alarm_clock
from repro.netlist import Circuit


def build_up_counter(width=4, step=1):
    circuit = Circuit("up_counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", width)
    nxt = circuit.add(cnt, step)
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


def build_down_counter_with_load(width=4):
    circuit = Circuit("down_counter")
    load = circuit.input("load", 1)
    cnt = circuit.state("cnt", width)
    decremented = circuit.sub(cnt, 1)
    reloaded = circuit.const(9, width)
    circuit.dff_into(cnt, circuit.mux(load, decremented, reloaded), init_value=9)
    circuit.output(cnt)
    return circuit


def build_word_shift_register(width=8):
    circuit = Circuit("shifter")
    serial_in = circuit.input("serial_in", 1)
    reg = circuit.state("reg", width)
    shifted = circuit.concat(circuit.slice(reg, width - 2, 0), serial_in)
    circuit.dff_into(reg, shifted, init_value=0)
    circuit.output(reg)
    return circuit


def build_bit_chain(length=4):
    circuit = Circuit("chain")
    serial_in = circuit.input("serial_in", 1)
    previous = serial_in
    for index in range(length):
        previous = circuit.dff(previous, name="stage%d" % index)
    circuit.output(previous, name="serial_out")
    return circuit


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
def test_up_counter_recognised():
    counters = recognize_counters(build_up_counter())
    assert len(counters) == 1
    counter = counters[0]
    assert counter.register_name == "cnt"
    assert counter.step == 1
    assert counter.direction == "up"
    assert counter.can_hold


def test_down_counter_with_load_recognised():
    counters = recognize_counters(build_down_counter_with_load())
    assert len(counters) == 1
    counter = counters[0]
    assert counter.step == -1
    assert counter.direction == "down"
    assert counter.load_values == [9]


def test_multi_step_counter_recognised():
    counters = recognize_counters(build_up_counter(step=2))
    assert counters and counters[0].step == 2


def test_non_counter_register_not_recognised():
    circuit = Circuit("not_counter")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    circuit.dff(circuit.add(a, b), name="sum_reg")
    assert recognize_counters(circuit) == []


def test_register_adding_variable_step_not_recognised():
    circuit = Circuit("variable_step")
    step = circuit.input("step", 4)
    cnt = circuit.state("cnt", 4)
    circuit.dff_into(cnt, circuit.add(cnt, step), init_value=0)
    circuit.output(cnt)
    assert recognize_counters(circuit) == []


# ----------------------------------------------------------------------
# Shift registers
# ----------------------------------------------------------------------
def test_word_level_shift_register_recognised():
    shifts = recognize_shift_registers(build_word_shift_register())
    assert len(shifts) == 1
    assert shifts[0].form == "word"
    assert shifts[0].direction == "left"
    assert shifts[0].length == 8


def test_constant_shl_register_recognised():
    circuit = Circuit("shl_reg")
    reg = circuit.state("reg", 8)
    circuit.dff_into(reg, circuit.shl(reg, 1), init_value=1)
    circuit.output(reg)
    shifts = recognize_shift_registers(circuit)
    assert len(shifts) == 1
    assert shifts[0].direction == "left"


def test_bit_chain_recognised():
    shifts = recognize_shift_registers(build_bit_chain(length=5))
    chains = [s for s in shifts if s.form == "chain"]
    assert len(chains) == 1
    assert chains[0].length == 5
    assert chains[0].register_names[0] == "stage0"
    assert chains[0].register_names[-1] == "stage4"


def test_unrelated_registers_do_not_form_chains():
    circuit = Circuit("independent")
    a = circuit.input("a", 1)
    b = circuit.input("b", 1)
    circuit.dff(a, name="ra")
    circuit.dff(b, name="rb")
    assert recognize_shift_registers(circuit) == []


# ----------------------------------------------------------------------
# Combined report
# ----------------------------------------------------------------------
def test_report_combines_both_recognisers():
    circuit = build_up_counter()
    serial_in = circuit.input("serial_in", 1)
    previous = serial_in
    for index in range(3):
        previous = circuit.dff(previous, name="tap%d" % index)
    report = recognize_modules(circuit)
    assert report.counters and report.shift_registers
    text = report.format()
    assert "counter cnt" in text
    assert "shift register" in text


def test_alarm_clock_contains_counters():
    """The alarm clock's minute/hour dividers are counter-shaped registers."""
    ports = build_alarm_clock()
    report = recognize_modules(ports.circuit)
    assert report.counters, "expected at least one recognised counter"


def test_report_format_empty():
    circuit = Circuit("empty")
    a = circuit.input("a", 2)
    circuit.output(circuit.not_(a), name="na")
    text = recognize_modules(circuit).format()
    assert "(none)" in text
