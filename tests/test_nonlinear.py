"""Tests for non-linear constraint handling (multipliers, shifters)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.modsolver.linear import ModularLinearSystem
from repro.modsolver.nonlinear import (
    NonlinearConstraint,
    NonlinearSolver,
    enumerate_factor_pairs,
)
from repro.modsolver.result import Infeasible, Solution, Unknown


def test_paper_multiplier_example_has_both_factors():
    """Section 4: c = 12, a = 4 admits b = 3 *and* b = 7 modulo 16."""
    pairs = list(enumerate_factor_pairs(12, 4, limit=512))
    assert (4, 3) in pairs
    assert (4, 7) in pairs
    for a, b in pairs:
        assert (a * b) % 16 == 12


def test_factor_pairs_zero_product():
    pairs = list(enumerate_factor_pairs(0, 3, limit=64))
    for a, b in pairs:
        assert (a * b) % 8 == 0
    assert (0, 0) in pairs or any(a == 0 for a, _ in pairs)


def test_nonlinear_constraint_satisfaction():
    constraint = NonlinearConstraint("mul", "a", "b", "c", 4)
    assert constraint.is_satisfied({"a": 4, "b": 7, "c": 12})
    assert not constraint.is_satisfied({"a": 4, "b": 5, "c": 12})
    shift = NonlinearConstraint("shl", "a", 2, "c", 4)
    assert shift.is_satisfied({"a": 3, "c": 12})
    assert shift.variables() == ["a", "c"]
    with pytest.raises(ValueError):
        NonlinearConstraint("pow", "a", "b", "c", 4).is_satisfied({"a": 1, "b": 1, "c": 1})


def test_solver_multiplier_with_side_constraint():
    """The false-negative scenario: only the wrapped factor satisfies the
    extra linear constraint, so a modular solver must find b = 7."""
    linear = ModularLinearSystem(4)
    linear.add_constraint({"b": 1}, 7)  # side constraint forces b = 7
    constraint = NonlinearConstraint("mul", "a", "b", 12, 4)
    solver = NonlinearSolver()
    result = solver.solve(linear, [constraint], fixed={"a": 4})
    assert isinstance(result, Solution)
    solution = result.assignment
    assert solution["b"] == 7
    assert (solution["a"] * solution["b"]) % 16 == 12


def test_solver_pure_linear_passthrough():
    linear = ModularLinearSystem(4)
    linear.add_constraint({"x": 3}, 9)
    result = NonlinearSolver().solve(linear, [])
    assert isinstance(result, Solution)
    assert (3 * result.assignment["x"]) % 16 == 9


def test_solver_infeasible_nonlinear():
    linear = ModularLinearSystem(3)
    linear.add_constraint({"b": 1}, 5)
    # a * b = 1 requires b odd; with b = 5 fixed, a must be 5 (5*5=25=1 mod 8),
    # but the extra constraint pins a to an incompatible value.
    linear.add_constraint({"a": 1}, 2)
    constraint = NonlinearConstraint("mul", "a", "b", 1, 3, tags=frozenset({"mul"}))
    result = NonlinearSolver().solve(linear, [constraint])
    # b = 5 is implied by its unit row, so the congruence enumeration for a
    # is complete and every branch closes with a linear clash on a's pin:
    # a certified refutation.
    assert isinstance(result, Infeasible)
    assert "mul" in result.core


def test_solver_shift_constraint():
    constraint = NonlinearConstraint("shl", "a", "s", "c", 4)
    linear = ModularLinearSystem(4)
    linear.add_constraint({"c": 1}, 8)
    linear.add_constraint({"a": 1}, 1)
    result = NonlinearSolver().solve(linear, [constraint])
    assert isinstance(result, Solution)
    solution = result.assignment
    assert (solution["a"] << solution["s"]) % 16 == 8


def test_solver_both_operands_unknown():
    constraint = NonlinearConstraint("mul", "a", "b", 6, 4)
    result = NonlinearSolver().solve(ModularLinearSystem(4), [constraint])
    assert isinstance(result, Solution)
    solution = result.assignment
    assert (solution["a"] * solution["b"]) % 16 == 6


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 5), st.data())
def test_factor_pairs_are_always_valid(width, data):
    modulus = 1 << width
    product = data.draw(st.integers(0, modulus - 1))
    for a, b in enumerate_factor_pairs(product, width, limit=64):
        assert 0 <= a < modulus and 0 <= b < modulus
        assert (a * b) % modulus == product


# ----------------------------------------------------------------------
# Typed results: budget exhaustion vs proved infeasibility
# ----------------------------------------------------------------------
def test_budget_exhaustion_is_unknown_not_infeasible():
    """A solver with budget=1 gives up after the first factor candidate;
    the result must be Unknown (prune-only), never a certificate."""
    linear = ModularLinearSystem(4)
    # a * b = 6 with a + b = 0 is genuinely infeasible (-a**2 = 6 has no
    # root mod 16) but only factor sampling can explore it.
    linear.add_constraint({"a": 1, "b": 1}, 0)
    constraint = NonlinearConstraint("mul", "a", "b", 6, 4)
    result = NonlinearSolver(budget=1).solve(linear, [constraint])
    assert isinstance(result, Unknown)
    assert result.reason == "budget"


def test_incomplete_enumeration_never_certifies():
    """Factor-pair sampling is bounded, so an exhausted enumeration must
    answer Unknown even when every explored branch was refuted."""
    linear = ModularLinearSystem(4)
    linear.add_constraint({"a": 1, "b": 1}, 0)
    constraint = NonlinearConstraint("mul", "a", "b", 6, 4)
    result = NonlinearSolver().solve(linear, [constraint])
    assert isinstance(result, Unknown)


def test_implied_unit_pins_enable_certification():
    """Values forced by unit linear rows count as known operands: with both
    operands pinned the single-candidate plan is complete and a product
    mismatch is a certified refutation carrying the pins' provenance."""
    linear = ModularLinearSystem(4)
    linear.add_constraint({"a": 1}, 9, tags=("pin_a",))
    linear.add_constraint({"b": 1}, 9, tags=("pin_b",))
    constraint = NonlinearConstraint("mul", "a", "b", 6, 4, tags=frozenset({"gate"}))
    result = NonlinearSolver().solve(linear, [constraint])
    assert isinstance(result, Infeasible)  # 9 * 9 = 1 != 6 (mod 16)
    assert {"pin_a", "pin_b", "gate"} <= set(result.core)


def test_unsolvable_congruence_is_certified():
    """a pinned even with an odd product: Theorem 1.2 refutes outright and
    the core carries the pins' provenance."""
    linear = ModularLinearSystem(4)
    constraint = NonlinearConstraint("mul", "a", "b", 7, 4, tags=frozenset({"gate"}))
    result = NonlinearSolver().solve(
        linear, [constraint], fixed={"a": 2}, fixed_tags={"a": frozenset({"key_a"})}
    )
    assert isinstance(result, Infeasible)
    assert "gate" in result.core and "key_a" in result.core
