"""The CI benchmark-regression gate (benchmarks/compare_reports.py).

The acceptance contract of ISSUE 2: the gate passes a run against its own
baseline and demonstrably fails when a benchmark's median doubles.  The
script lives outside the package (it is a CI tool, not library code), so it
is loaded from its file path.
"""

import importlib.util
import io
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "compare_reports.py"
)
spec = importlib.util.spec_from_file_location("compare_reports", _SCRIPT)
compare_reports = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_reports)


def fake_report(medians):
    """A minimal pytest-benchmark JSON payload."""
    return {
        "benchmarks": [
            {"fullname": name, "name": name.split("::")[-1], "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }


def write_json(path, payload):
    with open(path, "w") as stream:
        json.dump(payload, stream)
    return str(path)


MEDIANS = {
    "benchmarks/bench_a.py::test_fast": 0.01,
    "benchmarks/bench_a.py::test_slow": 2.5,
    "benchmarks/bench_b.py::test_mid": 0.4,
}


@pytest.fixture
def baseline_path(tmp_path):
    report = write_json(tmp_path / "report.json", fake_report(MEDIANS))
    baseline = str(tmp_path / "BASELINE.json")
    rc = compare_reports.main([report, "--write-baseline", baseline], out=io.StringIO())
    assert rc == 0
    return baseline


def test_identical_run_passes(tmp_path, baseline_path):
    report = write_json(tmp_path / "run.json", fake_report(MEDIANS))
    out = io.StringIO()
    rc = compare_reports.main([report, "--baseline", baseline_path], out=out)
    assert rc == 0
    assert "OK:" in out.getvalue()


def test_injected_2x_slowdown_fails(tmp_path, baseline_path):
    slowed = dict(MEDIANS)
    slowed["benchmarks/bench_b.py::test_mid"] *= 2
    report = write_json(tmp_path / "run.json", fake_report(slowed))
    out = io.StringIO()
    rc = compare_reports.main([report, "--baseline", baseline_path], out=out)
    assert rc == 1
    assert "REGRESSION" in out.getvalue()
    assert "bench_b.py::test_mid" in out.getvalue()


def test_small_jitter_within_threshold_passes(tmp_path, baseline_path):
    jittered = {name: median * 1.15 for name, median in MEDIANS.items()}
    report = write_json(tmp_path / "run.json", fake_report(jittered))
    rc = compare_reports.main(
        [report, "--baseline", baseline_path], out=io.StringIO()
    )
    assert rc == 0


def test_normalize_cancels_uniform_machine_speed(tmp_path, baseline_path):
    # A uniformly 3x slower machine: every benchmark tripled.  Without
    # normalization this is a spurious across-the-board regression; with it
    # the gate passes.
    slower_machine = {name: median * 3.0 for name, median in MEDIANS.items()}
    report = write_json(tmp_path / "run.json", fake_report(slower_machine))
    assert (
        compare_reports.main([report, "--baseline", baseline_path], out=io.StringIO())
        == 1
    )
    assert (
        compare_reports.main(
            [report, "--baseline", baseline_path, "--normalize"], out=io.StringIO()
        )
        == 0
    )


def test_normalize_still_catches_relative_regression(tmp_path, baseline_path):
    # Uniformly 3x slower AND one benchmark an extra 2x on top: the
    # normalized gate must still flag the outlier.
    slowed = {name: median * 3.0 for name, median in MEDIANS.items()}
    slowed["benchmarks/bench_a.py::test_fast"] *= 2
    report = write_json(tmp_path / "run.json", fake_report(slowed))
    out = io.StringIO()
    rc = compare_reports.main(
        [report, "--baseline", baseline_path, "--normalize"], out=out
    )
    assert rc == 1
    assert "bench_a.py::test_fast" in out.getvalue()


def test_normalize_is_not_fooled_by_a_dominant_family(tmp_path):
    # 16 of 18 entries come from one parametrized file (like the kernel
    # sweep in the real baseline).  If that entire family slows 2x, the
    # machine-speed scale must NOT absorb it: the gate has to fail.
    medians = {"benchmarks/bench_kernel.py::test_k[%d]" % i: 0.01 for i in range(16)}
    medians["benchmarks/bench_other.py::test_a"] = 0.5
    medians["benchmarks/bench_third.py::test_b"] = 0.3
    baseline = write_json(tmp_path / "base.json", fake_report(medians))
    base_path = str(tmp_path / "BASELINE.json")
    assert compare_reports.main(
        [baseline, "--write-baseline", base_path], out=io.StringIO()
    ) == 0

    slowed = dict(medians)
    for name in slowed:
        if "bench_kernel" in name:
            slowed[name] *= 2
    report = write_json(tmp_path / "run.json", fake_report(slowed))
    out = io.StringIO()
    rc = compare_reports.main(
        [report, "--baseline", base_path, "--normalize"], out=out
    )
    assert rc == 1
    assert "REGRESSION" in out.getvalue()


def test_min_time_floor_skips_noise_benchmarks(tmp_path, baseline_path):
    # The fastest benchmark (10ms baseline) doubling is ignored under a 50ms
    # floor -- sub-floor medians are timer noise -- but a slow benchmark
    # doubling still fails.
    noisy = dict(MEDIANS)
    noisy["benchmarks/bench_a.py::test_fast"] *= 2
    report = write_json(tmp_path / "run.json", fake_report(noisy))
    out = io.StringIO()
    rc = compare_reports.main(
        [report, "--baseline", baseline_path, "--min-time", "0.05"], out=out
    )
    assert rc == 0
    assert "not gated" in out.getvalue()

    really_slow = dict(noisy)
    really_slow["benchmarks/bench_a.py::test_slow"] *= 2
    report = write_json(tmp_path / "run2.json", fake_report(really_slow))
    rc = compare_reports.main(
        [report, "--baseline", baseline_path, "--min-time", "0.05"],
        out=io.StringIO(),
    )
    assert rc == 1


def test_min_statistic_preferred_over_median(tmp_path):
    # Reports carrying per-round minima gate on them: an inflated median
    # (burst noise mid-run) must not fail the gate when the min is steady.
    def report_with(stats_by_name):
        return {
            "benchmarks": [
                {"fullname": name, "name": name.split("::")[-1], "stats": stats}
                for name, stats in stats_by_name.items()
            ]
        }

    base = write_json(
        tmp_path / "base.json",
        report_with({"benchmarks/bench_a.py::test_x": {"min": 0.1, "median": 0.11}}),
    )
    base_path = str(tmp_path / "BASELINE.json")
    assert compare_reports.main(
        [base, "--write-baseline", base_path], out=io.StringIO()
    ) == 0
    noisy_median = write_json(
        tmp_path / "run.json",
        report_with({"benchmarks/bench_a.py::test_x": {"min": 0.1, "median": 0.3}}),
    )
    assert compare_reports.main(
        [noisy_median, "--baseline", base_path], out=io.StringIO()
    ) == 0
    slow_min = write_json(
        tmp_path / "run2.json",
        report_with({"benchmarks/bench_a.py::test_x": {"min": 0.2, "median": 0.2}}),
    )
    assert compare_reports.main(
        [slow_min, "--baseline", base_path], out=io.StringIO()
    ) == 1


def test_disjoint_benchmark_sets_error(tmp_path, baseline_path):
    report = write_json(
        tmp_path / "run.json", fake_report({"benchmarks/other.py::test_x": 1.0})
    )
    rc = compare_reports.main(
        [report, "--baseline", baseline_path], out=io.StringIO()
    )
    assert rc == 2


def test_committed_baseline_matches_smoke_benchmarks():
    """The committed BASELINE.json must cover the smoke benchmark files."""
    baseline_file = os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "BASELINE.json"
    )
    with open(baseline_file) as stream:
        payload = json.load(stream)
    assert payload["schema"] == compare_reports.BASELINE_SCHEMA
    names = list(payload["medians"])
    for stem in ("bench_table1", "bench_portfolio", "bench_bitparallel",
                 "bench_incremental"):
        assert any(stem in name for name in names), "baseline is missing %s" % stem
    assert all(median > 0 for median in payload["medians"].values())
