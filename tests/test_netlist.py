"""Tests for the word-level netlist, builder API and circuit services."""

import pytest

from repro.netlist import Circuit, NetKind
from repro.netlist.classify import SignalClass, classify_nets, is_control
from repro.netlist.gates import ConstGate
from repro.netlist.seq import DFF


def test_builder_creates_named_nets_and_ports():
    circuit = Circuit("demo", source_lines=10)
    a = circuit.input("a", 8)
    b = circuit.input("b", 8)
    total = circuit.add(a, b, name="total")
    circuit.output(total)
    assert circuit.net("a") is a
    assert circuit.has_net("total")
    assert not circuit.has_net("missing")
    with pytest.raises(KeyError):
        circuit.net("missing")
    assert a.is_primary_input()
    assert total.is_primary_output()


def test_duplicate_net_names_rejected():
    circuit = Circuit("demo")
    circuit.input("a", 4)
    with pytest.raises(ValueError):
        circuit.new_net("a", 4)


def test_int_operands_become_constants():
    circuit = Circuit("demo")
    a = circuit.input("a", 4)
    total = circuit.add(a, 3)
    assert total.width == 4
    const_drivers = [g for g in circuit.gates if isinstance(g, ConstGate)]
    assert any(g.value == 3 for g in const_drivers)
    with pytest.raises(ValueError):
        circuit.add(1, 2)  # at least one net operand is required


def test_gate_evaluation_semantics():
    circuit = Circuit("demo")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    values = {a: 0b1100, b: 0b1010}

    checks = [
        (circuit.and_(a, b), 0b1000),
        (circuit.or_(a, b), 0b1110),
        (circuit.xor(a, b), 0b0110),
        (circuit.nand(a, b), 0b0111),
        (circuit.nor(a, b), 0b0001),
        (circuit.xnor(a, b), 0b1001),
        (circuit.not_(a), 0b0011),
        (circuit.add(a, b), (12 + 10) & 15),
        (circuit.sub(a, b), (12 - 10) & 15),
        (circuit.mul(a, b), (12 * 10) & 15),
        (circuit.eq(a, b), 0),
        (circuit.ne(a, b), 1),
        (circuit.lt(a, b), 0),
        (circuit.gt(a, b), 1),
        (circuit.le(a, b), 0),
        (circuit.ge(a, b), 1),
        (circuit.shl(a, 1), 0b1000),
        (circuit.shr(a, 2), 0b0011),
        (circuit.reduce_and(a), 0),
        (circuit.reduce_or(a), 1),
        (circuit.reduce_xor(a), 0),
        (circuit.slice(a, 3, 2), 0b11),
        (circuit.zext(circuit.slice(a, 1, 0), 4), 0),
    ]
    for net, expected in checks:
        gate = net.driver
        # Resolve nested dependencies (slice feeding zext) first.
        for upstream in gate.inputs:
            if upstream not in values and upstream.driver is not None:
                values[upstream] = upstream.driver.evaluate(values)
        assert gate.evaluate(values) == expected, gate


def test_mux_and_concat_evaluation():
    circuit = Circuit("demo")
    sel = circuit.input("sel", 2)
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    c = circuit.input("c", 4)
    out = circuit.mux(sel, a, b, c)
    cat = circuit.concat(a, b)
    values = {sel: 2, a: 1, b: 2, c: 3}
    assert out.driver.evaluate(values) == 3
    values[sel] = 3  # out of range selects the last input
    assert out.driver.evaluate(values) == 3
    assert cat.driver.evaluate(values) == (1 << 4) | 2
    assert cat.width == 8


def test_adder_carry_out():
    circuit = Circuit("demo")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    total, carry = circuit.add(a, b, with_carry_out=True)
    gate = total.driver
    assert gate.evaluate_carry_out({a: 9, b: 9}) == 1
    assert gate.evaluate_carry_out({a: 1, b: 2}) == 0
    assert carry.width == 1


def test_width_mismatch_errors():
    circuit = Circuit("demo")
    a = circuit.input("a", 4)
    b = circuit.input("b", 3)
    with pytest.raises(ValueError):
        circuit.and_(a, b)
    with pytest.raises(ValueError):
        circuit.eq(a, b)


def test_register_and_flip_flop_count():
    circuit = Circuit("demo")
    d = circuit.input("d", 8)
    en = circuit.input("en", 1)
    q = circuit.dff(d, enable=en, init_value=5, name="q")
    assert isinstance(q.driver, DFF)
    assert q.driver.init_value == 5
    stats = circuit.stats()
    assert stats.flip_flops == 8
    assert stats.inputs == 9
    assert circuit.flip_flops[0].flip_flop_count() == 8


def test_state_and_dff_into_feedback():
    circuit = Circuit("demo")
    cnt = circuit.state("cnt", 4)
    nxt = circuit.add(cnt, 1)
    circuit.dff_into(cnt, nxt)
    circuit.output(cnt)
    circuit.validate()
    assert cnt.driver is not None


def test_tristate_bus():
    circuit = Circuit("demo")
    d0 = circuit.input("d0", 4)
    d1 = circuit.input("d1", 4)
    e0 = circuit.input("e0", 1)
    e1 = circuit.input("e1", 1)
    bus = circuit.bus([(circuit.tribuf(d0, e0), e0), (circuit.tribuf(d1, e1), e1)])
    resolver = bus.driver
    base = {d0: 3, d1: 5, e0: 1, e1: 0}
    values = dict(base)
    for gate in circuit.topological_order():
        values[gate.output] = gate.evaluate(values)
    assert values[bus] == 3
    assert not resolver.has_contention(values)
    values = dict(base)
    values[e1] = 1
    for gate in circuit.topological_order():
        values[gate.output] = gate.evaluate(values)
    assert resolver.has_contention(values)


def test_topological_order_and_cycle_detection():
    circuit = Circuit("demo")
    a = circuit.input("a", 2)
    x = circuit.new_net("x", 2)
    y = circuit.and_(a, x)
    # Close a combinational loop: x driven by y.
    from repro.netlist.gates import BufGate

    circuit._register(BufGate("loop", [y], x))
    with pytest.raises(ValueError):
        circuit.topological_order()


def test_validate_detects_undriven_nets():
    circuit = Circuit("demo")
    a = circuit.input("a", 2)
    floating = circuit.new_net("floating", 2)
    circuit.and_(a, floating)
    with pytest.raises(ValueError):
        circuit.validate()


def test_classification():
    circuit = Circuit("demo")
    a = circuit.input("a", 8)
    flag = circuit.input("flag", 1)
    forced = circuit.input("state", 4, kind=NetKind.CONTROL)
    classes = classify_nets(circuit)
    assert classes[a] is SignalClass.DATA
    assert classes[flag] is SignalClass.CONTROL
    assert classes[forced] is SignalClass.CONTROL
    assert is_control(flag)
    assert not is_control(a)


def test_output_with_rename():
    circuit = Circuit("demo")
    a = circuit.input("a", 4)
    total = circuit.add(a, 1)
    renamed = circuit.output(total, name="result")
    assert renamed.name == "result"
    assert renamed.is_primary_output()
    assert circuit.net("result") is renamed


def test_stats_rows():
    circuit = Circuit("demo", source_lines=42)
    a = circuit.input("a", 4)
    circuit.output(circuit.add(a, 1))
    row = circuit.stats().as_row()
    assert row[0] == "demo"
    assert row[1] == 42
