"""Tests for parsing property expressions from strings."""

import pytest

from repro.netlist import Circuit
from repro.properties import (
    And,
    AtMostOneHot,
    Delayed,
    Implies,
    Not,
    OneHot,
    Or,
    PropertyCompiler,
    Signal,
)
from repro.properties.parse import PropertyParseError, parse_expression
from repro.properties.spec import BinOp, Const
from repro.simulation import Simulator


# ----------------------------------------------------------------------
# Structure of parsed expressions
# ----------------------------------------------------------------------
def test_comparison_parses_to_binop():
    expr = parse_expression("hour != 13")
    assert isinstance(expr, BinOp)
    assert expr.op == "!="
    assert expr.signals() == ["hour"]


def test_arithmetic_and_bitwise_operators():
    expr = parse_expression("(a + b) * 2 == (c & mask) | flag")
    assert isinstance(expr, BinOp)
    assert sorted(expr.signals()) == ["a", "b", "c", "flag", "mask"]


def test_boolean_keywords_map_to_and_or_not():
    expr = parse_expression("a == 1 and (b == 0 or not (c == 2))")
    assert isinstance(expr, And)
    assert isinstance(expr.terms[1], Or)
    assert isinstance(expr.terms[1].terms[1], Not)


def test_rshift_and_implies_function_are_implication():
    assert isinstance(parse_expression("(a == 1) >> (b == 1)"), Implies)
    assert isinstance(parse_expression("implies(a == 1, b == 1)"), Implies)


def test_onehot_and_atmostone_functions():
    assert isinstance(parse_expression("onehot(g0, g1, g2)"), OneHot)
    assert isinstance(parse_expression("atmostone(g0, g1)"), AtMostOneHot)


def test_delayed_function():
    expr = parse_expression("delayed(minute == 59, 2)")
    assert isinstance(expr, Delayed)
    assert expr.cycles == 2


def test_bare_signal_and_constant():
    assert isinstance(parse_expression("ready"), Signal)
    assert isinstance(parse_expression("7"), Const)
    assert isinstance(parse_expression("~busy"), Not)


# ----------------------------------------------------------------------
# Error handling
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        "",
        "   ",
        "a ===",
        "a < b < c",          # chained comparison
        "a / b == 1",         # unsupported operator
        "f(x)",               # unknown function
        "delayed(a == 1, b)", # non-constant delay
        "a == 1.5",           # non-integer constant
        "True and a == 1",    # boolean literal
        "obj.attr == 1",      # attribute access
    ],
)
def test_rejected_expressions(text):
    with pytest.raises(PropertyParseError):
        parse_expression(text)


# ----------------------------------------------------------------------
# End-to-end: parsed expressions compile and simulate like hand-built ones
# ----------------------------------------------------------------------
def test_parsed_expression_compiles_and_evaluates():
    circuit = Circuit("demo")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    circuit.output(circuit.add(a, b), name="total")
    monitor = PropertyCompiler(circuit).compile_condition(
        parse_expression("total == a + b and total <= 12")
    )
    simulator = Simulator(circuit)
    assert simulator.step({"a": 5, "b": 6})[monitor.name] == 1
    # 9 + 5 = 14 > 12 violates the second conjunct.
    assert simulator.step({"a": 9, "b": 5})[monitor.name] == 0
