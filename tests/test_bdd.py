"""Tests for the ROBDD manager and the BDD-based symbolic checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BddManager, BddSymbolicChecker
from repro.baselines.bdd import FALSE, TRUE, BddLimitExceeded
from repro.checker import AssertionChecker, CheckerOptions, CheckStatus
from repro.netlist import Circuit
from repro.properties import Assertion, Environment, Signal, Witness


# ----------------------------------------------------------------------
# BDD manager
# ----------------------------------------------------------------------
def test_basic_connectives_and_canonicity():
    manager = BddManager()
    x = manager.new_variable()
    y = manager.new_variable()
    assert manager.and_(x, x) == x
    assert manager.or_(x, manager.not_(x)) == TRUE
    assert manager.and_(x, manager.not_(x)) == FALSE
    assert manager.xor(x, y) == manager.xor(y, x)
    # De Morgan: canonical form makes both sides the same node.
    lhs = manager.not_(manager.and_(x, y))
    rhs = manager.or_(manager.not_(x), manager.not_(y))
    assert lhs == rhs


def test_ite_shortcuts():
    manager = BddManager()
    x = manager.new_variable()
    y = manager.new_variable()
    assert manager.ite(TRUE, x, y) == x
    assert manager.ite(FALSE, x, y) == y
    assert manager.ite(x, TRUE, FALSE) == x
    assert manager.ite(x, y, y) == y


def test_restrict_and_exists():
    manager = BddManager()
    x = manager.new_variable()
    y = manager.new_variable()
    f = manager.and_(x, y)
    assert manager.restrict(f, 0, True) == y
    assert manager.restrict(f, 0, False) == FALSE
    # Exists x. (x & y) == y ; Exists y too == TRUE
    assert manager.exists(f, [0]) == y
    assert manager.exists(f, [0, 1]) == TRUE
    assert manager.exists(FALSE, [0]) == FALSE


def test_rename_shifts_levels():
    manager = BddManager(num_variables=4)
    x1 = manager.variable(1)
    x3 = manager.variable(3)
    f = manager.and_(x1, x3)
    renamed = manager.rename(f, {1: 0, 3: 2})
    assert renamed == manager.and_(manager.variable(0), manager.variable(2))
    with pytest.raises(ValueError):
        manager.rename(f, {1: 2, 3: 0})  # order-violating mapping


def test_satisfy_one_and_count():
    manager = BddManager()
    x = manager.new_variable()
    y = manager.new_variable()
    z = manager.new_variable()
    f = manager.or_(manager.and_(x, y), z)
    assignment = manager.satisfy_one(f)
    assert assignment is not None
    # Evaluate the assignment against the function definition.
    value = (assignment.get(0, False) and assignment.get(1, False)) or assignment.get(2, False)
    assert value
    assert manager.count_solutions(f) == 5  # x&y (2 with z free) + z (4) - overlap (1)
    assert manager.count_solutions(FALSE) == 0
    assert manager.count_solutions(TRUE) == 8
    assert manager.satisfy_one(FALSE) is None


def test_node_limit_raises():
    manager = BddManager(max_nodes=4)
    variables = [manager.new_variable() for _ in range(4)]
    with pytest.raises(BddLimitExceeded):
        result = TRUE
        for index, var in enumerate(variables):
            result = manager.and_(result, manager.xor(var, variables[(index + 1) % 4]))


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_bdd_evaluation_matches_truth_table(truth_a, truth_b):
    """Random 3-variable functions, built from their truth tables via Shannon
    expansion, agree with direct evaluation for every input combination."""
    manager = BddManager()
    variables = [manager.new_variable() for _ in range(3)]

    def build(truth):
        result = FALSE
        for minterm in range(8):
            if not (truth >> minterm) & 1:
                continue
            term = TRUE
            for bit, var in enumerate(variables):
                literal = var if (minterm >> bit) & 1 else manager.not_(var)
                term = manager.and_(term, literal)
            result = manager.or_(result, term)
        return result

    f = build(truth_a)
    g = build(truth_b)
    combined = manager.xor(f, g)
    for minterm in range(8):
        expected = ((truth_a >> minterm) & 1) ^ ((truth_b >> minterm) & 1)
        value = combined
        for bit in range(3):
            value = manager.restrict(value, bit, bool((minterm >> bit) & 1))
        assert value == (TRUE if expected else FALSE)


# ----------------------------------------------------------------------
# Symbolic checker
# ----------------------------------------------------------------------
def build_counter(limit=5, width=3):
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", width)
    at_max = circuit.eq(cnt, limit)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, width))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


def test_symbolic_reachability_counts_states():
    result = BddSymbolicChecker(build_counter()).check(
        Assertion("never_seven", Signal("cnt") != 7)
    )
    assert result.status is CheckStatus.HOLDS
    assert result.reachable_states == 6  # 0..5
    assert result.iterations >= 5
    assert result.peak_nodes > 0


def test_symbolic_checker_finds_violations_and_witnesses():
    fails = BddSymbolicChecker(build_counter()).check(
        Assertion("never_three", Signal("cnt") != 3)
    )
    assert fails.status is CheckStatus.FAILS
    witness = BddSymbolicChecker(build_counter()).check(
        Witness("reach_five", Signal("cnt") == 5)
    )
    assert witness.status is CheckStatus.WITNESS_FOUND
    missing = BddSymbolicChecker(build_counter()).check(
        Witness("reach_six", Signal("cnt") == 6)
    )
    assert missing.status is CheckStatus.WITNESS_NOT_FOUND


def test_symbolic_checker_respects_environment():
    circuit = Circuit("pair")
    r0 = circuit.input("r0", 1)
    r1 = circuit.input("r1", 1)
    circuit.output(circuit.and_(r0, r1), name="both")
    environment = Environment().one_hot(["r0", "r1"])
    result = BddSymbolicChecker(circuit, environment=environment).check(
        Assertion("never_both", Signal("both") == 0)
    )
    assert result.status is CheckStatus.HOLDS
    unconstrained = BddSymbolicChecker(circuit).check(
        Assertion("never_both", Signal("both") == 0)
    )
    assert unconstrained.status is CheckStatus.FAILS


def test_symbolic_checker_node_limit_aborts():
    circuit = Circuit("wide")
    a = circuit.input("a", 12)
    b = circuit.input("b", 12)
    product = circuit.mul(a, b, name="product")
    circuit.dff(product, name="acc")
    result = BddSymbolicChecker(circuit, node_limit=2000).check(
        Assertion("acc_small", Signal("acc") != 4095)
    )
    assert result.status is CheckStatus.ABORTED
    assert result.peak_nodes <= 2100


def test_symbolic_and_word_level_agree_on_paper_style_properties():
    """Cross-check the two engines on a small design (differential testing)."""
    for prop in (
        Assertion("never_six", Signal("cnt") != 6),
        Assertion("never_four", Signal("cnt") != 4),
        Witness("reach_two", Signal("cnt") == 2),
    ):
        bdd_result = BddSymbolicChecker(build_counter()).check(prop)
        word_result = AssertionChecker(
            build_counter(), options=CheckerOptions(max_frames=10)
        ).check(prop)
        assert bdd_result.status is word_result.status
