"""Tests for local FSM extraction and ESTG seeding."""

import pytest

from repro.analysis import extract_local_fsm, extract_local_fsms, seed_estg_from_fsms
from repro.atpg import ExtendedStateTransitionGraph, Justifier, UnrolledModel
from repro.bitvector import BV3
from repro.checker import AssertionChecker, CheckerOptions, CheckStatus
from repro.netlist import Circuit
from repro.properties import Assertion, Signal, Witness


def build_wrapping_counter(limit=5, width=3):
    """A counter that wraps to zero after ``limit``; values above ``limit``
    are unreachable from the initial state."""
    circuit = Circuit("wrap_counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", width)
    at_max = circuit.eq(cnt, limit)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, width))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


def build_one_hot_ring(num_stages=4):
    """A one-hot rotating token: only one-hot encodings are reachable."""
    circuit = Circuit("ring")
    advance = circuit.input("advance", 1)
    token = circuit.state("token", num_stages)
    rotated = circuit.concat(
        circuit.slice(token, num_stages - 2, 0), circuit.bit(token, num_stages - 1)
    )
    circuit.dff_into(token, circuit.mux(advance, token, rotated), init_value=1)
    circuit.output(token)
    return circuit


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def test_counter_fsm_transitions_and_unreachable_states():
    circuit = build_wrapping_counter()
    fsm = extract_local_fsm(circuit, circuit.flip_flops[0])
    assert fsm.register_name == "cnt"
    assert fsm.width == 3
    assert fsm.initial_state == 0
    # Counting and holding are both possible from every reachable state.
    assert set(fsm.successors(0)) == {0, 1}
    assert set(fsm.successors(5)) == {5, 0}
    # 6 and 7 can never be entered.
    assert fsm.unreachable_states() == {6, 7}


def test_one_hot_ring_unreachable_states_are_non_one_hot():
    circuit = build_one_hot_ring()
    fsm = extract_local_fsm(circuit, circuit.flip_flops[0])
    reachable = fsm.reachable_states()
    assert reachable == {1, 2, 4, 8}
    assert all(bin(state).count("1") == 1 for state in reachable)
    assert 0 in fsm.unreachable_states()
    assert 3 in fsm.unreachable_states()


def test_reachability_from_alternate_start_state():
    circuit = build_wrapping_counter()
    fsm = extract_local_fsm(circuit, circuit.flip_flops[0])
    # Starting inside the unreachable region the counter counts up to wrap at
    # the modulus, so everything becomes reachable.
    assert 7 in fsm.reachable_states(from_state=6)
    # Starting at 2 the counter still wraps through 0 and revisits 1; only the
    # dead region above the wrap limit stays unreachable.
    assert fsm.unreachable_states(from_state=2) == {6, 7}


def test_unknown_initial_state_gives_empty_reachability():
    circuit = Circuit("unknown_start")
    inp = circuit.input("inp", 2)
    state = circuit.state("state", 2)
    circuit.dff_into(state, inp, init_value=None)
    circuit.output(state)
    fsm = extract_local_fsm(circuit, circuit.flip_flops[0])
    assert fsm.initial_state is None
    assert fsm.reachable_states() == set()
    assert fsm.unreachable_states() == set()


def test_extract_local_fsms_skips_wide_registers():
    circuit = build_wrapping_counter(width=3)
    wide_input = circuit.input("wide_in", 8)
    circuit.dff(wide_input, name="wide_reg")
    fsms = extract_local_fsms(circuit, max_width=4)
    names = {fsm.register_name for fsm in fsms}
    assert "cnt" in names
    assert "wide_reg" not in names


def test_extract_rejects_oversized_register():
    circuit = Circuit("big")
    data = circuit.input("data", 10)
    circuit.dff(data, name="big_reg")
    with pytest.raises(ValueError):
        extract_local_fsm(circuit, circuit.flip_flops[0], max_states=64)


def test_cycles_found_in_counter_loop():
    circuit = build_wrapping_counter(limit=2, width=2)
    fsm = extract_local_fsm(circuit, circuit.flip_flops[0])
    cycles = fsm.find_cycles()
    assert cycles, "the wrap-around loop should be detected"
    assert any(set(cycle) == {0, 1, 2} for cycle in cycles)
    # Self-loops from the hold branch are cycles too.
    assert any(len(cycle) == 1 for cycle in cycles)


def test_format_mentions_unreachable_states():
    circuit = build_wrapping_counter()
    fsm = extract_local_fsm(circuit, circuit.flip_flops[0])
    text = fsm.format()
    assert "local FSM cnt" in text
    assert "unreachable" in text


# ----------------------------------------------------------------------
# ESTG seeding and checker integration
# ----------------------------------------------------------------------
def test_seed_estg_records_structural_facts():
    circuit = build_wrapping_counter()
    fsms = extract_local_fsms(circuit)
    estg = ExtendedStateTransitionGraph()
    recorded = seed_estg_from_fsms(estg, fsms)
    assert recorded == 2
    illegal = ExtendedStateTransitionGraph.state_cube([("cnt", BV3.from_int(3, 7))])
    legal = ExtendedStateTransitionGraph.state_cube([("cnt", BV3.from_int(3, 3))])
    assert estg.is_structurally_illegal(illegal)
    assert not estg.is_structurally_illegal(legal)
    assert estg.stats()["structurally_illegal"] == 2


def test_justifier_prunes_structurally_illegal_states():
    """With the initial state left free the model alone admits cnt == 7 (hold
    the dead state), but the FSM-seeded ESTG knows the real design can never
    occupy it and prunes the branch."""
    circuit = build_wrapping_counter()
    fsms = extract_local_fsms(circuit)
    estg = ExtendedStateTransitionGraph()
    seed_estg_from_fsms(estg, fsms)
    cnt = circuit.net("cnt")

    unguided = UnrolledModel(circuit, 3, free_initial_state=True)
    unguided.assign(cnt, 2, BV3.from_int(3, 7))
    assert Justifier(unguided, prove_mode=False).run().succeeded

    guided = UnrolledModel(circuit, 3, free_initial_state=True)
    guided.assign(cnt, 2, BV3.from_int(3, 7))
    result = Justifier(guided, prove_mode=False, estg=estg).run()
    assert not result.succeeded
    assert estg.prune_hits >= 1


def test_checker_verdicts_unchanged_with_fsm_guidance():
    circuit = build_wrapping_counter()
    prop_holds = Assertion("never_seven", Signal("cnt") != 7)
    prop_witness = Witness("reach_four", Signal("cnt") == 4)

    plain = AssertionChecker(circuit, options=CheckerOptions(max_frames=8))
    guided = AssertionChecker(
        circuit, options=CheckerOptions(max_frames=8, use_local_fsm_guidance=True)
    )
    assert plain.check(prop_holds).status is CheckStatus.HOLDS
    assert guided.check(prop_holds).status is CheckStatus.HOLDS
    assert plain.check(prop_witness).status is CheckStatus.WITNESS_FOUND
    assert guided.check(prop_witness).status is CheckStatus.WITNESS_FOUND
    assert guided.estg.stats()["structurally_illegal"] >= 1
