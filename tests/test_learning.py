"""Cross-bound search learning: equivalence, pruning and plumbing.

The learning path (``CheckerOptions.learning``) persists conflict-lifted
illegal cubes and proven-FAIL target frames on the cached unrolled model.
These tests pin its soundness contract -- identical verdicts and identical
counterexamples to the non-learning search at *every* bound, on the zoo and
on fuzzed netlists -- plus the supporting machinery: the dirty-set
unjustified frontier, conflict analysis, cube re-basing, the re-check guard
for illegal-state cubes, the proven-FAIL memo, batch grouping by circuit and
the new statistics counters.
"""

import pytest

from repro.atpg.estg import ExtendedStateTransitionGraph, LearnedCube
from repro.atpg.justify import Justifier
from repro.atpg.timeframe import UnrolledModel
from repro.bitvector import BV3
from repro.bitvector.bv3 import bv
from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.incremental import UnrolledModelCache
from repro.checker.report import statistics_to_dict
from repro.circuits import all_case_ids, build_case, build_token_ring, extended_case_ids
from repro.implication.assignment import ImplicationConflict, RootCause
from repro.implication.engine import ImplicationEngine, ImplicationNode
from repro.properties import Assertion, OneHot, Signal, Witness

from test_bitparallel import build_random_circuit


def _sweep(circuit, prop, bounds, learning, environment=None, initial_state=None):
    """Check ``prop`` at every bound with one checker (the sweep shape)."""
    checker = AssertionChecker(
        circuit,
        environment=environment,
        initial_state=initial_state,
        options=CheckerOptions(
            max_frames=max(bounds), incremental=True, learning=learning,
            trace_memory=False,
        ),
        model_cache=UnrolledModelCache(),
    )
    return [checker.check(prop, max_frames=bound) for bound in bounds]


def _assert_equivalent(with_learning, without_learning):
    for on, off in zip(with_learning, without_learning):
        assert on.status is off.status
        assert on.frames_explored == off.frames_explored
        cex_on, cex_off = on.counterexample, off.counterexample
        assert (cex_on is None) == (cex_off is None)
        if cex_on is not None:
            assert cex_on.initial_state == cex_off.initial_state
            assert cex_on.inputs == cex_off.inputs
            assert cex_on.target_frame == cex_off.target_frame


# ----------------------------------------------------------------------
# Tentpole: verdict/counterexample equivalence at every bound
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_id", all_case_ids() + extended_case_ids())
def test_learning_equivalent_on_zoo_sweeps(case_id):
    case_on, case_off = build_case(case_id), build_case(case_id)
    bounds = list(range(1, case_on.max_frames + 2))
    on = _sweep(case_on.circuit, case_on.prop, bounds, True,
                environment=case_on.environment, initial_state=case_on.initial_state)
    off = _sweep(case_off.circuit, case_off.prop, bounds, False,
                 environment=case_off.environment, initial_state=case_off.initial_state)
    _assert_equivalent(on, off)
    assert on[-1].status is case_on.expected_status


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("kind", ["assertion", "witness"])
def test_learning_equivalent_on_fuzzed_circuits(seed, kind):
    circuit_on = build_random_circuit(seed)
    circuit_off = build_random_circuit(seed)
    target = circuit_on.outputs[0]
    expr = Signal(target.name) == (1 if kind == "witness" else 0)
    prop = (
        Assertion("fz%d" % seed, expr)
        if kind == "assertion"
        else Witness("fz%d" % seed, expr)
    )
    bounds = [1, 2, 3]
    on = _sweep(circuit_on, prop, bounds, True)
    off = _sweep(circuit_off, prop, bounds, False)
    _assert_equivalent(on, off)


def test_learning_prunes_and_memoises_on_sweeps():
    """The learning sweep must actually learn: repeat targets are skipped
    and search effort shrinks (p14 is the cube-heaviest zoo case)."""
    case = build_case("p14")
    bounds = list(range(1, case.max_frames + 2))
    results = _sweep(case.circuit, case.prop, bounds, True,
                     environment=case.environment, initial_state=case.initial_state)
    skipped = sum(result.statistics.targets_skipped for result in results)
    learned = sum(result.statistics.cubes_learned for result in results)
    hits = sum(result.statistics.cube_hits for result in results)
    # Every repeat target after its first FAIL is served from the memo.
    assert skipped == sum(range(1, len(bounds)))
    assert learned > 0 and hits > 0
    off = _sweep(build_case("p14").circuit, case.prop, bounds, False,
                 environment=case.environment, initial_state=case.initial_state)
    assert sum(r.statistics.decisions for r in results) < sum(
        r.statistics.decisions for r in off
    )


def test_learning_shared_across_checker_instances():
    """Facts ride the cached model: a second checker on the same circuit
    object starts from the first one's proven targets."""
    case = build_case("p2")
    cache = UnrolledModelCache()
    options = CheckerOptions(max_frames=case.max_frames, trace_memory=False)
    first = AssertionChecker(
        case.circuit, environment=case.environment,
        initial_state=case.initial_state, options=options, model_cache=cache,
    ).check(case.prop)
    second = AssertionChecker(
        case.circuit, environment=case.environment,
        initial_state=case.initial_state, options=options, model_cache=cache,
    ).check(case.prop)
    assert second.status is first.status
    assert second.statistics.targets_skipped == first.frames_explored
    assert second.statistics.decisions == 0


def test_deep_witness_found_after_assertion_checks_share_the_model():
    """Regression: goal-dependent cubes with init-tainted cones must never
    be re-used at another target frame.  A bounded counter is the sharpest
    probe: assertions checked first leave learned state on the model, and
    the witness needs the *deepest* target frame -- any cube leaking across
    targets or properties kills it."""
    from repro.netlist import Circuit

    def build_counter():
        circuit = Circuit("counter")
        enable = circuit.input("en", 1)
        count = circuit.state("cnt", 4)
        at_limit = circuit.eq(count, 9, name="at_limit")
        incremented = circuit.add(count, 1, name="incremented")
        next_when_counting = circuit.mux(at_limit, incremented, circuit.const(0, 4))
        next_count = circuit.mux(enable, count, next_when_counting, name="next_count")
        circuit.dff_into(count, next_count, init_value=0)
        circuit.output(count)
        return circuit

    def run(learning):
        checker = AssertionChecker(
            build_counter(),
            options=CheckerOptions(max_frames=8, learning=learning),
            model_cache=UnrolledModelCache(),
        )
        return [
            checker.check(Assertion("bounded", Signal("cnt") <= 9)),
            checker.check(Assertion("never_five", Signal("cnt") != 5)),
            checker.check(Witness("reach_seven", Signal("cnt") == 7)),
        ]

    _assert_equivalent(run(True), run(False))


def test_fail_memo_is_keyed_by_search_configuration():
    """FAIL verdicts come out of a decision-order-dependent procedure, so a
    differently configured checker must not consume them."""
    case = build_case("p2")
    cache = UnrolledModelCache()
    AssertionChecker(
        case.circuit, environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(max_frames=case.max_frames, use_bias=True),
        model_cache=cache,
    ).check(case.prop)
    other = AssertionChecker(
        case.circuit, environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(max_frames=case.max_frames, use_bias=False),
        model_cache=cache,
    ).check(case.prop)
    assert other.statistics.targets_skipped == 0


def test_fail_memo_not_written_under_heuristic_estg():
    """use_estg may prune unsoundly; its verdicts must stay out of the
    shared proven-FAIL memo."""
    case = build_case("p2")
    cache = UnrolledModelCache()
    AssertionChecker(
        case.circuit, environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(max_frames=case.max_frames, use_estg=True),
        model_cache=cache,
    ).check(case.prop)
    model, _ = cache.acquire(case.circuit, case.initial_state, case.environment)
    assert not model.estg.proven_fail_targets


def test_no_learning_matches_pre_learning_behaviour():
    """--no-learning must leave zero learning state on the cached model."""
    case = build_case("p2")
    cache = UnrolledModelCache()
    checker = AssertionChecker(
        case.circuit, environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(max_frames=case.max_frames, learning=False),
        model_cache=cache,
    )
    result = checker.check(case.prop)
    assert result.statistics.targets_skipped == 0
    assert result.statistics.cubes_learned == 0
    model, _reused = cache.acquire(case.circuit, case.initial_state, case.environment)
    assert not model.estg.proven_fail_targets
    assert not model.estg.learned_cubes


# ----------------------------------------------------------------------
# Dirty-set unjustified frontier
# ----------------------------------------------------------------------
class _CrossCheckingJustifier(Justifier):
    """Asserts the frontier equals a full scan at every query."""

    def _unjustified(self):
        frontier = super()._unjustified()
        full = self.engine.unjustified_nodes(self.model.active_nodes())
        assert frontier == full
        return frontier


@pytest.mark.parametrize("case_id", ["p2", "p3", "p5", "p7"])
def test_frontier_matches_full_scan_throughout_search(case_id, monkeypatch):
    import repro.checker.engine as checker_engine

    monkeypatch.setattr(checker_engine, "Justifier", _CrossCheckingJustifier)
    case = build_case(case_id)
    result = AssertionChecker(
        case.circuit, environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(max_frames=case.max_frames),
        model_cache=UnrolledModelCache(),
    ).check(case.prop)
    assert result.status is case.expected_status


def test_frontier_tracks_assign_backtrack_and_activation():
    from repro.netlist import Circuit

    circuit = Circuit("front")
    a = circuit.input("a", 1)
    reg = circuit.dff(a, name="reg")  # no init value: frame-0 output is free
    # An OR requirement of 1 stays unjustified until a decision picks an
    # input, unlike AND, whose backward implication self-justifies it.
    out = circuit.or_(reg, a, name="out")
    circuit.output(out)
    model = UnrolledModel(circuit, 3)
    engine = model.engine

    def frontier():
        return engine.unjustified_frontier(model.node_order())

    def full():
        return engine.unjustified_nodes(model.active_nodes())

    assert frontier() == full()
    # A requirement makes its driver unjustified; retracting restores.
    save = engine.savepoint()
    engine.assign(model.key(out, 2), BV3.from_int(1, 1))
    assert frontier() == full() and frontier()
    engine.rollback_to(save)
    assert frontier() == full()
    # Backtracking through decision levels keeps the frontier in sync.
    engine.push_level()
    engine.assign(model.key(out, 1), BV3.from_int(1, 1))
    assert frontier() == full()
    engine.pop_level()
    assert frontier() == full()
    # Shrinking and regrowing the active view re-tests toggled nodes.
    engine.assign(model.key(out, 2), BV3.from_int(1, 1))
    before = frontier()
    assert before
    model.extend_to(2)
    assert frontier() == full()
    model.extend_to(3)
    assert frontier() == full() == before


def test_frame_taint_covers_register_boundary_facts():
    """Base facts derived through register crossings are frame-anchored
    even without initial-state values: a const-fed chain gives Q@k=c only
    for k >= chain depth, so cones touching those keys must never produce
    shiftable (re-basable) cubes."""
    from repro.netlist import Circuit

    circuit = Circuit("chain")
    a = circuit.input("a", 1)
    r1 = circuit.dff(circuit.const(1, 1), init_value=None, name="r1")
    r2 = circuit.dff(r1, init_value=None, name="r2")
    circuit.output(circuit.or_(r2, a, name="out"))
    model = UnrolledModel(circuit, 4)
    # Frame-0 outputs are free (untainted); the crossing-derived facts
    # r1@k (k>=1) and r2@k (k>=2) are frame-anchored.
    assert model.value(circuit.net("r1"), 1).is_fully_known()
    assert model.value(circuit.net("r2"), 2).is_fully_known()
    assert (circuit.net("r1"), 0) not in model.init_tainted
    assert (circuit.net("r1"), 1) in model.init_tainted
    assert (circuit.net("r2"), 2) in model.init_tainted
    # Purely combinational constant cones stay shift-invariant.
    const_net = circuit.net("r1").driver.d
    assert (const_net, 2) not in model.init_tainted


def test_rule_cache_lru_policy_moves_hits_to_the_back(monkeypatch):
    """The experiment switch stays functional: with LRU on, a hit entry
    outlives newer-but-colder entries at the eviction limit."""
    monkeypatch.setattr(ImplicationEngine, "rule_cache_lru", True)
    engine = ImplicationEngine()
    engine._rule_cache_limit = 2
    node = ImplicationNode("n", ["a", "b"], lambda cubes: list(cubes))
    engine.add_node(node, widths=[4, 4])

    def evaluate(value):
        engine.assignment._values.pop("a", None)
        engine.assignment.assign("a", BV3.from_int(4, value))
        engine.enqueue([node])
        engine.propagate()

    evaluate(0)
    evaluate(1)
    evaluate(0)  # hit: moves the value-0 entry to the back
    assert engine.rule_cache_hits == 1
    evaluate(2)  # evicts value 1, not the recently hit value 0
    cache = engine._rule_cache[id(node)]
    first_pins = {key[0] for key in cache}
    assert BV3.from_int(4, 0) in first_pins
    assert BV3.from_int(4, 1) not in first_pins


# ----------------------------------------------------------------------
# Conflict analysis
# ----------------------------------------------------------------------
def _buf_rule(cubes):
    joined = cubes[0].intersect(cubes[1])
    return [joined, joined]


def _inv_rule(cubes):
    def flip(cube):
        if cube.is_fully_known():
            return BV3.from_int(1, 1 - cube.min_value())
        return BV3.unknown(1)

    a, b = cubes
    return [a.intersect(flip(b)), b.intersect(flip(a))]


def _conflict_engine():
    engine = ImplicationEngine()
    engine.add_node(ImplicationNode("buf", ["a", "c"], _buf_rule), widths=[1, 1])
    engine.add_node(ImplicationNode("inv", ["b", "c"], _inv_rule), widths=[1, 1])
    return engine


def test_analyze_conflict_finds_decision_roots():
    engine = _conflict_engine()
    root_a = RootCause("decision", "a", BV3.from_int(1, 1))
    root_b = RootCause("decision", "b", BV3.from_int(1, 1))
    engine.assign("a", BV3.from_int(1, 1), reason=root_a)
    with pytest.raises(ImplicationConflict) as excinfo:
        engine.assign("b", BV3.from_int(1, 1), reason=root_b)
    analysis = engine.analyze_conflict(excinfo.value, 0)
    assert not analysis.opaque
    assert root_a in analysis.roots
    assert {"a", "b", "c"} <= analysis.cone


def test_analyze_conflict_flags_unattributed_assignments():
    engine = _conflict_engine()
    engine.assign("a", BV3.from_int(1, 1))  # no reason recorded
    with pytest.raises(ImplicationConflict) as excinfo:
        engine.assign("b", BV3.from_int(1, 1), reason=RootCause("decision", "b"))
    assert engine.analyze_conflict(excinfo.value, 0).opaque


def test_analyze_conflict_respects_stop_mark():
    engine = _conflict_engine()
    engine.assign("a", BV3.from_int(1, 1), reason=RootCause("env"))
    mark = engine.assignment.trail_length
    with pytest.raises(ImplicationConflict) as excinfo:
        engine.assign("b", BV3.from_int(1, 1), reason=RootCause("decision", "b"))
    analysis = engine.analyze_conflict(excinfo.value, mark)
    # The env assignment lies below the mark: part of the model, not a root.
    assert all(root.kind != "env" for root in analysis.roots)
    assert not analysis.opaque


# ----------------------------------------------------------------------
# Learned cubes: anchoring, dedup, eviction
# ----------------------------------------------------------------------
class _Net:
    def __init__(self, name):
        self.name = name


def test_learned_cube_anchor_rebases_shiftable_offsets():
    net = _Net("x")
    cube = LearnedCube(
        literals=((net, -1, bv("1")),), shiftable=True,
        min_position=-2, max_position=0,
    )
    assert cube.anchor(1) is None  # the cone would need frame -1
    anchored = cube.anchor(3)
    assert anchored == [(net, 2, bv("1"))]


def test_learned_cube_anchor_checks_absolute_window():
    net = _Net("x")
    cube = LearnedCube(
        literals=((net, 0, bv("1")),), shiftable=False,
        min_position=0, max_position=3,
    )
    assert cube.anchor(2) is None  # cone reaches frame 3, window too small
    assert cube.anchor(3) == [(net, 0, bv("1"))]


def test_record_learned_cube_dedups_and_evicts():
    estg = ExtendedStateTransitionGraph(max_learned_cubes=2)
    nets = [_Net("n%d" % i) for i in range(3)]

    def make(net):
        return LearnedCube(
            literals=((net, 0, bv("1")),), shiftable=True,
            min_position=0, max_position=0,
        )

    assert estg.record_learned_cube(make(nets[0]), lifted=True)
    assert not estg.record_learned_cube(make(nets[0]))  # dedup
    assert estg.record_learned_cube(make(nets[1]))
    assert estg.record_learned_cube(make(nets[2]))  # evicts the oldest
    assert len(estg.learned_cubes) == 2
    assert estg.cubes_learned == 3
    assert estg.cubes_lifted == 1
    stats = estg.stats()
    assert stats["learned_cubes"] == 2 and stats["cubes_lifted"] == 1


def test_touch_keeps_firing_cubes_out_of_eviction():
    """A fire refreshes the cube's LRU slot, so hot cubes survive capacity
    pressure even though their prune blocks re-recording."""
    estg = ExtendedStateTransitionGraph(max_learned_cubes=2)
    nets = [_Net("n%d" % i) for i in range(3)]

    def make(net):
        return LearnedCube(
            literals=((net, 0, bv("1")),), shiftable=True,
            min_position=0, max_position=0,
        )

    hot = make(nets[0])
    estg.record_learned_cube(hot)
    estg.record_learned_cube(make(nets[1]))
    estg.touch(hot)  # the oldest entry fires: moves to the back
    estg.record_learned_cube(make(nets[2]))  # evicts n1, not the hot cube
    assert hot.fingerprint in estg.learned_cubes
    assert len(estg.learned_cubes) == 2
    # Fingerprints come from FNV-1a only (stable across processes); a
    # session-only cube never recorded has none and touch is a no-op.
    session = make(nets[1])
    estg.touch(session)
    assert session.fingerprint is None


def test_state_candidates_dedup_and_patience():
    estg = ExtendedStateTransitionGraph()
    state = estg.state_cube([("r", bv("10"))])
    estg.record_state_candidate(state)
    estg.record_state_candidate(state)
    assert len(estg.state_candidates) == 1
    (candidate,) = estg.pending_state_candidates()
    candidate.failures = estg.candidate_patience
    assert not estg.pending_state_candidates()


def test_state_cube_recheck_promotes_and_lifts():
    """A state cube contradicting the model is verified, and lifting drops
    registers that did not participate in the conflict."""
    from repro.netlist import Circuit

    circuit = Circuit("recheck")
    a = circuit.input("a", 1)
    r1 = circuit.dff(a, init_value=0, name="r1")
    r2 = circuit.dff(a, init_value=None, name="r2")  # free initial value
    circuit.output(circuit.or_(r1, r2, name="out"))
    cache = UnrolledModelCache()
    checker = AssertionChecker(
        circuit,
        options=CheckerOptions(max_frames=3, trace_memory=False),
        model_cache=cache,
    )
    model, _ = cache.acquire(circuit)
    model.extend_to(3)
    # Candidate: r1 forced against its init-implied value, r2 left at a
    # satisfiable value -- only r1 participates in the conflict.
    promoted = checker._recheck_state_cube(
        model,
        [(circuit.net("r1"), BV3.from_int(1, 1)),
         (circuit.net("r2"), BV3.from_int(1, 0))],
    )
    assert promoted is not None
    assert promoted.source == "state" and not promoted.shiftable
    assert [net.name for net, _, _ in promoted.literals] == ["r1"]
    # A satisfiable cube is rejected by the guard.
    assert checker._recheck_state_cube(
        model, [(circuit.net("r2"), BV3.from_int(1, 1))]
    ) is None


# ----------------------------------------------------------------------
# Reporting and CLI plumbing
# ----------------------------------------------------------------------
def test_learning_counters_surface_in_report_json():
    case = build_case("p2")
    result = AssertionChecker(
        case.circuit, environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(max_frames=case.max_frames),
        model_cache=UnrolledModelCache(),
    ).check(case.prop)
    payload = statistics_to_dict(result.statistics)
    for key in ("cubes_learned", "cubes_lifted", "cube_hits",
                "solver_cores", "datapath_cubes_learned", "datapath_cube_hits",
                "targets_skipped", "frontier_peak"):
        assert key in payload
    assert payload["frontier_peak"] > 0


def test_cli_exposes_no_learning_flag():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["check", "design.v", "--assert", "x==1", "--no-learning"]
    )
    assert args.no_learning
    args = build_parser().parse_args(["check", "design.v", "--assert", "x==1"])
    assert not args.no_learning


def test_batch_learning_toggle_covers_engine_instances():
    from repro.portfolio.batch import _configure_engines
    from repro.portfolio.engines import AtpgEngine

    pinned = AtpgEngine(learning=True)
    unpinned = AtpgEngine()
    configured = _configure_engines(
        ["atpg", pinned, unpinned, "bdd"], incremental=True, learning=False
    )
    assert configured[0].learning is False        # name rewritten
    assert configured[1] is pinned                # explicit choice wins
    assert configured[2].learning is False        # unpinned follows batch
    assert configured[3] == "bdd"
    assert _configure_engines(["atpg"], incremental=True, learning=True) == ["atpg"]


# ----------------------------------------------------------------------
# Batch grouping by circuit (satellite)
# ----------------------------------------------------------------------
def _grouping_jobs():
    from repro.portfolio import BatchJob

    ring_a, ring_b = build_token_ring(), build_token_ring()
    jobs = []
    for tag, ports in (("a", ring_a), ("b", ring_b)):
        grants = [Signal(net.name) for net in ports.grants]
        jobs.append(BatchJob("%s_onehot" % tag, ports.circuit,
                             Assertion("one_hot", OneHot(*grants))))
        jobs.append(BatchJob("%s_first" % tag, ports.circuit,
                             Witness("first", grants[0] == 1)))
    # Interleave so grouping actually has to reorder the distribution.
    return [jobs[0], jobs[2], jobs[1], jobs[3]]


def test_group_by_circuit_keeps_submission_order_within_groups():
    from repro.portfolio.batch import BatchRunner

    jobs = _grouping_jobs()
    payloads = [(index, job) for index, job in enumerate(jobs)]
    groups = BatchRunner._group_by_circuit(payloads)
    assert len(groups) == 2
    assert [p[0] for p in groups[0]] == [0, 2]
    assert [p[0] for p in groups[1]] == [1, 3]


def test_group_by_circuit_chunks_single_circuit_batches():
    """A batch dominated by one circuit must still occupy every worker:
    oversized groups are split into pool-sized chunks (order preserved)."""
    from repro.portfolio import BatchJob
    from repro.portfolio.batch import BatchRunner

    ports = build_token_ring()
    grants = [Signal(net.name) for net in ports.grants]
    payloads = [
        (index, BatchJob("j%d" % index, ports.circuit,
                         Witness("w%d" % index, grants[0] == 1)))
        for index in range(10)
    ]
    chunks = BatchRunner._group_by_circuit(payloads, pool_size=4)
    assert len(chunks) == 4  # ceil(10 / ceil(10/4)=3) tasks
    assert [len(chunk) for chunk in chunks] == [3, 3, 3, 1]
    assert [p[0] for chunk in chunks for p in chunk] == list(range(10))
    # Small multi-circuit groups stay whole (affinity beats fan-out).
    mixed = _grouping_jobs()
    chunks = BatchRunner._group_by_circuit(
        [(i, job) for i, job in enumerate(mixed)], pool_size=2
    )
    assert [len(chunk) for chunk in chunks] == [2, 2]


def test_grouped_batch_report_ordering_is_deterministic():
    from repro.portfolio import BatchOptions, BatchRunner, EngineBudget

    def run(jobs_count):
        report = BatchRunner(
            BatchOptions(
                engines=("atpg",),
                budget=EngineBudget(max_frames=4),
                jobs=jobs_count,
            )
        ).run(_grouping_jobs())
        return [(item.job_id, item.seed, item.result.status.value)
                for item in report.items]

    inline = run(1)
    workers = run(2)
    assert [row[0] for row in inline] == ["a_onehot", "b_onehot", "a_first", "b_first"]
    assert inline == workers


# ----------------------------------------------------------------------
# Datapath infeasibility certificates
# ----------------------------------------------------------------------
def test_datapath_certificates_learn_and_prune():
    """The p15 sweep bottoms out in the modular solver at every leaf: the
    certificates must produce learned datapath cubes at the first bound and
    prune later bounds through re-based datapath cube hits."""
    case = build_case("p15")
    bounds = list(range(1, case.max_frames + 2))
    results = _sweep(case.circuit, case.prop, bounds, True,
                     environment=case.environment, initial_state=case.initial_state)
    assert all(result.status is case.expected_status for result in results)
    cores = sum(result.statistics.solver_cores for result in results)
    learned = sum(result.statistics.datapath_cubes_learned for result in results)
    hits = sum(result.statistics.datapath_cube_hits for result in results)
    assert cores > 0
    assert learned > 0
    assert hits > 0
    # Later bounds must not redo the certificate work of the first one.
    assert results[-1].statistics.solver_cores == 0
    assert results[-1].statistics.decisions < results[0].statistics.decisions


def _unknowable_mul_circuit():
    """A multiplier coupled to an adder through free operands: genuinely
    infeasible for the sentinel pair, but only factor *sampling* can
    explore it, so every solver verdict is Unknown -- never a proof."""
    from repro.netlist import Circuit

    circuit = Circuit("mulbudget")
    a = circuit.input("a", 8)
    b = circuit.input("b", 8)
    sel = circuit.input("sel", 1)
    off = circuit.mux(sel, circuit.const(0, 8), circuit.const(8, 8), name="off")
    product = circuit.mul(a, b, name="product")
    total = circuit.add(circuit.add(a, b, name="ab"), off, name="total")
    circuit.output(product)
    circuit.output(total)
    return circuit


@pytest.mark.parametrize("arithmetic_budget", [1, 256])
def test_budget_exhausted_solver_results_never_learn(arithmetic_budget):
    """Regression (satellite): a budget-exhausted (Unknown) solver answer
    must never install a learned cube -- it proves nothing.  budget=1 pins
    the NonlinearSolver(budget=1) start; the default budget exhausts the
    incomplete factor enumeration instead, with the same obligation."""
    from repro.atpg.justify import JustifierLimits
    from repro.properties import And, Not

    circuit = _unknowable_mul_circuit()
    prop = Assertion(
        "sentinel",
        Not(And(Signal("product") == 6, Signal("total") == 0)),
    )
    cache = UnrolledModelCache()
    checker = AssertionChecker(
        circuit,
        options=CheckerOptions(
            max_frames=3, trace_memory=False,
            limits=JustifierLimits(arithmetic_budget=arithmetic_budget),
        ),
        model_cache=cache,
    )
    results = [checker.check(prop, max_frames=bound) for bound in (1, 2, 3)]
    assert all(result.status.value == "holds" for result in results)
    model, _ = cache.acquire(circuit, None, checker.environment)
    assert not model.estg.learned_cubes
    assert model.estg.datapath_cubes_learned == 0
    for result in results:
        assert result.statistics.solver_cores == 0
        assert result.statistics.cubes_learned == 0
        assert result.statistics.datapath_cubes_learned == 0
