"""Differential testing: independent engines must agree on small designs.

The word-level ATPG checker (bounded) and the BDD symbolic reachability
checker (exact over the reachable state space) are run on the same randomly
generated small sequential circuits and the same properties.  With the
unrolling bound set beyond the state-space diameter the verdicts must
coincide; any disagreement indicates a soundness bug in one of the engines,
which is exactly what this suite is designed to surface.  The SAT bounded
model checker joins the comparison on the violation cases (where its DPLL
search is cheap); its exhaustive UNSAT proofs over deep unrollings are
exercised separately in ``test_baselines.py``.
"""

import random

import pytest

from repro.baselines import BddSymbolicChecker, SATBoundedChecker
from repro.checker import AssertionChecker, CheckerOptions, CheckStatus
from repro.netlist import Circuit
from repro.properties import Assertion, Signal, Witness
from repro.simulation import Simulator


def build_random_circuit(seed: int) -> Circuit:
    """A small random sequential design with one 3-bit state register.

    The next-state logic mixes arithmetic, bit-wise and comparator/mux
    primitives so every implication rule family participates.
    """
    rng = random.Random(seed)
    circuit = Circuit("random_%d" % seed)
    a = circuit.input("a", 3)
    b = circuit.input("b", 3)
    state = circuit.state("state", 3)

    terms = [a, b, state]
    for _ in range(rng.randint(2, 4)):
        kind = rng.choice(["add", "sub", "and", "or", "xor", "mux"])
        x = rng.choice(terms)
        y = rng.choice(terms)
        if kind == "add":
            terms.append(circuit.add(x, y))
        elif kind == "sub":
            terms.append(circuit.sub(x, y))
        elif kind == "and":
            terms.append(circuit.and_(x, y))
        elif kind == "or":
            terms.append(circuit.or_(x, y))
        elif kind == "xor":
            terms.append(circuit.xor(x, y))
        else:
            select = circuit.lt(x, rng.randint(1, 6))
            terms.append(circuit.mux(select, x, y))

    next_state = terms[-1]
    circuit.dff_into(state, next_state, init_value=rng.randint(0, 7))
    circuit.output(state)
    return circuit


def _normalise(status: CheckStatus) -> str:
    """Collapse the verdict to 'reachable' / 'unreachable' for comparison."""
    if status in (CheckStatus.FAILS, CheckStatus.WITNESS_FOUND):
        return "reachable"
    if status in (CheckStatus.HOLDS, CheckStatus.WITNESS_NOT_FOUND):
        return "unreachable"
    return "aborted"


#: Enough frames to cover the full diameter of a 3-bit state space.
BOUND = 9


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("target", [0, 3, 7])
def test_engines_agree_on_state_reachability(seed, target):
    prop = Assertion("never_%d" % target, Signal("state") != target)

    word = AssertionChecker(
        build_random_circuit(seed), options=CheckerOptions(max_frames=BOUND)
    ).check(prop)
    bdd = BddSymbolicChecker(build_random_circuit(seed)).check(prop)

    verdicts = {
        "word": _normalise(word.status),
        "bdd": _normalise(bdd.status),
    }
    assert "aborted" not in verdicts.values(), verdicts
    assert len(set(verdicts.values())) == 1, "engines disagree: %s (seed %d, target %d)" % (
        verdicts,
        seed,
        target,
    )

    if verdicts["word"] == "reachable":
        # The word-level engine's trace must really reach the value
        # (independent replay through the simulator).
        trace = word.counterexample
        assert trace is not None and trace.validated
        simulator = Simulator(build_random_circuit(seed), initial_state=trace.initial_state)
        values = [simulator.step(vector) for vector in trace.inputs]
        assert values[trace.target_frame]["state"] == target
        # The SAT bounded checker must also find the violation (SAT answers
        # on satisfiable instances are cheap even for the naive DPLL).
        sat = SATBoundedChecker(build_random_circuit(seed), max_frames=BOUND).check(prop)
        assert _normalise(sat.status) == "reachable"
        assert sat.trace_inputs is not None


@pytest.mark.parametrize("seed", range(6))
def test_witness_searches_agree(seed):
    prop = Witness("reach_five", Signal("state") == 5)
    word = AssertionChecker(
        build_random_circuit(seed), options=CheckerOptions(max_frames=BOUND)
    ).check(prop)
    bdd = BddSymbolicChecker(build_random_circuit(seed)).check(prop)
    assert _normalise(word.status) == _normalise(bdd.status)
