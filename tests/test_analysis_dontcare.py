"""Tests for don't-care recording and validation (the p10 / p14 flow)."""

import pytest

from repro.analysis import DontCare, DontCareSet, validate_dont_cares
from repro.checker import CheckerOptions, CheckStatus
from repro.netlist import Circuit
from repro.properties import And, Environment, Signal


def build_decoder_circuit():
    """A 2-to-4 decoder: at most one select line is ever high, so any
    condition requiring two lines high simultaneously is a don't-care."""
    circuit = Circuit("decoder")
    sel = circuit.input("sel", 2)
    for index in range(4):
        circuit.output(circuit.eq(sel, index), name="line%d" % index)
    return circuit


def build_counter_circuit(limit=5, width=3):
    circuit = Circuit("counter")
    cnt = circuit.state("cnt", width)
    at_max = circuit.eq(cnt, limit)
    circuit.dff_into(cnt, circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, width)), init_value=0)
    circuit.output(cnt)
    return circuit


# ----------------------------------------------------------------------
# Bookkeeping
# ----------------------------------------------------------------------
def test_dont_care_set_add_and_iterate():
    dc_set = DontCareSet("decoder")
    first = dc_set.add("two_lines", And(Signal("line0") == 1, Signal("line1") == 1))
    dc_set.add("other", Signal("line3") == 2)
    assert len(dc_set) == 2
    assert list(dc_set)[0] is first
    with pytest.raises(ValueError):
        dc_set.add("two_lines", Signal("line0") == 1)


def test_to_assertion_negates_the_condition():
    dont_care = DontCare("bad", Signal("x") == 3)
    assertion = dont_care.to_assertion()
    assert assertion.name == "dc_bad_unreachable"
    assert "x" in assertion.expr.signals()


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_decoder_dont_cares_are_external():
    circuit = build_decoder_circuit()
    dc_set = DontCareSet("decoder")
    dc_set.add("lines_0_and_1", And(Signal("line0") == 1, Signal("line1") == 1))
    dc_set.add("lines_2_and_3", And(Signal("line2") == 1, Signal("line3") == 1))
    verdicts = validate_dont_cares(circuit, dc_set, options=CheckerOptions(max_frames=2))
    assert len(verdicts) == 2
    assert all(verdict.is_external for verdict in verdicts)
    assert all("unreachable" in verdict.summary() for verdict in verdicts)


def test_reachable_condition_is_reported_with_trace():
    circuit = build_counter_circuit()
    dc_set = DontCareSet("counter")
    dc_set.add("counter_hits_three", Signal("cnt") == 3)
    dc_set.add("counter_hits_seven", Signal("cnt") == 7)
    verdicts = {
        verdict.dont_care.name: verdict
        for verdict in validate_dont_cares(circuit, dc_set, options=CheckerOptions(max_frames=8))
    }
    reachable = verdicts["counter_hits_three"]
    unreachable = verdicts["counter_hits_seven"]
    assert reachable.reachable and not reachable.is_external
    assert reachable.result.status is CheckStatus.FAILS
    assert reachable.result.counterexample is not None
    assert "REACHABLE" in reachable.summary()
    assert unreachable.is_external


def test_environment_constraints_participate_in_validation():
    """With a one-hot input environment, driving two request lines at once is
    a don't-care that the environment makes unreachable."""
    circuit = Circuit("pair")
    r0 = circuit.input("r0", 1)
    r1 = circuit.input("r1", 1)
    circuit.output(circuit.and_(r0, r1), name="both")
    dc_set = DontCareSet("pair")
    dc_set.add("both_requests", Signal("both") == 1)

    unconstrained = validate_dont_cares(circuit, dc_set, options=CheckerOptions(max_frames=1))
    assert unconstrained[0].reachable

    environment = Environment().one_hot(["r0", "r1"])
    constrained = validate_dont_cares(
        circuit, dc_set, environment=environment, options=CheckerOptions(max_frames=1)
    )
    assert constrained[0].is_external
