"""Repo-wide RNG hygiene: every random draw must come from a seeded RNG.

ISSUE 2's bugfix audit: the random-simulation checker (and everything else
in the engine stack) must draw from the per-job derived seed everywhere, so
CI batch runs are bit-for-bit reproducible.  These tests enforce the
invariant two ways: a source scan rejecting any module-global :mod:`random`
usage under ``src/``, and an end-to-end determinism check of the batch
runner's JSON report.
"""

import os
import re

from repro.netlist import Circuit
from repro.portfolio import BatchJob, BatchOptions, BatchRunner, EngineBudget
from repro.properties import Assertion, Signal, Witness

SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "src", "repro")

#: module-level random.* draws (as opposed to random.Random instances).
_GLOBAL_RANDOM = re.compile(
    r"\brandom\.(randrange|randint|random|choice|choices|shuffle|sample|"
    r"getrandbits|uniform|seed)\s*\("
)


def test_no_module_global_random_usage_in_src():
    offenders = []
    for root, _dirs, files in os.walk(SRC_ROOT):
        if "__pycache__" in root:
            continue
        for name in files:
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            with open(path) as stream:
                for lineno, line in enumerate(stream, 1):
                    if _GLOBAL_RANDOM.search(line):
                        offenders.append("%s:%d: %s" % (path, lineno, line.strip()))
    assert not offenders, (
        "module-global random.* draws break per-job seed reproducibility:\n"
        + "\n".join(offenders)
    )


def _build_counter():
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", 3)
    at_max = circuit.eq(cnt, 5)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, 3))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


def _run_batch():
    jobs = [
        BatchJob("reach_two", _build_counter(), Witness("reach_two", Signal("cnt") == 2)),
        BatchJob("never_seven", _build_counter(), Assertion("never_seven", Signal("cnt") != 7)),
        BatchJob("reach_four", _build_counter(), Witness("reach_four", Signal("cnt") == 4)),
    ]
    report = BatchRunner(
        BatchOptions(
            engines=("random",),
            budget=EngineBudget(random_runs=8, random_cycles=8, sim_width=4, seed=99),
        )
    ).run(jobs)
    return report


def _stable_view(report):
    """The report minus wall-clock timing noise."""
    view = []
    for item in report.items:
        result = item.result
        view.append(
            (
                item.job_id,
                item.seed,
                result.status.value,
                result.winner,
                tuple(
                    (er.engine, er.status.value, er.stats.get("vectors_simulated"))
                    for er in result.engine_results
                ),
                None
                if result.counterexample is None
                else (
                    result.counterexample.target_frame,
                    tuple(sorted(result.counterexample.inputs[-1].items())),
                ),
            )
        )
    return view


def test_batch_runs_are_bit_for_bit_reproducible():
    first = _run_batch()
    second = _run_batch()
    assert first.base_seed == second.base_seed == 99
    # Per-job derived seeds: base + index.
    assert [item.seed for item in first.items] == [99, 100, 101]
    assert _stable_view(first) == _stable_view(second)
