"""Tests for state hashing, loop detection and trace compaction."""


from repro.atpg.statehash import (
    ExecutionLoop,
    StateHasher,
    find_first_loop,
    find_loops,
    hash_cube_literals,
    loop_free_length,
)
from repro.baselines import RandomSimulationChecker, RandomSimulationOptions
from repro.bitvector.bv3 import bv
from repro.checker import AssertionChecker, CheckerOptions, CheckStatus
from repro.checker.compact import compact_trace
from repro.netlist import Circuit
from repro.properties import Signal, Witness
from repro.simulation import Simulator


def build_counter(limit=3, width=2):
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", width)
    at_max = circuit.eq(cnt, limit)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, width))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


# ----------------------------------------------------------------------
# Hashing
# ----------------------------------------------------------------------
def test_hash_is_order_independent_and_stable():
    hasher = StateHasher()
    a = {"x": 3, "y": 1}
    b = {"y": 1, "x": 3}
    assert hasher.hash_state(a) == hasher.hash_state(b)
    assert hasher.equal(a, b)
    # Stable across hasher instances (no per-process salting).
    assert StateHasher().hash_state(a) == hasher.hash_state(a)


def test_hash_distinguishes_values_and_names():
    hasher = StateHasher()
    assert hasher.hash_state({"x": 1}) != hasher.hash_state({"x": 2})
    assert hasher.hash_state({"x": 1}) != hasher.hash_state({"y": 1})


def test_hash_of_cube_states_includes_unknown_bits():
    hasher = StateHasher()
    known = [("mode", bv("10"))]
    partial = [("mode", bv("1x"))]
    assert hasher.hash_state(known) != hasher.hash_state(partial)
    assert hasher.equal(partial, [("mode", bv("1x"))])


def test_register_filter_restricts_the_snapshot():
    hasher = StateHasher(registers=["cnt"])
    full = {"cnt": 2, "other": 9}
    reduced = {"cnt": 2}
    assert hasher.hash_state(full) == hasher.hash_state(reduced)


def test_hash_values_are_stable_across_processes():
    """Pinned constants: FNV-1a output must not drift between runs or
    machines (the learned-cube stores rely on it for deduplication)."""
    assert StateHasher().hash_state({"cnt": 3, "mode": 1}) == 2589969766604552132
    assert hash_cube_literals(
        [("a", 0, bv("1x")), ("b", -1, bv("01"))]
    ) == 9838414925954797333


def test_cube_literal_fingerprint_is_order_independent():
    forward = [("a", 0, bv("1x")), ("b", -1, bv("01"))]
    backward = list(reversed(forward))
    assert hash_cube_literals(forward) == hash_cube_literals(backward)
    # Frame positions and unknown bits are part of the identity.
    assert hash_cube_literals(forward) != hash_cube_literals(
        [("a", 1, bv("1x")), ("b", -1, bv("01"))]
    )
    assert hash_cube_literals(forward) != hash_cube_literals(
        [("a", 0, bv("11")), ("b", -1, bv("01"))]
    )


# ----------------------------------------------------------------------
# Loop detection
# ----------------------------------------------------------------------
def test_find_first_loop_reports_earliest_revisit():
    states = [{"s": 0}, {"s": 1}, {"s": 2}, {"s": 1}, {"s": 2}]
    loop = find_first_loop(states)
    assert loop == ExecutionLoop(start=1, end=3)
    assert loop.length == 2


def test_find_loops_reports_every_revisit():
    states = [{"s": 0}, {"s": 1}, {"s": 0}, {"s": 1}]
    loops = find_loops(states)
    assert ExecutionLoop(0, 2) in loops
    assert ExecutionLoop(1, 3) in loops


def test_loop_free_sequence():
    states = [{"s": value} for value in range(5)]
    assert find_first_loop(states) is None
    assert find_loops(states) == []
    assert loop_free_length(states) == 5


def test_loop_free_length_stops_at_first_revisit():
    states = [{"s": 0}, {"s": 1}, {"s": 1}, {"s": 2}]
    assert loop_free_length(states) == 2


def _witness_state_sequence(circuit, counterexample):
    """Register snapshots along a witness trace (initial state included)."""
    simulator = Simulator(circuit, initial_state=counterexample.initial_state)
    states = [dict(simulator.register_values())]
    for vector in counterexample.inputs:
        simulator.step(vector)
        states.append(dict(simulator.register_values()))
    return states


def test_atpg_witness_sequence_loop_marks_the_idle_step():
    circuit = build_counter(limit=3, width=2)
    checker = AssertionChecker(circuit, options=CheckerOptions(max_frames=8))
    result = checker.check(Witness("reach_three", Signal("cnt") == 3))
    assert result.status is CheckStatus.WITNESS_FOUND
    states = _witness_state_sequence(circuit, result.counterexample)
    # The x-filled inputs idle once after the counter reaches 3, so the
    # sequence ends in a self-loop -- exactly what loop detection reports.
    assert states == [{"cnt": 0}, {"cnt": 1}, {"cnt": 2}, {"cnt": 3}, {"cnt": 3}]
    assert find_first_loop(states) == ExecutionLoop(start=3, end=4)
    assert loop_free_length(states) == 4


def test_random_witness_sequence_exposes_its_loop():
    circuit = build_counter(limit=3, width=2)
    checker = RandomSimulationChecker(
        circuit,
        options=RandomSimulationOptions(num_runs=32, cycles_per_run=24, seed=9),
    )
    result = checker.check(Witness("reach_three", Signal("cnt") == 3))
    assert result.status is CheckStatus.WITNESS_FOUND
    states = _witness_state_sequence(circuit, result.counterexample)
    # This seed's wandering witness revisits its start state: the loop is
    # exactly what compact_trace removes.
    loop = find_first_loop(states)
    assert loop is not None
    assert loop_free_length(states) == loop.end < len(states)


def test_simulated_counter_loops_at_its_period():
    circuit = build_counter(limit=3, width=2)
    simulator = Simulator(circuit)
    states = []
    for _ in range(10):
        states.append(dict(simulator.register_values()))
        simulator.step({"en": 1})
    loop = find_first_loop(states)
    assert loop is not None
    assert loop.length == 4  # the counter has period 4


# ----------------------------------------------------------------------
# Trace compaction
# ----------------------------------------------------------------------
def test_compaction_shortens_a_wandering_witness():
    circuit = build_counter(limit=3, width=2)
    checker = RandomSimulationChecker(
        circuit,
        options=RandomSimulationOptions(num_runs=32, cycles_per_run=24, seed=9),
    )
    result = checker.check(Witness("reach_three", Signal("cnt") == 3))
    assert result.status is CheckStatus.WITNESS_FOUND
    original = result.counterexample
    # Random stimulus almost surely idles (en=0) somewhere, creating loops.
    compaction = compact_trace(circuit, original)
    compacted = compaction.counterexample
    assert compaction.original_length == original.length
    assert compacted.length <= original.length
    assert compacted.validated
    # The compacted trace still reaches the goal at its final frame.
    simulator = Simulator(circuit, initial_state=compacted.initial_state)
    final = [simulator.step(vector) for vector in compacted.inputs][-1]
    assert final["cnt"] == 3
    # The shortest possible witness takes exactly 4 frames (3 increments, and
    # the monitor is sampled after the state update of the previous frame).
    if compaction.shortened:
        assert compacted.length < original.length


def test_compaction_leaves_minimal_traces_unchanged():
    circuit = build_counter(limit=3, width=2)
    checker = AssertionChecker(circuit, options=CheckerOptions(max_frames=8))
    result = checker.check(Witness("reach_two", Signal("cnt") == 2))
    assert result.status is CheckStatus.WITNESS_FOUND
    compaction = compact_trace(circuit, result.counterexample)
    assert compaction.compacted_length == result.counterexample.length
    assert compaction.loops_removed == 0
