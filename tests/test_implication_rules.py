"""Tests for the per-primitive word-level implication rules."""

import pytest

from repro.bitvector import BV3, BV3Conflict
from repro.bitvector.bv3 import bv
from repro.implication import rules_bool, rules_compare, rules_mux, rules_seq
from repro.implication.rules_arith import (
    imply_adder,
    imply_multiplier,
    imply_shift_const,
    imply_shift_var,
    imply_subtractor,
)


# ----------------------------------------------------------------------
# Boolean / bitwise rules
# ----------------------------------------------------------------------
def test_and_forward_and_backward():
    # Forward: inputs known -> output implied.
    a, b, out = rules_bool.imply_and([bv("1100"), bv("1010"), BV3.unknown(4)])
    assert out == bv("1000")
    # Backward: output 1 forces all inputs to 1.
    a, b, out = rules_bool.imply_and([bv("xxxx"), bv("xxxx"), bv("1xxx")])
    assert a.bit(3) == 1 and b.bit(3) == 1
    # Backward: output 0 with all-but-one input 1 forces the last to 0.
    a, b, out = rules_bool.imply_and([bv("1xxx"), bv("xxxx"), bv("0xxx")])
    assert b.bit(3) == 0


def test_paper_and_example():
    """Section 3.1: a=10xx, b receives 1x1x, y=x00x refines forward/backward."""
    a, b, y = rules_bool.imply_and([bv("10xx"), bv("1x1x"), bv("x00x")])
    assert y.bit(3) == 1  # 1 AND 1
    assert y.bit(2) == 0
    # Backward on a: output bit1 is 0 while b bit1 is 1 -> a bit1 must be 0...
    # (the paper derives a = 100x from y = 100x)
    assert a.bit(1) == 0


def test_and_conflict():
    with pytest.raises(BV3Conflict):
        rules_bool.imply_and([bv("1"), bv("1"), bv("0")])


def test_or_rules():
    a, b, out = rules_bool.imply_or([bv("0x"), bv("xx"), bv("0x")])
    assert b.bit(1) == 0
    with pytest.raises(BV3Conflict):
        rules_bool.imply_or([bv("0"), bv("0"), bv("1")])


def test_xor_rules():
    a, b, out = rules_bool.imply_xor([bv("10"), bv("x1"), bv("0x")])
    assert b.bit(1) == 1
    assert out.bit(0) is not None


def test_nand_nor_xnor():
    _, _, out = rules_bool.imply_nand([bv("11"), bv("11"), BV3.unknown(2)])
    assert out == bv("00")
    _, _, out = rules_bool.imply_nor([bv("00"), bv("00"), BV3.unknown(2)])
    assert out == bv("11")
    _, _, out = rules_bool.imply_xnor([bv("10"), bv("11"), BV3.unknown(2)])
    assert out == bv("10")


def test_not_buf():
    a, out = rules_bool.imply_not([bv("1x0x"), BV3.unknown(4)])
    assert out == bv("0x1x")
    a, out = rules_bool.imply_buf([bv("1xxx"), bv("xx0x")])
    assert a == out == bv("1x0x")


def test_reduction_rules():
    a, out = rules_bool.imply_reduce_or([bv("0000"), BV3.unknown(1)])
    assert out.to_int() == 0
    a, out = rules_bool.imply_reduce_or([bv("xxxx"), bv("0")])
    assert a == bv("0000")
    a, out = rules_bool.imply_reduce_and([bv("xxxx"), bv("1")])
    assert a == bv("1111")
    a, out = rules_bool.imply_reduce_and([bv("111x"), bv("0")])
    assert a.bit(0) == 0
    a, out = rules_bool.imply_reduce_xor([bv("1100"), BV3.unknown(1)])
    assert out.to_int() == 0
    a, out = rules_bool.imply_reduce_xor([bv("110x"), bv("1")])
    assert a.bit(0) == 1
    with pytest.raises(BV3Conflict):
        rules_bool.imply_reduce_or([bv("0000"), bv("1")])


def test_structural_rules():
    (out,) = rules_bool.imply_const(5, [BV3.unknown(4)])
    assert out.to_int() == 5
    a, out = rules_bool.imply_slice(2, 1, [bv("x1x0"), bv("x0")])
    assert a.bit(1) == 0
    assert out == bv("10")
    hi, lo, out = rules_bool.imply_concat([2, 2], [bv("xx"), bv("xx"), bv("10x1")])
    assert hi == bv("10")
    assert lo == bv("x1")
    a, out = rules_bool.imply_zext([bv("xx"), bv("0010")])
    assert a == bv("10")


# ----------------------------------------------------------------------
# Arithmetic rules
# ----------------------------------------------------------------------
def test_adder_rule_with_carry_pins():
    cubes = [bv("1x1x"), BV3.unknown(4), BV3.from_int(1, 0), bv("0111"), BV3.unknown(1)]
    a, b, cin, out, cout = imply_adder(True, True, cubes)
    assert cout.to_int() == 1
    assert b.bit(3) == 1 and b.bit(1) == 0


def test_subtractor_rule():
    a, b, out = imply_subtractor([BV3.unknown(4), BV3.from_int(4, 3), BV3.from_int(4, 6)])
    assert a.to_int() == 9


def test_multiplier_rule_unique_and_conflict():
    # Odd known operand -> unique backward solution.
    a, b, out = imply_multiplier([BV3.from_int(4, 3), BV3.unknown(4), BV3.from_int(4, 9)])
    assert b.to_int() == 3
    # Even operand with incompatible product -> conflict (2*x = 9 impossible).
    with pytest.raises(BV3Conflict):
        imply_multiplier([BV3.from_int(4, 2), BV3.unknown(4), BV3.from_int(4, 9)])
    # Forward with both known.
    _, _, out = imply_multiplier([BV3.from_int(3, 4), BV3.from_int(3, 7), BV3.unknown(4)])
    assert out.to_int() == 12


def test_shift_rules():
    a, out = imply_shift_const("shl", 1, [bv("xx1x"), BV3.unknown(4)])
    assert out.bit(0) == 0
    assert out.bit(2) == 1
    a, out = imply_shift_const("shr", 2, [bv("10xx"), BV3.unknown(4)])
    assert out == bv("0010")
    with pytest.raises(BV3Conflict):
        imply_shift_const("shl", 2, [BV3.unknown(4), bv("xxx1")])
    a, amount, out = imply_shift_var("shl", [bv("0001"), BV3.from_int(2, 2), BV3.unknown(4)])
    assert out == bv("0100")
    a, amount, out = imply_shift_var("shl", [bv("0001"), BV3.unknown(2), BV3.unknown(4)])
    assert out.is_fully_unknown()


# ----------------------------------------------------------------------
# Comparator rules (Fig. 4)
# ----------------------------------------------------------------------
def test_comparator_fig4_example():
    a, b, out = rules_compare.imply_comparator(
        ">", [bv("x01x"), bv("1x0x"), BV3.from_int(1, 1)]
    )
    assert a == bv("101x")
    assert b == bv("100x")


def test_comparator_forward_decisions():
    _, _, out = rules_compare.imply_comparator(
        "<", [BV3.from_int(4, 2), BV3.from_int(4, 9), BV3.unknown(1)]
    )
    assert out.to_int() == 1
    _, _, out = rules_compare.imply_comparator(
        "==", [bv("10xx"), bv("01xx"), BV3.unknown(1)]
    )
    assert out.to_int() == 0  # incompatible cubes can never be equal


def test_comparator_equality_backward():
    a, b, out = rules_compare.imply_comparator(
        "==", [bv("1xx0"), bv("x01x"), BV3.from_int(1, 1)]
    )
    assert a == b == bv("1010")
    with pytest.raises(BV3Conflict):
        rules_compare.imply_comparator(
            "!=", [BV3.from_int(4, 5), BV3.from_int(4, 5), BV3.from_int(1, 1)]
        )


def test_comparator_conflicting_requirement():
    with pytest.raises(BV3Conflict):
        rules_compare.imply_comparator(
            ">", [BV3.from_int(4, 2), BV3.from_int(4, 9), BV3.from_int(1, 1)]
        )


# ----------------------------------------------------------------------
# Multiplexor / tri-state / bus rules
# ----------------------------------------------------------------------
def test_mux_forward_union_and_select_pruning():
    # Unknown select: output is the union of the selectable inputs.
    sel, d0, d1, out = rules_mux.imply_mux(
        2, [BV3.unknown(1), bv("1100"), bv("1010"), BV3.unknown(4)]
    )
    assert out == bv("1xx0")
    # An input incompatible with the output prunes the select value.
    sel, d0, d1, out = rules_mux.imply_mux(
        2, [BV3.unknown(1), bv("0000"), bv("1111"), bv("1xxx")]
    )
    assert sel.to_int() == 1
    assert out == bv("1111")


def test_mux_conflict_when_no_input_fits():
    with pytest.raises(BV3Conflict):
        rules_mux.imply_mux(
            2, [BV3.unknown(1), bv("0000"), bv("0011"), bv("11xx")]
        )


def test_mux_known_select():
    sel, d0, d1, out = rules_mux.imply_mux(
        2, [BV3.from_int(1, 0), bv("x1x1"), bv("0000"), bv("1xxx")]
    )
    assert d0 == bv("11x1") or d0.bit(3) == 1


def test_tristate_and_bus_rules():
    data, enable, out = rules_mux.imply_tristate([bv("xx1x"), BV3.unknown(1), bv("1xxx")])
    assert data == bv("1x1x") and out == bv("1x1x")
    pins = rules_mux.imply_bus(
        2,
        [bv("xxxx"), BV3.from_int(1, 1), bv("0000"), BV3.from_int(1, 0), bv("1010")],
    )
    assert pins[0] == bv("1010")  # the single enabled driver matches the bus
    pins = rules_mux.imply_bus(
        2,
        [bv("xxxx"), BV3.from_int(1, 0), bv("xxxx"), BV3.from_int(1, 0), BV3.unknown(4)],
    )
    assert pins[-1].to_int() == 0  # no driver enabled -> bus reads zero


# ----------------------------------------------------------------------
# Register rule
# ----------------------------------------------------------------------
def test_dff_capture_and_hold_cases():
    # Only capture possible: q_next ties to d.
    pins = rules_seq.imply_dff(False, False, False, 0, [bv("xxxx"), bv("xxxx"), bv("0101")])
    assert pins[0] == bv("0101")
    # Enable present and 0: hold ties q_next to q_prev.
    pins = rules_seq.imply_dff(
        True, False, False, 0,
        [bv("1111"), BV3.from_int(1, 0), bv("00xx"), bv("xx01")],
    )
    assert pins[2] == bv("0001") and pins[3] == bv("0001")


def test_dff_reset_inference_matches_paper():
    """Paper: next value all zeros while the data input has a 1 bit implies
    the asynchronous reset is asserted."""
    pins = rules_seq.imply_dff(
        False, True, False, 0,
        [bv("1xxx"), BV3.unknown(1), bv("xxxx"), bv("0000")],
    )
    reset = pins[1]
    assert reset.to_int() == 1


def test_dff_no_case_conflict():
    with pytest.raises(BV3Conflict):
        rules_seq.imply_dff(
            False, False, False, 0,
            [bv("1111"), bv("0000"), bv("0000")],  # d=15 but q_next must be 0, no reset
        )


def test_dff_multiple_cases_union():
    # Enable unknown: q_next can come from hold or capture -> union of sources.
    pins = rules_seq.imply_dff(
        True, False, False, 0,
        [bv("1100"), BV3.unknown(1), bv("1010"), BV3.unknown(4)],
    )
    q_next = pins[-1]
    assert q_next == bv("1xx0")
