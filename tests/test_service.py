"""Tests for the verification-as-a-service daemon (:mod:`repro.service`).

Four layers:

* golden protocol tests -- every ``repro-service/v1`` message shape
  round-trips through encode/decode, unknown fields survive, newer minor
  protocol revisions are tolerated and other majors rejected;
* daemon integration -- a real supervisor on a unix socket: the second
  submit of the same circuit hits the warm worker (nonzero warm stats) and
  returns a bit-identical verdict + counterexample to the in-process path;
* failure handling -- seeded fault plans (:mod:`repro.faults`) drive worker
  crashes (requeued once then aborted with a typed cause), job timeouts,
  hung-worker watchdog kills and poison-job quarantine;
* resilience plumbing -- client read deadlines, typed fallback semantics
  (in-process only on connection-level failures), idempotent resubmit,
  end-to-end deadline propagation and graceful drain.
"""

import asyncio
import contextlib
import copy
import os
import socket as socket_module
import threading
import time

import pytest

from repro import api, faults
from repro.service import protocol
from repro.service.client import (
    JobFailure,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
    check_via_service,
    service_available,
)
from repro.service.supervisor import ServiceOptions, serve
from repro.service.worker import _clamped_request


@pytest.fixture(autouse=True)
def _unarmed_faults(monkeypatch):
    """Tests arm fault plans explicitly; none may leak between tests."""
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    monkeypatch.delenv(faults.SEED_ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.disarm()
    yield
    faults.disarm()


def arm_plan(monkeypatch, tmp_path, text, seed=0):
    """Arm a fault plan through the environment (workers inherit on fork)."""
    plan = faults.FaultPlan.parse(text, seed=seed)
    state_dir = str(tmp_path / "fault-state")
    for key, value in faults.plan_environment(plan, state_dir).items():
        monkeypatch.setenv(key, value)
    faults._ARMED = None  # force the lazy env re-read in this process too


# ----------------------------------------------------------------------
# Protocol golden tests
# ----------------------------------------------------------------------
GOLDEN_REQUESTS = [
    protocol.request_message("ping"),
    protocol.request_message("submit", request={"circuit": {"kind": "case", "case": "p1"}}),
    protocol.request_message(
        "submit",
        request={"circuit": {"kind": "case", "case": "p1"}},
        submit_key="a1b2c3d4e5f6-0f0e0d0c",
        deadline_seconds=30.0,
    ),
    protocol.request_message("status", job_id="job-1"),
    protocol.request_message("result", job_id="job-1", wait=True, timeout=2.0),
    protocol.request_message("cancel", job_id="job-1"),
    protocol.request_message("stats"),
    protocol.request_message("shutdown"),
    protocol.request_message("shutdown", mode="drain"),
]

GOLDEN_RESPONSES = [
    protocol.ok_response("ping", pid=1234, draining=False),
    protocol.ok_response("ping", protocol=protocol.PROTOCOL, pid=1234,
                         uptime_seconds=12.5, draining=True),
    protocol.ok_response("submit", job_id="job-1", state="queued"),
    protocol.ok_response("submit", job_id="job-1", state="running", deduplicated=True),
    protocol.ok_response("status", job={"job_id": "job-1", "state": "running"}),
    protocol.ok_response("result", job_id="job-1", state="done",
                         report={"schema": "repro-check-report/v1"}),
    protocol.ok_response("result", job_id="job-2", state="failed",
                         error="worker crashed", cause="crash",
                         job={"job_id": "job-2", "state": "failed",
                              "cause": "crash"}),
    protocol.ok_response("cancel", job_id="job-1", state="cancelled"),
    protocol.ok_response("stats", stats={"jobs": {"submitted": 1}, "workers": [],
                                         "resilience": {"retries": 0}}),
    protocol.ok_response("shutdown", stopping=True),
    protocol.ok_response("shutdown", mode="drain", draining=True),
    protocol.error_response("submit", "bad request"),
    protocol.error_response("submit", "daemon is draining", cause="draining"),
    protocol.error_response("submit", "request is quarantined",
                            cause="quarantined", digest="ab" * 32),
    protocol.error_response(None, "unreadable message"),
]


class TestProtocol:
    @pytest.mark.parametrize("message", GOLDEN_REQUESTS + GOLDEN_RESPONSES)
    def test_every_message_round_trips(self, message):
        decoded = protocol.decode(protocol.encode(message))
        assert decoded == dict(message, schema=protocol.PROTOCOL)

    @pytest.mark.parametrize("message", GOLDEN_REQUESTS)
    def test_requests_parse_to_known_verbs(self, message):
        verb, payload = protocol.parse_verb(protocol.decode(protocol.encode(message)))
        assert verb in protocol.VERBS
        assert isinstance(payload, dict)

    def test_unknown_fields_pass_through(self):
        message = protocol.request_message("submit", request={}, x_new_field={"k": 1})
        decoded = protocol.decode(protocol.encode(message))
        assert decoded["x_new_field"] == {"k": 1}

    def test_protocol_is_v1_1_with_ping(self):
        """The ping verb shipped as a minor revision: same major, so v1
        peers interoperate, but the version string records the addition."""
        assert protocol.PROTOCOL == "repro-service/v1.1"
        assert "ping" in protocol.VERBS

    def test_plain_v1_peer_still_accepted(self):
        """Messages tagged by a pre-ping peer (plain ``repro-service/v1``)
        must keep decoding after the minor bump -- same-major tolerance
        works in both directions."""
        message = dict(protocol.request_message("submit", request={}),
                       schema="repro-service/v1")
        decoded = protocol.decode(protocol.encode(message))
        assert protocol.parse_verb(decoded)[0] == "submit"

    def test_newer_minor_protocol_tolerated(self):
        message = dict(protocol.request_message("ping"), schema="repro-service/v1.6")
        decoded = protocol.decode(protocol.encode(message))
        assert protocol.parse_verb(decoded)[0] == "ping"

    def test_other_major_protocol_rejected(self):
        line = protocol.encode(dict(protocol.request_message("ping"),
                                    schema="repro-service/v2"))
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(line)

    def test_missing_schema_tolerated(self):
        message = protocol.request_message("ping")
        del message["schema"]
        assert protocol.decode(protocol.encode(message))["verb"] == "ping"

    def test_non_object_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'"just a string"\n')
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'not json at all\n')

    def test_unknown_verb_rejected_by_parse(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_verb({"verb": "explode"})

    def test_failure_causes_are_stable(self):
        # Clients branch on these strings; renaming one is a protocol break.
        assert set(protocol.FAILURE_CAUSES) >= {
            "timeout", "crash", "watchdog", "quarantined", "draining",
            "job-error", "cancelled", "injected",
        }

    def test_request_digest_is_canonical(self):
        a = {"circuit": {"kind": "case", "case": "p1"}, "seed": 7}
        b = {"seed": 7, "circuit": {"case": "p1", "kind": "case"}}
        assert protocol.request_digest(a) == protocol.request_digest(b)
        assert protocol.request_digest(a) != protocol.request_digest(
            dict(a, seed=8))


# ----------------------------------------------------------------------
# Daemon integration
# ----------------------------------------------------------------------
@contextlib.contextmanager
def running_daemon(tmp_path, **options):
    """A real supervisor on a unix socket in a background thread."""
    socket_path = str(tmp_path / "repro-service.sock")
    thread = threading.Thread(
        target=lambda: asyncio.run(serve(ServiceOptions(socket_path=socket_path,
                                                        **options))),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if os.path.exists(socket_path) and service_available(socket_path):
            break
        time.sleep(0.05)
    else:
        raise RuntimeError("daemon did not come up")
    try:
        yield socket_path
    finally:
        # A connect can land in the backlog of a listener that is already
        # tearing down and never get an answer; keep the cleanup deadlines
        # short so a daemon that shut down on its own costs seconds, not
        # the full read timeout.
        with contextlib.suppress(ServiceError, protocol.ProtocolError):
            with ServiceClient(socket_path, connect_timeout=2.0,
                               read_timeout=5.0) as client:
                client.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "daemon thread failed to shut down"
        assert not os.path.exists(socket_path), "daemon left its socket behind"


def case_request(case_id: str = "p1", **knobs) -> api.CheckRequest:
    return api.CheckRequest(circuit=api.CircuitRef.case(case_id), **knobs)


def normalized(report: api.CheckReport) -> dict:
    """A report dict with everything timing/transport-dependent removed."""
    payload = copy.deepcopy(report.to_dict())
    payload.pop("wall_seconds", None)
    payload.pop("source", None)
    payload.pop("service", None)
    for result in payload.get("results", []):
        result.pop("wall_seconds", None)
        result.pop("stats", None)
        for engine in result.get("engines", []):
            engine.pop("wall_seconds", None)
            engine.pop("stats", None)
    return payload


class TestDaemon:
    def test_second_submit_is_warm_and_bit_identical(self, tmp_path):
        request = case_request("p1")
        baseline = api.check(request)
        with running_daemon(tmp_path) as socket_path:
            first = check_via_service(request, socket_path=socket_path, fallback=False)
            second = check_via_service(request, socket_path=socket_path, fallback=False)

        assert first.source == "daemon"
        assert second.source == "daemon"
        # Warm path: the worker kept its design + unrolled models resident.
        worker = second.service["worker"]
        assert worker["jobs_done"] >= 2
        assert worker["warm_hits"] >= 1
        # The daemon answers with the exact same verdicts and traces as the
        # in-process facade -- callers never need to care which path ran.
        assert normalized(first) == normalized(baseline)
        assert normalized(second) == normalized(baseline)
        assert second.results[0].trace == baseline.results[0].trace

    def test_stats_verb_and_kb_block_shape(self, tmp_path):
        kb_path = str(tmp_path / "service-kb.sqlite")
        request = case_request("p1", kb_path=kb_path)
        with running_daemon(tmp_path) as socket_path:
            check_via_service(request, socket_path=socket_path, fallback=False)
            with ServiceClient(socket_path) as client:
                stats = client.stats()

        assert stats["protocol"] == protocol.PROTOCOL
        assert stats["jobs"]["submitted"] == 1
        assert stats["jobs"]["completed"] == 1
        assert len(stats["workers"]) == 1
        worker = stats["workers"][0]
        assert worker["alive"]
        assert worker["jobs_done"] == 1
        assert isinstance(worker.get("pid"), int)
        # The worker's kb blocks reuse the exact `repro kb stats --json`
        # shape -- one schema for knowledge-base stats everywhere.
        assert worker["kb"], "kb-attached job should surface a kb stats block"
        assert set(worker["kb"][0]) >= {"path", "disabled", "schema_version",
                                        "models", "cubes", "fail_memos",
                                        "hits", "per_model"}
        # The resilience block rides on the same stats payload.
        resilience = stats["resilience"]
        assert resilience["draining"] is False
        for counter in ("retries", "requeued", "quarantined",
                        "watchdog_kills", "timeouts", "degradations"):
            assert resilience[counter] == 0

    def test_status_and_result_verbs(self, tmp_path):
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                response = client.result(job_id, wait=True)
                status = client.status(job_id)
        assert response["state"] == "done"
        assert response["report"]["schema"] == api.REPORT_SCHEMA
        assert status["state"] == "done"
        assert status["job_id"] == job_id

    def test_unknown_job_and_bad_submit_are_protocol_errors(self, tmp_path):
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                with pytest.raises(ServiceError):
                    client.status("job-999")
                with pytest.raises(ServiceError):
                    client.submit({"schema": api.REQUEST_SCHEMA})  # no circuit
                # The connection survives errors: the next call still works.
                assert client.ping()["pid"] == os.getpid()

    def test_idempotent_resubmit_collapses_onto_one_job(self, tmp_path):
        request = case_request("p1")
        payload = request.to_dict()
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                first = client.submit(payload, submit_key="retry-key-1")
                # A retry of the same logical submit (response lost) reuses
                # the key and must land on the same job...
                second = client.submit(payload, submit_key="retry-key-1")
                # ...while a fresh logical submit gets a fresh job.
                third = client.submit(payload)
                client.result(first, wait=True)
                client.result(third, wait=True)
                stats = client.stats()
        assert first == second
        assert third != first
        assert stats["jobs"]["submitted"] == 2
        assert stats["resilience"]["retries"] == 1


# ----------------------------------------------------------------------
# Failure handling (seeded fault plans)
# ----------------------------------------------------------------------
class TestFailureHandling:
    def test_worker_crash_is_requeued_once_then_succeeds(
            self, tmp_path, monkeypatch):
        # nth=1 with a shared state dir: the respawned worker must NOT
        # re-fire the crash (the hit counter survives the process death).
        arm_plan(monkeypatch, tmp_path, "worker.run:crash:nth=1")
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                response = client.result(job_id, wait=True)
                stats = client.stats()
        assert response["state"] == "done", response.get("error")
        assert stats["jobs"]["requeued"] == 1
        assert stats["jobs"]["completed"] == 1
        assert stats["resilience"]["requeued"] == 1
        # Verdict survives the crash-and-requeue bit-identically.
        report = api.CheckReport.from_dict(response["report"])
        assert normalized(report) == normalized(api.check(request))

    def test_persistent_crash_aborts_with_typed_cause(
            self, tmp_path, monkeypatch):
        arm_plan(monkeypatch, tmp_path, "worker.run:crash:exit_code=21")
        request = case_request("p1")
        with running_daemon(tmp_path, quarantine_limit=99) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                response = client.result(job_id, wait=True)
        assert response["state"] == "failed"
        assert response["cause"] == "crash"
        assert "21" in response["error"]
        assert "requeue limit" in response["error"]

    def test_job_timeout_aborts_with_typed_cause(self, tmp_path, monkeypatch):
        arm_plan(monkeypatch, tmp_path, "worker.run:sleep:seconds=30")
        request = case_request("p1")
        with running_daemon(tmp_path, job_timeout=1.0) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                response = client.result(job_id, wait=True)
                stats = client.stats()
        assert response["state"] == "failed"
        assert response["cause"] == "timeout"
        assert stats["resilience"]["timeouts"] == 1

    def test_hung_worker_is_shot_by_watchdog_not_job_timeout(
            self, tmp_path, monkeypatch):
        # A hang (no result AND no heartbeats) must trip the watchdog even
        # though no job timeout is configured at all.
        arm_plan(monkeypatch, tmp_path, "worker.run:hang")
        request = case_request("p1")
        with running_daemon(tmp_path, hang_timeout=1.5,
                            heartbeat_interval=0.2,
                            quarantine_limit=99) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                response = client.result(job_id, wait=True)
                stats = client.stats()
        assert response["state"] == "failed"
        assert response["cause"] == "watchdog"
        assert "heartbeat" in response["error"]
        assert stats["resilience"]["watchdog_kills"] == 1

    def test_slow_job_with_heartbeats_is_not_shot(self, tmp_path, monkeypatch):
        # The inverse of the watchdog test: a *slow* job (sleep fault) keeps
        # heartbeating, so a hang_timeout shorter than the job must not kill
        # it -- the watchdog distinguishes wedged from busy.
        arm_plan(monkeypatch, tmp_path, "worker.run:sleep:seconds=2")
        request = case_request("p1")
        with running_daemon(tmp_path, hang_timeout=1.0,
                            heartbeat_interval=0.2) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                response = client.result(job_id, wait=True)
        assert response["state"] == "done", response.get("error")

    def test_poison_job_is_quarantined_and_refused(self, tmp_path, monkeypatch):
        arm_plan(monkeypatch, tmp_path, "worker.run:crash")
        request = case_request("p1")
        with running_daemon(tmp_path, quarantine_limit=2,
                            requeue_limit=5) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                response = client.result(job_id, wait=True)
                # The digest is now poison: resubmitting it is refused
                # outright instead of burning more workers.
                with pytest.raises(JobFailure) as excinfo:
                    client.submit(request)
                stats = client.stats()
        assert response["state"] == "failed"
        assert response["cause"] == "quarantined"
        assert excinfo.value.cause == "quarantined"
        assert stats["resilience"]["quarantined"] == 1
        assert stats["resilience"]["quarantined_digests"]

    def test_injected_dispatch_fault_is_typed(self, tmp_path, monkeypatch):
        # supervisor.dispatch error faults surface as typed responses, and
        # the daemon survives them (the next verb works).  Armed only once
        # the daemon is up, so the readiness ping does not consume a hit.
        with running_daemon(tmp_path) as socket_path:
            arm_plan(monkeypatch, tmp_path, "supervisor.dispatch:error:nth=2")
            with ServiceClient(socket_path) as client:
                client.ping()  # hit 1: clean
                with pytest.raises(JobFailure) as excinfo:
                    client.ping()  # hit 2: injected
                assert client.ping()  # hit 3: clean again
        assert excinfo.value.cause == "injected"

    def test_faults_are_inert_unless_armed(self, tmp_path):
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                response = client.result(job_id, wait=True)
        assert response["state"] == "done"


# ----------------------------------------------------------------------
# Client resilience plumbing
# ----------------------------------------------------------------------
class TestClientResilience:
    def test_wedged_daemon_surfaces_as_typed_timeout(self, tmp_path):
        """A daemon that accepts but never answers must not block forever."""
        socket_path = str(tmp_path / "wedged.sock")
        server = socket_module.socket(socket_module.AF_UNIX,
                                      socket_module.SOCK_STREAM)
        server.bind(socket_path)
        server.listen(1)
        accepted = []
        thread = threading.Thread(
            target=lambda: accepted.append(server.accept()), daemon=True)
        thread.start()
        try:
            client = ServiceClient(socket_path, read_timeout=0.3)
            started = time.monotonic()
            with pytest.raises(ServiceTimeout):
                client.ping()
            assert time.monotonic() - started < 5.0
        finally:
            server.close()
            for conn, _ in accepted:
                conn.close()

    def test_connect_retries_with_backoff_then_unavailable(self, tmp_path):
        socket_path = str(tmp_path / "nobody-home.sock")
        policy = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05)
        client = ServiceClient(socket_path, retry=policy)
        started = time.monotonic()
        with pytest.raises(ServiceUnavailable):
            client.connect_with_retry()
        # Two backoff sleeps happened (attempts 1->2->3), but tiny ones.
        assert 0.005 < time.monotonic() - started < 5.0

    def test_fallback_when_no_daemon(self, tmp_path):
        request = case_request("p1")
        socket_path = str(tmp_path / "nobody-home.sock")
        report = check_via_service(request, socket_path=socket_path, fallback=True)
        assert report.source == "in-process"
        assert normalized(report) == normalized(api.check(request))
        with pytest.raises(ServiceUnavailable):
            check_via_service(request, socket_path=socket_path, fallback=False)

    def test_daemon_side_failure_propagates_despite_fallback(
            self, tmp_path, monkeypatch):
        """Satellite #2: a failed job must NOT silently re-run locally."""
        arm_plan(monkeypatch, tmp_path, "worker.run:crash")
        request = case_request("p1")
        with running_daemon(tmp_path, quarantine_limit=99) as socket_path:
            with pytest.raises(JobFailure) as excinfo:
                check_via_service(request, socket_path=socket_path,
                                  fallback=True)
        assert excinfo.value.cause == "crash"
        assert excinfo.value.state == "failed"

    def test_injected_connect_fault_falls_back(self, tmp_path, monkeypatch):
        # client.connect drop-connection faults look like nobody listening,
        # which IS the one condition the in-process fallback covers.
        arm_plan(monkeypatch, tmp_path, "client.connect:drop-connection")
        request = case_request("p1")
        report = check_via_service(
            request, socket_path=str(tmp_path / "unused.sock"), fallback=True)
        assert report.source == "in-process"

    def test_fallback_respects_deadline(self, tmp_path, monkeypatch):
        """Regression: the in-process fallback must clamp the engine time
        budget to --deadline exactly like the daemon path does worker-side.
        Pinned by a fault plan dropping every connection, so the fallback
        is guaranteed to run."""
        arm_plan(monkeypatch, tmp_path, "client.connect:drop-connection")
        seen = {}
        real_check = api.check

        def spy(request, **kwargs):
            seen["time_budget"] = request.time_budget
            return real_check(request, **kwargs)

        monkeypatch.setattr(api, "check", spy)
        report = check_via_service(
            case_request("p1"), socket_path=str(tmp_path / "unused.sock"),
            fallback=True, deadline=4.5)
        assert report.source == "in-process"
        assert seen["time_budget"] == 4.5

        # An already-tighter engine budget survives a looser deadline.
        seen.clear()
        report = check_via_service(
            case_request("p1", time_budget=0.5),
            socket_path=str(tmp_path / "unused.sock"),
            fallback=True, deadline=60.0)
        assert report.source == "in-process"
        assert seen["time_budget"] == 0.5

    def test_dropped_connection_is_retried_and_job_survives(
            self, tmp_path, monkeypatch):
        # One injected mid-conversation drop on the first recv: the client
        # reconnects (same daemon, same job id server-side) and the check
        # still returns the daemon's bit-identical report.
        request = case_request("p1")
        baseline = api.check(request)
        with running_daemon(tmp_path) as socket_path:
            # Hit 1 is the submit's response read; hit 2 is the first
            # result poll, which is where the drop lands.
            arm_plan(monkeypatch, tmp_path, "client.recv:drop-connection:nth=2")
            report = check_via_service(request, socket_path=socket_path,
                                       fallback=False)
        assert report.source == "daemon"
        assert normalized(report) == normalized(baseline)

    def test_inline_circuit_cannot_be_submitted(self, tmp_path):
        from repro.netlist import Circuit
        from repro.properties import Assertion, Signal

        circuit = Circuit("inline")
        a = circuit.input("a", 4)
        circuit.output(a, name="out")
        request = api.build_request(circuit, Assertion("ok", Signal("out") != 99))
        socket_path = str(tmp_path / "nobody-home.sock")
        # Graceful: falls back in-process rather than failing the caller.
        report = check_via_service(request, socket_path=socket_path, fallback=True)
        assert report.source == "in-process"
        with pytest.raises(ServiceError):
            check_via_service(request, socket_path=socket_path, fallback=False)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_deadline_fails_typed_before_dispatch(self, tmp_path):
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request, deadline=0.0)
                response = client.result(job_id, wait=True)
        assert response["state"] == "failed"
        assert response["cause"] == "timeout"
        assert "deadline" in response["error"]

    def test_generous_deadline_still_completes(self, tmp_path):
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            report = check_via_service(request, socket_path=socket_path,
                                       fallback=False, deadline=120.0)
        assert report.source == "daemon"
        # A deadline routes through the budgeted portfolio path, whose
        # result rows carry plain-string statuses.
        status = report.results[0].status
        status = getattr(status, "value", status)
        assert status in ("fails", "holds", "witness_found", "witness_not_found")

    def test_deadline_clamps_engine_budget(self):
        request = case_request("p1")
        assert _clamped_request(request, None).time_budget is None
        assert _clamped_request(request, 5.0).time_budget == 5.0
        tight = api.CheckRequest(circuit=api.CircuitRef.case("p1"),
                                 time_budget=2.0)
        assert _clamped_request(tight, 5.0).time_budget == 2.0
        assert _clamped_request(tight, 0.5).time_budget == 0.5

    def test_exhaust_budget_fault_collapses_the_budget(
            self, tmp_path, monkeypatch):
        arm_plan(monkeypatch, tmp_path, "worker.budget:exhaust-budget")
        request = case_request("p1")
        clamped = _clamped_request(request, None)
        assert clamped.time_budget == 0.001


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_finishes_in_flight_and_refuses_new_submits(
            self, tmp_path, monkeypatch):
        # The in-flight job is slowed by a sleep fault so the drain verb
        # demonstrably arrives while it is still running.
        arm_plan(monkeypatch, tmp_path, "worker.run:sleep:seconds=1.5:nth=1")
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                reply = client.shutdown(mode="drain")
                assert reply["draining"] is True
                # New work is refused with the typed draining cause...
                with pytest.raises(JobFailure) as excinfo:
                    client.submit(case_request("p2"))
                assert excinfo.value.cause == "draining"
                # ...while the in-flight job runs to a real verdict.
                response = client.result(job_id, wait=True)
                assert response["state"] == "done", response.get("error")
        # running_daemon's exit asserts the thread stopped and the socket
        # is gone -- the drain completed the shutdown on its own.

    def test_drain_with_idle_daemon_stops_immediately(self, tmp_path):
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                reply = client.shutdown(mode="drain")
                assert reply["draining"] is True
        # Exit-time asserts in running_daemon cover the clean stop.
