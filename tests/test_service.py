"""Tests for the verification-as-a-service daemon (:mod:`repro.service`).

Three layers:

* golden protocol tests -- every ``repro-service/v1`` message shape
  round-trips through encode/decode, unknown fields survive, newer minor
  protocol revisions are tolerated and other majors rejected;
* daemon integration -- a real supervisor on a unix socket: the second
  submit of the same circuit hits the warm worker (nonzero warm stats) and
  returns a bit-identical verdict + counterexample to the in-process path;
* failure handling -- worker crashes are requeued once then aborted with a
  cause, job timeouts abort, and a missing daemon falls back in-process.
"""

import asyncio
import contextlib
import copy
import os
import threading
import time

import pytest

from repro import api
from repro.service import protocol
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    check_via_service,
    service_available,
)
from repro.service.supervisor import ServiceOptions, serve
from repro.service.worker import FAULTS_ENV


# ----------------------------------------------------------------------
# Protocol golden tests
# ----------------------------------------------------------------------
GOLDEN_REQUESTS = [
    protocol.request_message("ping"),
    protocol.request_message("submit", request={"circuit": {"kind": "case", "case": "p1"}}),
    protocol.request_message("status", job_id="job-1"),
    protocol.request_message("result", job_id="job-1", wait=True, timeout=2.0),
    protocol.request_message("cancel", job_id="job-1"),
    protocol.request_message("stats"),
    protocol.request_message("shutdown"),
]

GOLDEN_RESPONSES = [
    protocol.ok_response("ping", pid=1234),
    protocol.ok_response("submit", job_id="job-1", state="queued"),
    protocol.ok_response("status", job={"job_id": "job-1", "state": "running"}),
    protocol.ok_response("result", job_id="job-1", state="done",
                         report={"schema": "repro-check-report/v1"}),
    protocol.ok_response("cancel", job_id="job-1", state="cancelled"),
    protocol.ok_response("stats", stats={"jobs": {"submitted": 1}, "workers": []}),
    protocol.ok_response("shutdown", stopping=True),
    protocol.error_response("submit", "bad request"),
    protocol.error_response(None, "unreadable message"),
]


class TestProtocol:
    @pytest.mark.parametrize("message", GOLDEN_REQUESTS + GOLDEN_RESPONSES)
    def test_every_message_round_trips(self, message):
        decoded = protocol.decode(protocol.encode(message))
        assert decoded == dict(message, schema=protocol.PROTOCOL)

    @pytest.mark.parametrize("message", GOLDEN_REQUESTS)
    def test_requests_parse_to_known_verbs(self, message):
        verb, payload = protocol.parse_verb(protocol.decode(protocol.encode(message)))
        assert verb in protocol.VERBS
        assert isinstance(payload, dict)

    def test_unknown_fields_pass_through(self):
        message = protocol.request_message("submit", request={}, x_test_fault={"kind": "crash"})
        decoded = protocol.decode(protocol.encode(message))
        assert decoded["x_test_fault"] == {"kind": "crash"}

    def test_newer_minor_protocol_tolerated(self):
        message = dict(protocol.request_message("ping"), schema="repro-service/v1.6")
        decoded = protocol.decode(protocol.encode(message))
        assert protocol.parse_verb(decoded)[0] == "ping"

    def test_other_major_protocol_rejected(self):
        line = protocol.encode(dict(protocol.request_message("ping"),
                                    schema="repro-service/v2"))
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(line)

    def test_missing_schema_tolerated(self):
        message = protocol.request_message("ping")
        del message["schema"]
        assert protocol.decode(protocol.encode(message))["verb"] == "ping"

    def test_non_object_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'"just a string"\n')
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'not json at all\n')

    def test_unknown_verb_rejected_by_parse(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_verb({"verb": "explode"})


# ----------------------------------------------------------------------
# Daemon integration
# ----------------------------------------------------------------------
@contextlib.contextmanager
def running_daemon(tmp_path, **options):
    """A real supervisor on a unix socket in a background thread."""
    socket_path = str(tmp_path / "repro-service.sock")
    thread = threading.Thread(
        target=lambda: asyncio.run(serve(ServiceOptions(socket_path=socket_path,
                                                        **options))),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if os.path.exists(socket_path) and service_available(socket_path):
            break
        time.sleep(0.05)
    else:
        raise RuntimeError("daemon did not come up")
    try:
        yield socket_path
    finally:
        with contextlib.suppress(ServiceError, protocol.ProtocolError):
            with ServiceClient(socket_path) as client:
                client.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "daemon thread failed to shut down"
        assert not os.path.exists(socket_path), "daemon left its socket behind"


def case_request(case_id: str = "p1", **knobs) -> api.CheckRequest:
    return api.CheckRequest(circuit=api.CircuitRef.case(case_id), **knobs)


def normalized(report: api.CheckReport) -> dict:
    """A report dict with everything timing/transport-dependent removed."""
    payload = copy.deepcopy(report.to_dict())
    payload.pop("wall_seconds", None)
    payload.pop("source", None)
    payload.pop("service", None)
    for result in payload.get("results", []):
        result.pop("wall_seconds", None)
        result.pop("stats", None)
        for engine in result.get("engines", []):
            engine.pop("wall_seconds", None)
            engine.pop("stats", None)
    return payload


class TestDaemon:
    def test_second_submit_is_warm_and_bit_identical(self, tmp_path):
        request = case_request("p1")
        baseline = api.check(request)
        with running_daemon(tmp_path) as socket_path:
            first = check_via_service(request, socket_path=socket_path, fallback=False)
            second = check_via_service(request, socket_path=socket_path, fallback=False)

        assert first.source == "daemon"
        assert second.source == "daemon"
        # Warm path: the worker kept its design + unrolled models resident.
        worker = second.service["worker"]
        assert worker["jobs_done"] >= 2
        assert worker["warm_hits"] >= 1
        # The daemon answers with the exact same verdicts and traces as the
        # in-process facade -- callers never need to care which path ran.
        assert normalized(first) == normalized(baseline)
        assert normalized(second) == normalized(baseline)
        assert second.results[0].trace == baseline.results[0].trace

    def test_stats_verb_and_kb_block_shape(self, tmp_path):
        kb_path = str(tmp_path / "service-kb.sqlite")
        request = case_request("p1", kb_path=kb_path)
        with running_daemon(tmp_path) as socket_path:
            check_via_service(request, socket_path=socket_path, fallback=False)
            with ServiceClient(socket_path) as client:
                stats = client.stats()

        assert stats["protocol"] == protocol.PROTOCOL
        assert stats["jobs"]["submitted"] == 1
        assert stats["jobs"]["completed"] == 1
        assert len(stats["workers"]) == 1
        worker = stats["workers"][0]
        assert worker["alive"]
        assert worker["jobs_done"] == 1
        # The worker's kb blocks reuse the exact `repro kb stats --json`
        # shape -- one schema for knowledge-base stats everywhere.
        assert worker["kb"], "kb-attached job should surface a kb stats block"
        assert set(worker["kb"][0]) >= {"path", "disabled", "schema_version",
                                        "models", "cubes", "fail_memos",
                                        "hits", "per_model"}

    def test_status_and_result_verbs(self, tmp_path):
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request)
                response = client.result(job_id, wait=True)
                status = client.status(job_id)
        assert response["state"] == "done"
        assert response["report"]["schema"] == api.REPORT_SCHEMA
        assert status["state"] == "done"
        assert status["job_id"] == job_id

    def test_unknown_job_and_bad_submit_are_protocol_errors(self, tmp_path):
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                with pytest.raises(ServiceError):
                    client.status("job-999")
                with pytest.raises(ServiceError):
                    client.submit({"schema": api.REQUEST_SCHEMA})  # no circuit
                # The connection survives errors: the next call still works.
                assert client.ping()["pid"] == os.getpid()


class TestFailureHandling:
    def test_worker_crash_is_requeued_once_then_succeeds(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "1")
        marker = str(tmp_path / "crash-once.marker")
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(
                    request, x_test_fault={"kind": "crash-once", "marker": marker}
                )
                response = client.result(job_id, wait=True)
                stats = client.stats()
        assert os.path.exists(marker), "fault should have fired on the first attempt"
        assert response["state"] == "done", response.get("error")
        assert stats["jobs"]["requeued"] == 1
        assert stats["jobs"]["completed"] == 1

    def test_persistent_crash_aborts_with_cause(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "1")
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request, x_test_fault={"kind": "crash"})
                response = client.result(job_id, wait=True)
        assert response["state"] == "failed"
        assert "crashed" in response["error"]
        assert "requeue limit" in response["error"]

    def test_job_timeout_aborts(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "1")
        request = case_request("p1")
        with running_daemon(tmp_path, job_timeout=1.0) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(
                    request, x_test_fault={"kind": "sleep", "seconds": 30}
                )
                response = client.result(job_id, wait=True)
        assert response["state"] == "failed"
        assert "timeout" in response["error"]

    def test_faults_are_inert_unless_armed(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        request = case_request("p1")
        with running_daemon(tmp_path) as socket_path:
            with ServiceClient(socket_path) as client:
                job_id = client.submit(request, x_test_fault={"kind": "crash"})
                response = client.result(job_id, wait=True)
        assert response["state"] == "done"

    def test_fallback_when_no_daemon(self, tmp_path):
        request = case_request("p1")
        socket_path = str(tmp_path / "nobody-home.sock")
        report = check_via_service(request, socket_path=socket_path, fallback=True)
        assert report.source == "in-process"
        assert normalized(report) == normalized(api.check(request))
        with pytest.raises(ServiceUnavailable):
            check_via_service(request, socket_path=socket_path, fallback=False)

    def test_inline_circuit_cannot_be_submitted(self, tmp_path):
        from repro.netlist import Circuit
        from repro.properties import Assertion, Signal

        circuit = Circuit("inline")
        a = circuit.input("a", 4)
        circuit.output(a, name="out")
        request = api.build_request(circuit, Assertion("ok", Signal("out") != 99))
        socket_path = str(tmp_path / "nobody-home.sock")
        # Graceful: falls back in-process rather than failing the caller.
        report = check_via_service(request, socket_path=socket_path, fallback=True)
        assert report.source == "in-process"
        with pytest.raises(ServiceError):
            check_via_service(request, socket_path=socket_path, fallback=False)
