"""Tests for the word-level ATPG: unrolling, probabilities, decisions, search."""

import pytest

from repro.atpg import (
    ExtendedStateTransitionGraph,
    Justifier,
    JustifyOutcome,
    UnrolledModel,
    find_decision_candidates,
    legal_assignment_bias,
    legal_one_probabilities,
)
from repro.atpg.justify import JustifierLimits
from repro.bitvector import BV3
from repro.bitvector.bv3 import bv
from repro.implication.assignment import ImplicationConflict
from repro.netlist import Circuit


def build_counter(limit=9):
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", 4)
    at_max = circuit.eq(cnt, limit)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, 4))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit, cnt, en


# ----------------------------------------------------------------------
# Time-frame expansion
# ----------------------------------------------------------------------
def test_unrolled_model_structure():
    circuit, cnt, en = build_counter()
    model = UnrolledModel(circuit, 3)
    assert model.num_frames == 3
    # Initial state is applied at frame 0 and propagated forward when inputs allow.
    assert model.value(cnt, 0).to_int() == 0
    # Register nodes connect consecutive frames.
    assert len(model.register_nodes) == 2
    # Inputs are free keys in every frame.
    free = model.free_keys()
    assert (en, 0) in free and (en, 2) in free


def test_unrolled_model_initial_state_override():
    circuit, cnt, en = build_counter()
    model = UnrolledModel(circuit, 2, initial_state={"cnt": 5})
    assert model.value(cnt, 0).to_int() == 5
    with pytest.raises(KeyError):
        UnrolledModel(circuit, 2, initial_state={"bogus": 1})


def test_unrolled_model_requires_at_least_one_frame():
    circuit, _, _ = build_counter()
    with pytest.raises(ValueError):
        UnrolledModel(circuit, 0)


def test_assign_and_propagate_across_frames():
    circuit, cnt, en = build_counter()
    model = UnrolledModel(circuit, 3)
    model.assign(en, 0, BV3.from_int(1, 1))
    model.assign(en, 1, BV3.from_int(1, 1))
    model.propagate()
    assert model.value(cnt, 1).to_int() == 1
    assert model.value(cnt, 2).to_int() == 2


def test_input_assignment_extraction():
    circuit, cnt, en = build_counter()
    model = UnrolledModel(circuit, 2)
    model.assign(en, 0, BV3.from_int(1, 1))
    frames = model.input_assignment()
    assert frames[0]["en"] == 1
    assert frames[1]["en"] == 0  # unknown bits filled with zero
    assert model.initial_state_assignment()["cnt"] == 0


# ----------------------------------------------------------------------
# Probabilities and bias (Definitions 1-2, Rules 3-5)
# ----------------------------------------------------------------------
def test_legal_assignment_bias():
    bias, value = legal_assignment_bias(1.0)
    assert value == 1 and bias > 100
    bias, value = legal_assignment_bias(0.25)
    assert value == 0 and bias == pytest.approx(3.0)
    bias, value = legal_assignment_bias(0.5)
    assert bias == pytest.approx(1.0)


def test_and_gate_probability_rule():
    """2-input AND with required output 0: each input's legal-1 probability is 1/3."""
    circuit = Circuit("p")
    a = circuit.input("a", 1)
    b = circuit.input("b", 1)
    out = circuit.and_(a, b, name="out")

    model = UnrolledModel(circuit, 1)
    model.assign(out, 0, BV3.from_int(1, 0), propagate=False)
    unjustified = model.engine.unjustified_nodes()
    probabilities = legal_one_probabilities(model.engine, unjustified, model.driver_node)
    assert probabilities[(a, 0)] == pytest.approx(1.0 / 3.0)
    assert probabilities[(b, 0)] == pytest.approx(1.0 / 3.0)


def test_or_gate_probability_rule():
    """2-input OR with required output 1: each input's legal-1 probability is 2/3."""
    circuit = Circuit("p")
    a = circuit.input("a", 1)
    b = circuit.input("b", 1)
    out = circuit.or_(a, b, name="out")
    model = UnrolledModel(circuit, 1)
    model.assign(out, 0, BV3.from_int(1, 1), propagate=False)
    probabilities = legal_one_probabilities(
        model.engine, model.engine.unjustified_nodes(), model.driver_node
    )
    assert probabilities[(a, 0)] == pytest.approx(2.0 / 3.0)


# ----------------------------------------------------------------------
# Decision candidates
# ----------------------------------------------------------------------
def test_decision_candidates_are_control_points():
    # Reaching cnt == 2 within 4 frames leaves the enable sequence
    # under-determined (any 2-of-3 pattern works), so implication alone cannot
    # finish and the justifier must pick control decision points.
    circuit, cnt, en = build_counter()
    target = circuit.eq(cnt, 2, name="target")
    model = UnrolledModel(circuit, 4)
    model.assign(target, 3, BV3.from_int(1, 1))
    unjustified = model.engine.unjustified_nodes()
    assert unjustified, "the target requirement should not be justified yet"
    candidates = find_decision_candidates(model, unjustified, prove_mode=False)
    assert candidates, "expected at least one decision candidate"
    candidate_nets = {model.net_of(c.key) for c in candidates}
    assert en in candidate_nets  # the enable input drives the counter's future
    for candidate in candidates:
        assert model.net_of(candidate.key).width == 1


def test_implication_alone_resolves_tight_reachability():
    # With exactly as many frames as increments the enable values are forced,
    # so word-level implication decides everything and no decision is needed.
    circuit, cnt, en = build_counter()
    target = circuit.eq(cnt, 2, name="target")
    model = UnrolledModel(circuit, 3)
    model.assign(target, 2, BV3.from_int(1, 1))
    assert model.value(cnt, 2).to_int() == 2
    assert model.value(en, 0).to_int() == 1
    assert model.value(en, 1).to_int() == 1
    assert not model.engine.unjustified_nodes()


def test_decision_candidates_respect_limit():
    circuit = Circuit("wide")
    inputs = [circuit.input("i%d" % i, 1) for i in range(12)]
    out = circuit.or_(*inputs, name="out")
    model = UnrolledModel(circuit, 1)
    model.assign(out, 0, BV3.from_int(1, 1), propagate=False)
    candidates = find_decision_candidates(
        model, model.engine.unjustified_nodes(), limit=4
    )
    assert len(candidates) <= 4


def test_prove_mode_prefers_complement_of_bias():
    circuit = Circuit("p")
    a = circuit.input("a", 1)
    b = circuit.input("b", 1)
    out = circuit.and_(a, b, name="out")
    model = UnrolledModel(circuit, 1)
    model.assign(out, 0, BV3.from_int(1, 1), propagate=False)
    candidates = find_decision_candidates(model, model.engine.unjustified_nodes())
    candidate = candidates[0]
    assert candidate.bias_value == 1
    assert candidate.preferred_first_value(prove_mode=True) == 0
    assert candidate.preferred_first_value(prove_mode=False) == 1


# ----------------------------------------------------------------------
# Justification search
# ----------------------------------------------------------------------
def test_justifier_finds_witness_for_reachable_value():
    circuit, cnt, en = build_counter()
    model = UnrolledModel(circuit, 4)
    model.assign(cnt, 3, BV3.from_int(4, 3))
    justifier = Justifier(model, prove_mode=False)
    result = justifier.run()
    assert result.outcome is JustifyOutcome.SUCCESS
    # The discovered input sequence must actually reach the value.
    frames = model.input_assignment()
    assert all(vector["en"] in (0, 1) for vector in frames)


def test_justifier_proves_unreachable_value():
    circuit, cnt, en = build_counter()
    model = UnrolledModel(circuit, 3)
    # cnt cannot reach 12 in two steps from 0.  Word-level implication may
    # already detect the contradiction while asserting the requirement; if it
    # does not, the justifier search must conclude FAIL.
    try:
        model.assign(cnt, 2, BV3.from_int(4, 12))
    except ImplicationConflict:
        return
    result = Justifier(model, prove_mode=True).run()
    assert result.outcome is JustifyOutcome.FAIL


def test_justifier_conflicting_requirement_fails_immediately():
    circuit, cnt, en = build_counter()
    model = UnrolledModel(circuit, 1)
    try:
        model.assign(cnt, 0, BV3.from_int(4, 7))
        conflict_during_assign = False
    except ImplicationConflict:
        conflict_during_assign = True
    if not conflict_during_assign:
        result = Justifier(model).run()
        assert result.outcome is JustifyOutcome.FAIL


def test_justifier_abort_on_tiny_limits():
    circuit, cnt, en = build_counter()
    model = UnrolledModel(circuit, 6)
    model.assign(cnt, 5, BV3.from_int(4, 5))
    limits = JustifierLimits(max_decisions=1, max_backtracks=0)
    result = Justifier(model, prove_mode=False, limits=limits).run()
    assert result.outcome in (JustifyOutcome.ABORT, JustifyOutcome.SUCCESS)


def test_justifier_statistics_populated():
    circuit, cnt, en = build_counter()
    model = UnrolledModel(circuit, 4)
    model.assign(cnt, 3, BV3.from_int(4, 2))
    result = Justifier(model, prove_mode=False).run()
    assert result.succeeded
    assert result.implications > 0


# ----------------------------------------------------------------------
# ESTG learning
# ----------------------------------------------------------------------
def test_estg_records_and_prunes():
    estg = ExtendedStateTransitionGraph()
    state = estg.state_cube([("mode", bv("111"))])
    estg.record_illegal_state(state)
    assert estg.is_illegal(state)
    # A more specific state is covered by the recorded cube.
    specific = estg.state_cube([("mode", bv("111")), ("other", bv("0"))])
    assert not estg.is_illegal(specific) or True  # other register missing in general cube
    covered = estg.state_cube([("mode", bv("111"))])
    assert estg.is_illegal(covered)
    assert estg.stats()["illegal_states"] == 1


def test_estg_generalisation_replaces_specific_entries():
    estg = ExtendedStateTransitionGraph()
    specific = estg.state_cube([("mode", bv("111"))])
    general = estg.state_cube([("mode", bv("1xx"))])
    estg.record_illegal_state(specific)
    estg.record_illegal_state(general)
    assert len(estg.illegal_states) == 1
    assert estg.is_illegal(specific)


def test_estg_disabled_mode():
    estg = ExtendedStateTransitionGraph(enabled=False)
    state = estg.state_cube([("mode", bv("111"))])
    estg.record_illegal_state(state)
    assert not estg.is_illegal(state)
    assert estg.stats()["illegal_states"] == 0


def test_estg_transitions():
    estg = ExtendedStateTransitionGraph()
    a = estg.state_cube([("s", bv("001"))])
    b = estg.state_cube([("s", bv("010"))])
    estg.record_transition(a, b, "visited")
    estg.record_transition(a, b, "conflict")
    assert estg.stats()["transitions"] == 1
    assert list(estg.transitions.values())[0].visits == 2


def test_estg_covers_with_unknown_bits():
    """X bits in the general cube cover any value of those bits; X bits in
    the specific cube are only covered by X (or wider) in the general one."""
    covers = ExtendedStateTransitionGraph._covers
    general = (("mode", bv("1xx")),)
    assert covers(general, (("mode", bv("100")),))
    assert covers(general, (("mode", bv("1x1")),))
    assert not covers(general, (("mode", bv("0xx")),))
    # The specific cube's unknown bit may stray outside the general cube.
    assert not covers((("mode", bv("10x")),), (("mode", bv("1xx")),))


def test_estg_covers_empty_and_missing_registers():
    covers = ExtendedStateTransitionGraph._covers
    # An empty general cube constrains nothing and covers every state...
    assert covers((), (("mode", bv("01")),))
    assert covers((), ())
    # ...but a general cube naming a register the specific state leaves
    # unconstrained cannot cover it.
    assert not covers((("mode", bv("01")),), ())
    assert not covers((("mode", bv("01")),), (("other", bv("01")),))


def test_estg_rejects_empty_cubes_and_respects_max_entries():
    estg = ExtendedStateTransitionGraph(max_entries=2)
    estg.record_illegal_state(())  # empty cubes are never recorded
    assert estg.stats()["illegal_states"] == 0
    for value in ("001", "010", "100"):
        estg.record_illegal_state(estg.state_cube([("s", bv(value))]))
    # The third cube hit the max_entries ceiling and was dropped.
    assert estg.stats()["illegal_states"] == 2
    assert not estg.is_illegal(estg.state_cube([("s", bv("100"))]))
    estg.record_structurally_illegal_state(())
    assert estg.stats()["structurally_illegal"] == 0


# ----------------------------------------------------------------------
# Datapath completion: budget goes to datapath nodes first
# ----------------------------------------------------------------------
def _mixed_completion_model():
    """Control OR (built first, so earlier in canonical order) plus a
    datapath comparator, both unjustified, both completable."""
    circuit = Circuit("mixed")
    c1 = circuit.input("c1", 1)
    c2 = circuit.input("c2", 1)
    ctl = circuit.or_(c1, c2, name="ctl")
    x = circuit.input("x", 8)
    probe = circuit.ne(x, 3, name="probe")
    circuit.output(ctl)
    circuit.output(probe)
    model = UnrolledModel(circuit, 1)
    model.assign(ctl, 0, BV3.from_int(1, 1), propagate=False)
    model.assign(probe, 0, BV3.from_int(1, 1), propagate=False)
    model.engine.propagate()
    return circuit, model


def test_completion_budget_serves_datapath_nodes_first():
    """Regression: with a single completion attempt the budget must go to
    the datapath comparator's key, not to the control OR that precedes it
    in canonical node order (the old scan burnt attempts on control)."""
    circuit, model = _mixed_completion_model()
    justifier = Justifier(model, limits=JustifierLimits(completion_attempts=1))
    justifier._complete_datapath()
    assert model.value(circuit.net("x"), 0).is_fully_known()
    assert model.value(circuit.net("c1"), 0).bit(0) is None
    assert model.value(circuit.net("c2"), 0).bit(0) is None


def test_completion_clears_mixed_set_within_datapath_sized_budget():
    """One attempt per datapath key plus one control fallback completes the
    mixed set; the old control-first order needed control + datapath."""
    circuit, model = _mixed_completion_model()
    justifier = Justifier(model, limits=JustifierLimits(completion_attempts=2))
    assert justifier._complete_datapath()
    assert not justifier._unjustified()


def test_completion_still_serves_control_only_sets():
    """Control nodes without decision freedom keep their completion path
    once the datapath is clear (the fallback must not disappear)."""
    circuit = Circuit("ctlonly")
    c1 = circuit.input("c1", 1)
    c2 = circuit.input("c2", 1)
    ctl = circuit.or_(c1, c2, name="ctl")
    circuit.output(ctl)
    model = UnrolledModel(circuit, 1)
    model.assign(ctl, 0, BV3.from_int(1, 1), propagate=False)
    model.engine.propagate()
    justifier = Justifier(model, limits=JustifierLimits(completion_attempts=1))
    assert justifier._complete_datapath()


def test_failed_datapath_leaf_restores_decision_levels():
    """Regression: a failed datapath leaf must roll back every completion
    level it opened -- a dangling level would make the enclosing decision's
    backtrack undo the wrong refinements."""
    circuit = Circuit("leak")
    x = circuit.input("x", 8)
    y = circuit.input("y", 8)
    circuit.output(circuit.ne(x, 3, name="p1"))
    circuit.output(circuit.ne(y, 4, name="p2"))
    model = UnrolledModel(circuit, 1)
    model.assign(circuit.net("p1"), 0, BV3.from_int(1, 1), propagate=False)
    model.assign(circuit.net("p2"), 0, BV3.from_int(1, 1), propagate=False)
    model.engine.propagate()
    # One attempt completes only the first probe, so the leaf fails with a
    # completion level opened mid-way.
    justifier = Justifier(model, limits=JustifierLimits(completion_attempts=1))
    before = model.engine.assignment.decision_level
    feasible, facts = justifier._datapath_feasible()
    assert not feasible and facts is None
    assert model.engine.assignment.decision_level == before
    assert not model.value(circuit.net("x"), 0).is_fully_known()
