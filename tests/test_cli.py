"""Tests for the command-line interface (``python -m repro``)."""

import json

import pytest

from repro.cli import main

COUNTER_VERILOG = """
module counter(input clk, input rst, input en, output [3:0] count);
  reg [3:0] count;
  always @(posedge clk) begin
    if (rst)
      count <= 0;
    else if (en) begin
      if (count == 9)
        count <= 0;
      else
        count <= count + 1;
    end
  end
endmodule
"""

DECODER_VERILOG = """
module decoder(input [1:0] sel, output [3:0] line);
  wire [3:0] line;
  assign line = 1 << sel;
endmodule
"""


@pytest.fixture()
def counter_file(tmp_path):
    path = tmp_path / "counter.v"
    path.write_text(COUNTER_VERILOG)
    return str(path)


@pytest.fixture()
def decoder_file(tmp_path):
    path = tmp_path / "decoder.v"
    path.write_text(DECODER_VERILOG)
    return str(path)


# ----------------------------------------------------------------------
# stats / analyze
# ----------------------------------------------------------------------
def test_stats_command_prints_table1_row(counter_file, capsys):
    assert main(["stats", counter_file]) == 0
    out = capsys.readouterr().out
    assert "ckt name" in out
    assert "counter" in out
    assert "partition:" in out


def test_analyze_command_reports_counter(counter_file, capsys):
    assert main(["analyze", counter_file]) == 0
    out = capsys.readouterr().out
    assert "recognised modules" in out
    assert "counter count" in out
    assert "local FSM count" in out
    assert "unreachable" in out  # values 10..15 are never reached


# ----------------------------------------------------------------------
# check
# ----------------------------------------------------------------------
def test_check_command_holding_assertion(counter_file, capsys):
    exit_code = main(
        [
            "check",
            counter_file,
            "--pin",
            "rst=0",
            "--assert",
            "no_overflow=count != 12",
            "--max-frames",
            "6",
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "no_overflow" in out
    assert "holds" in out


def test_check_command_failing_assertion_sets_exit_code(counter_file, capsys, tmp_path):
    vcd_path = tmp_path / "trace.vcd"
    exit_code = main(
        [
            "check",
            counter_file,
            "--pin",
            "rst=0",
            "--assert",
            "never_three=count != 3",
            "--max-frames",
            "8",
            "--vcd",
            str(vcd_path),
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "fails" in out
    assert vcd_path.exists()
    assert "$enddefinitions" in vcd_path.read_text()


def test_check_command_witness_and_json(counter_file, capsys):
    exit_code = main(
        [
            "check",
            counter_file,
            "--pin",
            "rst=0",
            "--witness",
            "reach_two=count == 2",
            "--json",
            "--max-frames",
            "6",
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    decoded = json.loads(out)
    assert decoded[0]["property"] == "reach_two"
    assert decoded[0]["status"] == "witness_found"
    assert decoded[0]["trace"]["length"] >= 3


def test_check_command_one_hot_environment(decoder_file, capsys):
    exit_code = main(
        [
            "check",
            decoder_file,
            "--assert",
            "sel_small=sel <= 3",
            "--max-frames",
            "1",
        ]
    )
    assert exit_code == 0
    assert "holds" in capsys.readouterr().out


def test_check_requires_a_property(counter_file):
    with pytest.raises(SystemExit):
        main(["check", counter_file])


def test_check_rejects_bad_expression(counter_file):
    with pytest.raises(SystemExit):
        main(["check", counter_file, "--assert", "count ==="])


def test_check_rejects_bad_pin(counter_file):
    with pytest.raises(SystemExit):
        main(["check", counter_file, "--assert", "count != 3", "--pin", "rst"])


# ----------------------------------------------------------------------
# paper tables
# ----------------------------------------------------------------------
def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "addr_decoder" in out
    assert "industy_01" in out or "industry_01" in out


def test_table2_command_subset(capsys):
    assert main(["table2", "--cases", "p1,p2"]) == 0
    out = capsys.readouterr().out
    assert "p1" in out and "p2" in out
    assert "ok" in out


# ----------------------------------------------------------------------
# check --engines / --sim-width (the portfolio path)
# ----------------------------------------------------------------------
def test_check_random_engine_with_sim_width(counter_file, capsys):
    exit_code = main(
        [
            "check",
            counter_file,
            "--pin",
            "rst=0",
            "--pin",
            "en=1",
            "--witness",
            "reach_two=count == 2",
            "--engines",
            "random",
            "--sim-width",
            "16",
            "--seed",
            "3",
            "--json",
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    decoded = json.loads(out)
    result = decoded["results"][0]
    assert result["status"] == "witness_found"
    engine = result["engines"][0]
    assert engine["engine"] == "random"
    assert engine["stats"]["sim_width"] == 16
    assert engine["stats"]["backend"] == "bitparallel"


def test_check_rejects_bad_sim_width(counter_file):
    with pytest.raises(SystemExit):
        main(
            [
                "check",
                counter_file,
                "--assert",
                "count <= 9",
                "--engines",
                "random",
                "--sim-width",
                "0",
            ]
        )
