"""Persistent knowledge base (PR 6): cross-process reuse of learned facts.

The contract under test is the prune-only soundness guarantee extended
across process boundaries: a warm run primed from a knowledge-base store
must produce verdicts and counterexamples bit-identical to a cold run,
while actually consuming the persisted facts (``kb_cubes_loaded`` /
``kb_hits``).  Failure paths (corrupt stores, newer schema versions) must
fail *open*: the check proceeds as if no store were given.
"""

import json
import os
import shutil
import sqlite3
import subprocess
import sys

import pytest

import repro
from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.incremental import UnrolledModelCache
from repro.circuits import build_case
from repro.kb import SCHEMA_VERSION, KnowledgeBase

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Sweeps a zoo case in a fresh interpreter and dumps per-bound results as
#: JSON.  argv: ``case_id kb_path_or_dash``.  Run via ``subprocess`` so the
#: knowledge base is genuinely crossing a process boundary, not just a
#: cache boundary.
_SWEEP_SCRIPT = """\
import json, sys
from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.incremental import UnrolledModelCache
from repro.circuits import build_case

case_id, kb_arg = sys.argv[1], sys.argv[2]
case = build_case(case_id)
# Sweep a little past the case's nominal bound: the deeper frames are where
# conflict-heavy searches learn most of their cubes.
depth = case.max_frames + 3
checker = AssertionChecker(
    case.circuit,
    environment=case.environment,
    initial_state=case.initial_state,
    options=CheckerOptions(
        max_frames=depth,
        incremental=True,
        learning=True,
        kb_path=None if kb_arg == "-" else kb_arg,
        trace_memory=False,
    ),
    model_cache=UnrolledModelCache(),
)
payload = []
for bound in range(1, depth + 1):
    result = checker.check(case.prop, max_frames=bound)
    cex = result.counterexample
    payload.append({
        "status": result.status.value,
        "frames": result.frames_explored,
        "cex": None if cex is None else {
            "initial_state": cex.initial_state,
            "inputs": cex.inputs,
            "target_frame": cex.target_frame,
        },
        "decisions": result.statistics.decisions,
        "kb_cubes_loaded": result.statistics.kb_cubes_loaded,
        "kb_hits": result.statistics.kb_hits,
    })
print(json.dumps(payload))
"""


def _run_sweep_process(case_id, kb_arg):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env.pop("REPRO_KB", None)
    proc = subprocess.run(
        [sys.executable, "-c", _SWEEP_SCRIPT, case_id, kb_arg],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def _verdicts(payload):
    return [(row["status"], row["frames"], row["cex"]) for row in payload]


# ----------------------------------------------------------------------
# Tentpole: cross-process round trip, verdicts bit-identical to cold
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_id", ["p5", "p15"])
def test_cross_process_roundtrip_is_prune_only(case_id, tmp_path):
    kb_path = str(tmp_path / "facts.db")
    cold = _run_sweep_process(case_id, kb_path)
    warm = _run_sweep_process(case_id, kb_path)
    bare = _run_sweep_process(case_id, "-")

    # The second process consumed facts the first one persisted...
    assert sum(row["kb_cubes_loaded"] for row in warm) > 0
    assert sum(row["kb_hits"] for row in warm) > 0
    assert sum(row["decisions"] for row in warm) < sum(
        row["decisions"] for row in cold
    )
    # ...and the first process, starting empty, consumed none.
    assert sum(row["kb_cubes_loaded"] for row in cold) == 0

    # Prune-only: every verdict and counterexample is bit-identical to a
    # run that never saw a knowledge base.
    assert _verdicts(warm) == _verdicts(bare)
    assert _verdicts(cold) == _verdicts(bare)


def test_cross_process_roundtrip_via_cli(tmp_path):
    design = tmp_path / "counter.v"
    design.write_text(
        "module counter(clk, rst, en, count);\n"
        "  input clk, rst, en;\n"
        "  output [3:0] count;\n"
        "  reg [3:0] count;\n"
        "  always @(posedge clk) begin\n"
        "    if (rst) count <= 4'd0;\n"
        "    else if (en) begin\n"
        "      if (count == 4'd9) count <= 4'd0;\n"
        "      else count <= count + 4'd1;\n"
        "    end\n"
        "  end\n"
        "endmodule\n"
    )
    kb_path = str(tmp_path / "facts.db")

    def run_check(*extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env.pop("REPRO_KB", None)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check", str(design),
             "--assert", "safe=count < 10", "--max-frames", "6", "--json",
             *extra],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout)[0]

    cold = run_check("--kb", kb_path)
    warm = run_check("--kb", kb_path)
    bare = run_check("--no-kb", "--kb", kb_path)

    assert cold["status"] == warm["status"] == bare["status"] == "holds"
    assert warm["kb_hits"] > 0
    assert warm["decisions"] == 0 and bare["decisions"] > 0
    assert bare["kb_hits"] == 0  # --no-kb really disables the store

    # `repro kb stats --json` sees what the runs persisted.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "kb", "stats", kb_path, "--json"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    stats = json.loads(proc.stdout)
    assert stats["schema_version"] == SCHEMA_VERSION
    assert stats["models"] == 1
    assert stats["fail_memos"] > 0


# ----------------------------------------------------------------------
# Failure paths fail open
# ----------------------------------------------------------------------
def _check_case_with_kb(kb_path):
    case = build_case("p5")
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(
            max_frames=case.max_frames,
            kb_path=kb_path,
            trace_memory=False,
        ),
        model_cache=UnrolledModelCache(),
    )
    return checker.check(case.prop)


def test_corrupt_store_fails_open(tmp_path):
    kb_path = tmp_path / "corrupt.db"
    kb_path.write_bytes(b"this is definitely not a sqlite database\x00\xff" * 8)
    store = KnowledgeBase(str(kb_path))
    try:
        assert store.disabled
        assert store.disabled_reason
        assert store.stats()["disabled"]
    finally:
        store.close()
    # The checker still runs and decides the property normally.
    case = build_case("p5")
    result = _check_case_with_kb(str(kb_path))
    assert result.status is case.expected_status
    assert result.statistics.kb_cubes_loaded == 0


def test_truncated_store_fails_open(tmp_path):
    kb_path = tmp_path / "facts.db"
    _run_sweep_process("p5", str(kb_path))
    whole = kb_path.read_bytes()
    kb_path.write_bytes(whole[: len(whole) // 3])
    result = _check_case_with_kb(str(kb_path))
    assert result.status is build_case("p5").expected_status


def test_newer_schema_version_fails_open(tmp_path):
    kb_path = str(tmp_path / "future.db")
    KnowledgeBase(kb_path).close()  # creates a valid v-current store
    conn = sqlite3.connect(kb_path)
    conn.execute(
        "UPDATE kb_meta SET value = ? WHERE key = 'schema_version'",
        (str(SCHEMA_VERSION + 1),),
    )
    conn.commit()
    conn.close()
    store = KnowledgeBase(kb_path)
    try:
        assert store.disabled
        assert "newer" in (store.disabled_reason or "")
        # A disabled handle never writes.
        assert store.flush_attached() == 0
    finally:
        store.close()
    result = _check_case_with_kb(kb_path)
    assert result.status is build_case("p5").expected_status


# ----------------------------------------------------------------------
# Merge semantics: union cubes, max hits, add-only memos, idempotent
# ----------------------------------------------------------------------
def test_merge_is_idempotent_union(tmp_path):
    source_path = str(tmp_path / "source.db")
    _run_sweep_process("p5", source_path)
    _run_sweep_process("p5", source_path)  # record some hits
    copy_path = str(tmp_path / "copy.db")
    shutil.copy(source_path, copy_path)

    source = KnowledgeBase(source_path)
    reference = source.stats()
    assert reference["cubes"] > 0 and reference["fail_memos"] > 0

    dest = KnowledgeBase(str(tmp_path / "dest.db"))
    copy = KnowledgeBase(copy_path)
    try:
        dest.merge_from(source)
        dest.merge_from(copy)
        dest.merge_from(source)  # idempotent: same facts, no duplication
        merged = dest.stats()
        assert merged["models"] == reference["models"]
        assert merged["cubes"] == reference["cubes"]
        assert merged["fail_memos"] == reference["fail_memos"]
        # Hit counters take the max across stores, never the sum.
        assert merged["hits"] == reference["hits"]
    finally:
        source.close()
        copy.close()
        dest.close()


def test_merge_many_multi_source_idempotent(tmp_path):
    """One ``merge_many`` call equals sequential ``merge_from`` calls, and
    replaying it changes nothing (merge twice == merge once)."""
    path_a = str(tmp_path / "a.db")
    path_b = str(tmp_path / "b.db")
    _run_sweep_process("p5", path_a)
    _run_sweep_process("p2", path_b)

    source_a = KnowledgeBase(path_a)
    source_b = KnowledgeBase(path_b)
    dest = KnowledgeBase(str(tmp_path / "dest.db"))
    sequential = KnowledgeBase(str(tmp_path / "sequential.db"))
    try:
        assert source_a.stats()["models"] > 0
        assert source_b.stats()["models"] > 0

        once = dest.merge_many([source_a, source_b])
        assert once["sources"] == 2
        after_once = dest.stats()
        assert after_once["models"] > 0

        twice = dest.merge_many([source_a, source_b])
        assert twice["sources"] == 2  # rows re-read, but nothing changes:
        assert dest.stats() == after_once

        sequential.merge_from(source_a)
        sequential.merge_from(source_b)
        for key in ("models", "cubes", "fail_memos", "hits"):
            assert sequential.stats()[key] == after_once[key]
    finally:
        source_a.close()
        source_b.close()
        dest.close()
        sequential.close()


def test_merge_many_is_a_single_transaction(tmp_path):
    """N sources cost one BEGIN IMMEDIATE, not one per source."""
    path_a = str(tmp_path / "a.db")
    path_b = str(tmp_path / "b.db")
    _run_sweep_process("p5", path_a)
    _run_sweep_process("p2", path_b)
    source_a = KnowledgeBase(path_a)
    source_b = KnowledgeBase(path_b)
    dest = KnowledgeBase(str(tmp_path / "dest.db"))
    statements = []
    try:
        dest._conn.set_trace_callback(statements.append)
        dest.merge_many([source_a, source_b])
        dest._conn.set_trace_callback(None)
    finally:
        source_a.close()
        source_b.close()
        dest.close()
    assert sum("BEGIN IMMEDIATE" in s for s in statements) == 1
    assert sum("COMMIT" in s for s in statements) == 1


def test_merge_many_skips_self_and_disabled(tmp_path):
    path_a = str(tmp_path / "a.db")
    _run_sweep_process("p5", path_a)
    source = KnowledgeBase(path_a)

    broken_path = tmp_path / "broken.db"
    broken_path.write_bytes(b"this is not sqlite at all" * 64)
    broken = KnowledgeBase(str(broken_path))

    dest = KnowledgeBase(str(tmp_path / "dest.db"))
    try:
        assert broken.disabled
        merged = dest.merge_many([dest, broken, source])
        # Only the one readable, distinct source contributed.
        assert merged["sources"] == 1
        assert dest.stats()["models"] == source.stats()["models"]
    finally:
        source.close()
        broken.close()
        dest.close()


def test_prune_keeps_hottest_cubes_per_model(tmp_path):
    kb_path = str(tmp_path / "facts.db")
    _run_sweep_process("p5", kb_path)
    _run_sweep_process("p5", kb_path)
    store = KnowledgeBase(kb_path)
    try:
        before = store.stats()
        assert before["cubes"] > 2
        removed = store.prune(keep=2)
        after = store.stats()
        assert removed == before["cubes"] - after["cubes"]
        assert all(row["cubes"] <= 2 for row in after["per_model"])
        # Memos are never pruned.
        assert after["fail_memos"] == before["fail_memos"]
    finally:
        store.close()


# ----------------------------------------------------------------------
# Batch workers: concurrent flushes commute
# ----------------------------------------------------------------------
def test_batch_workers_flush_concurrently(tmp_path):
    from repro.portfolio import BatchJob, BatchOptions, BatchRunner, EngineBudget

    kb_path = str(tmp_path / "batch.db")

    def run_batch():
        # Fresh circuit objects per run: nothing is shared in-process, so
        # the second run can only get facts from the store.
        cases = [build_case(case_id) for case_id in ("p5", "p12", "p15")]
        jobs = [
            BatchJob(case_id, case.circuit, case.prop,
                     environment=case.environment,
                     initial_state=case.initial_state)
            for case_id, case in zip(("p5", "p12", "p15"), cases)
        ]
        report = BatchRunner(
            BatchOptions(
                engines=("atpg",),
                budget=EngineBudget(max_frames=max(c.max_frames for c in cases)),
                jobs=2,
                kb_path=kb_path,
            )
        ).run(jobs)
        statuses = [item.result.status.value for item in report.items]
        kb_hits = sum(
            (engine_result.stats or {}).get("kb_hits", 0)
            for item in report.items
            for engine_result in item.result.engine_results
        )
        return statuses, kb_hits

    cold_statuses, _ = run_batch()
    warm_statuses, warm_hits = run_batch()
    assert warm_statuses == cold_statuses
    assert warm_hits > 0
    store = KnowledgeBase(kb_path)
    try:
        stats = store.stats()
        assert not stats["disabled"]
        assert stats["models"] == 3
        assert stats["fail_memos"] > 0
    finally:
        store.close()
