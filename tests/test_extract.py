"""Tests for datapath constraint extraction into the arithmetic solver."""


from repro.atpg.timeframe import UnrolledModel
from repro.bitvector import BV3
from repro.modsolver.extract import DatapathConstraintExtractor
from repro.netlist import Circuit


def test_extract_adder_constraint_and_solve():
    circuit = Circuit("adders")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    total = circuit.add(a, b, name="total")
    circuit.output(total)

    model = UnrolledModel(circuit, 1)
    model.assign(total, 0, BV3.from_int(4, 11))
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    assert not problem.is_empty()
    assert 4 in problem.linear_by_width
    solution = problem.solve()
    assert solution is not None
    assert (solution[(a, 0)] + solution[(b, 0)]) % 16 == 11


def test_extract_respects_known_operands():
    circuit = Circuit("adders")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    total = circuit.add(a, b, name="total")

    model = UnrolledModel(circuit, 1)
    model.assign(total, 0, BV3.from_int(4, 5), propagate=False)
    model.assign(a, 0, BV3.from_int(4, 2), propagate=False)
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    solution = problem.solve()
    if solution and (b, 0) in solution:
        assert solution[(b, 0)] == 3


def test_extract_subtractor_and_constant_multiplier():
    circuit = Circuit("linear")
    a = circuit.input("a", 4)
    scaled = circuit.mul(a, 3, name="scaled")
    diff = circuit.sub(scaled, a, name="diff")
    circuit.output(diff)

    model = UnrolledModel(circuit, 1)
    model.assign(diff, 0, BV3.from_int(4, 6))
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    solution = problem.solve()
    assert solution is not None
    value = solution.get((a, 0))
    if value is not None:
        assert ((3 * value) - value) % 16 == 6


def test_extract_nonlinear_multiplier():
    circuit = Circuit("mul")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    product = circuit.mul(a, b, name="product")
    circuit.output(product)

    model = UnrolledModel(circuit, 1)
    model.assign(product, 0, BV3.from_int(4, 12), propagate=False)
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    assert problem.nonlinear
    solution = problem.solve()
    assert solution is not None
    a_val = solution.get((a, 0), 0)
    b_val = solution.get((b, 0), 0)
    assert (a_val * b_val) % 16 == 12


def test_extract_shift_constraints():
    circuit = Circuit("shifts")
    a = circuit.input("a", 4)
    shifted = circuit.shl(a, 1, name="shifted")
    circuit.output(shifted)

    model = UnrolledModel(circuit, 1)
    model.assign(shifted, 0, BV3.from_int(4, 6), propagate=False)
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    solution = problem.solve()
    assert solution is not None
    value = solution.get((a, 0))
    if value is not None:
        assert (value << 1) % 16 == 6


def test_empty_extraction():
    circuit = Circuit("empty")
    a = circuit.input("a", 4)
    circuit.output(circuit.and_(a, 3))
    model = UnrolledModel(circuit, 1)
    problem = DatapathConstraintExtractor(model.engine).extract([])
    assert problem.is_empty()
    assert problem.variables() == []
    assert problem.solve() == {}
