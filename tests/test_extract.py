"""Tests for datapath constraint extraction into the arithmetic solver."""


from repro.atpg.timeframe import UnrolledModel
from repro.bitvector import BV3
from repro.bitvector.bv3 import bv
from repro.modsolver.extract import ArithmeticProblem, DatapathConstraintExtractor
from repro.modsolver.linear import ModularLinearSystem
from repro.modsolver.result import Infeasible, Solution, Unknown
from repro.netlist import Circuit


def test_extract_adder_constraint_and_solve():
    circuit = Circuit("adders")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    total = circuit.add(a, b, name="total")
    circuit.output(total)

    model = UnrolledModel(circuit, 1)
    model.assign(total, 0, BV3.from_int(4, 11))
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    assert not problem.is_empty()
    assert 4 in problem.linear_by_width
    result = problem.solve()
    assert isinstance(result, Solution)
    solution = result.assignment
    assert (solution[(a, 0)] + solution[(b, 0)]) % 16 == 11


def test_extract_respects_known_operands():
    circuit = Circuit("adders")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    total = circuit.add(a, b, name="total")

    model = UnrolledModel(circuit, 1)
    model.assign(total, 0, BV3.from_int(4, 5), propagate=False)
    model.assign(a, 0, BV3.from_int(4, 2), propagate=False)
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    result = problem.solve()
    if isinstance(result, Solution) and (b, 0) in result.assignment:
        assert result.assignment[(b, 0)] == 3


def test_extract_subtractor_and_constant_multiplier():
    circuit = Circuit("linear")
    a = circuit.input("a", 4)
    scaled = circuit.mul(a, 3, name="scaled")
    diff = circuit.sub(scaled, a, name="diff")
    circuit.output(diff)

    model = UnrolledModel(circuit, 1)
    model.assign(diff, 0, BV3.from_int(4, 6))
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    result = problem.solve()
    assert isinstance(result, Solution)
    value = result.assignment.get((a, 0))
    if value is not None:
        assert ((3 * value) - value) % 16 == 6


def test_extract_nonlinear_multiplier():
    circuit = Circuit("mul")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    product = circuit.mul(a, b, name="product")
    circuit.output(product)

    model = UnrolledModel(circuit, 1)
    model.assign(product, 0, BV3.from_int(4, 12), propagate=False)
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    assert problem.nonlinear
    result = problem.solve()
    assert isinstance(result, Solution)
    a_val = result.assignment.get((a, 0), 0)
    b_val = result.assignment.get((b, 0), 0)
    assert (a_val * b_val) % 16 == 12


def test_extract_shift_constraints():
    circuit = Circuit("shifts")
    a = circuit.input("a", 4)
    shifted = circuit.shl(a, 1, name="shifted")
    circuit.output(shifted)

    model = UnrolledModel(circuit, 1)
    model.assign(shifted, 0, BV3.from_int(4, 6), propagate=False)
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    result = problem.solve()
    assert isinstance(result, Solution)
    value = result.assignment.get((a, 0))
    if value is not None:
        assert (value << 1) % 16 == 6


def test_empty_extraction():
    circuit = Circuit("empty")
    a = circuit.input("a", 4)
    circuit.output(circuit.and_(a, 3))
    model = UnrolledModel(circuit, 1)
    problem = DatapathConstraintExtractor(model.engine).extract([])
    assert problem.is_empty()
    assert problem.variables() == []
    assert problem.solve() == Solution({})


# ----------------------------------------------------------------------
# Typed results: certificates, budget exhaustion and cube completions
# ----------------------------------------------------------------------
def test_extracted_infeasibility_carries_engine_keys():
    """The p15 shape: three adders whose implied outputs are mutually
    contradictory.  The certificate core must name the keys whose implied
    values produced the clash, so conflict analysis can walk their trails."""
    circuit = Circuit("cross")
    x = circuit.input("x", 8)
    y = circuit.input("y", 8)
    shifted = circuit.add(y, 4, name="shifted")          # w = y + 4
    direct = circuit.add(x, y, name="direct")            # d = x + y
    cross = circuit.add(x, shifted, name="cross")        # e = x + w = d + 4

    model = UnrolledModel(circuit, 1)
    model.assign(direct, 0, BV3.from_int(8, 7), propagate=False)
    model.assign(cross, 0, BV3.from_int(8, 9), propagate=False)  # gap 2 != 4
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    result = problem.solve()
    assert isinstance(result, Infeasible)
    assert not result
    assert {(direct, 0), (cross, 0)} <= set(result.core)


def test_budget_exhausted_problem_answers_unknown():
    """A non-linear group that cannot finish within budget=1 must answer
    Unknown -- the result the justifier treats as prune-only."""
    circuit = Circuit("mul")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    product = circuit.mul(a, b, name="product")
    total = circuit.add(a, b, name="total")
    circuit.output(product)

    model = UnrolledModel(circuit, 1)
    model.assign(product, 0, BV3.from_int(4, 6), propagate=False)
    model.assign(total, 0, BV3.from_int(4, 0), propagate=False)
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    assert problem.nonlinear
    result = problem.solve(budget=1)
    assert isinstance(result, Unknown)


def test_partial_cube_retry_explores_both_completions():
    """Regression (satellite): a system satisfiable only at a violating
    variable's max_value() must be solved on the first violation -- the old
    retry pinned min on even attempts and never revisited the choice."""
    problem = ArithmeticProblem()
    system = ModularLinearSystem(4)
    system.add_constraint({"x": 2}, 14)   # x in {7, 15}
    problem.linear_by_width[4] = system
    problem.cubes["x"] = bv("11xx")       # x in {12..15}: only 15 fits
    result = problem.solve()
    assert isinstance(result, Solution)
    assert result.assignment["x"] == 15


def test_partial_cube_retry_failure_is_unknown():
    """When no boundary completion fits, the answer is Unknown (the pins
    are heuristic choices), not a certificate."""
    problem = ArithmeticProblem()
    system = ModularLinearSystem(4)
    system.add_constraint({"x": 2}, 12)   # x in {6, 14}
    problem.linear_by_width[4] = system
    problem.cubes["x"] = bv("10xx")       # x in {8..11}: neither fits
    result = problem.solve()
    assert isinstance(result, Unknown)


def test_extraction_folds_word_level_buffer_aliases():
    """HDL elaboration routes `assign` results through word-level buffers;
    the extractor must fold the alias equality or the system degenerates
    into a satisfiable relaxation (and certificates never happen)."""
    circuit = Circuit("alias")
    x = circuit.input("x", 8)
    y = circuit.input("y", 8)
    raw = circuit.add(y, 4, name="raw")                  # n = y + 4
    shifted = circuit.buf(raw, name="shifted")           # shifted = n
    direct = circuit.add(x, y, name="direct")            # d = x + y
    cross = circuit.add(x, shifted, name="cross")        # e = x + shifted

    model = UnrolledModel(circuit, 1)
    model.assign(direct, 0, BV3.from_int(8, 7), propagate=False)
    model.assign(cross, 0, BV3.from_int(8, 9), propagate=False)  # gap 2 != 4
    unjustified = model.engine.unjustified_nodes()
    problem = DatapathConstraintExtractor(model.engine).extract(unjustified)
    result = problem.solve()
    assert isinstance(result, Infeasible)
    assert {(direct, 0), (cross, 0)} <= set(result.core)
