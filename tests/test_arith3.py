"""Tests for three-valued ripple-carry arithmetic (paper Fig. 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.bitvector import BV3, BV3Conflict, add3, sub3, negate3, propagate_adder, propagate_subtractor
from repro.bitvector.arith3 import mul3
from repro.bitvector.bv3 import bv


def test_fig3_adder_backward_implication():
    """Paper Fig. 3: out = 0111, one input = 1x1x implies the other input is
    at least 1x0x and the carry-out is 1."""
    a = bv("1x1x")
    out = bv("0111")
    new_a, new_b, new_out, cin, cout = propagate_adder(a, BV3.unknown(4), out)
    assert cout == 1
    assert new_b.covers(bv("1x0x")) or new_b == bv("1x0x")
    # The known bits of the derived input must match the paper's 1x0x.
    assert new_b.bit(3) == 1
    assert new_b.bit(1) == 0


def test_adder_forward_fully_known():
    a = BV3.from_int(4, 9)
    b = BV3.from_int(4, 5)
    new_a, new_b, out, _, cout = propagate_adder(a, b, BV3.unknown(4))
    assert out.to_int() == 14
    assert cout == 0
    a = BV3.from_int(4, 9)
    b = BV3.from_int(4, 8)
    _, _, out, _, cout = propagate_adder(a, b, BV3.unknown(4))
    assert out.to_int() == 1  # wraps modulo 16
    assert cout == 1


def test_adder_conflict_detection():
    with pytest.raises(BV3Conflict):
        propagate_adder(BV3.from_int(4, 3), BV3.from_int(4, 4), BV3.from_int(4, 9))


def test_adder_carry_in():
    _, _, out, _, _ = propagate_adder(BV3.from_int(4, 3), BV3.from_int(4, 4), BV3.unknown(4), carry_in=1)
    assert out.to_int() == 8


def test_subtractor_directions():
    a, b, out = propagate_subtractor(BV3.from_int(4, 5), BV3.from_int(4, 9), BV3.unknown(4))
    assert out.to_int() == 12  # 5 - 9 mod 16
    # Backward: out and b known -> a implied.
    a, b, out = propagate_subtractor(BV3.unknown(4), BV3.from_int(4, 3), BV3.from_int(4, 6))
    assert a.to_int() == 9


def test_add3_sub3_negate3():
    assert add3(BV3.from_int(4, 7), BV3.from_int(4, 7)).to_int() == 14
    assert sub3(BV3.from_int(4, 2), BV3.from_int(4, 5)).to_int() == 13
    assert negate3(BV3.from_int(4, 5)).to_int() == 11


def test_mul3_forward():
    assert mul3(BV3.from_int(3, 4), BV3.from_int(3, 7), out_width=4).to_int() == 12
    assert mul3(BV3.from_int(3, 0), BV3.unknown(3), out_width=4).to_int() == 0
    # Known trailing zeros propagate to the product.
    partial = mul3(bv("1x0"), bv("xx0"), out_width=4)
    assert partial.bit(0) == 0
    assert partial.bit(1) == 0


def test_width_mismatch_rejected():
    with pytest.raises(ValueError):
        propagate_adder(BV3.unknown(4), BV3.unknown(3), BV3.unknown(4))


# ----------------------------------------------------------------------
# Property-based soundness: the fixpoint never removes a real solution and
# never invents constants that contradict some completion.
# ----------------------------------------------------------------------
def _cube(width, value, known):
    return BV3(width, value, known)


small_cube = st.tuples(
    st.integers(0, 15), st.integers(0, 15)
).map(lambda spec: _cube(4, spec[0], spec[1]))


@given(small_cube, small_cube, small_cube)
def test_adder_propagation_soundness(a, b, out):
    """For every (x, y) completion with (x+y) mod 16 in out's completions, the
    refined cubes still contain x, y and the sum."""
    solutions = [
        (x, y)
        for x in a.completions()
        for y in b.completions()
        if out.contains_int((x + y) & 15)
    ]
    try:
        new_a, new_b, new_out, _, _ = propagate_adder(a, b, out)
    except BV3Conflict:
        assert not solutions
        return
    for x, y in solutions:
        assert new_a.contains_int(x)
        assert new_b.contains_int(y)
        assert new_out.contains_int((x + y) & 15)


@given(small_cube, small_cube)
def test_forward_add_contains_all_sums(a, b):
    result = add3(a, b)
    for x in a.completions():
        for y in b.completions():
            assert result.contains_int((x + y) & 15)
