"""Tests for the engine portfolio: adapters, racing, batching, CLI wiring."""

import json
import time

import pytest

from repro.checker.result import CheckStatus, Counterexample
from repro.netlist import Circuit
from repro.portfolio import (
    AtpgEngine,
    BatchJob,
    BatchOptions,
    BatchRunner,
    BddEngine,
    EngineBudget,
    EngineResult,
    PortfolioChecker,
    PortfolioOptions,
    RandomSimEngine,
    SatEngine,
    available_engines,
    detect_disagreement,
    make_engine,
)
from repro.properties import Assertion, Signal, Witness


def build_counter(limit: int = 9) -> Circuit:
    """A saturating-to-zero counter: count wraps after ``limit``."""
    circuit = Circuit("counter")
    enable = circuit.input("en", 1)
    count = circuit.state("count", 4)
    wrapped = circuit.mux(
        circuit.eq(count, limit), circuit.add(count, circuit.const(1, 4)), circuit.const(0, 4)
    )
    advanced = circuit.mux(enable, count, wrapped)
    circuit.dff_into(count, advanced, init_value=0)
    circuit.output(count)
    return circuit


BOUNDED = Assertion("bounded", Signal("count") <= 9)
REACH_TWO = Witness("reach_two", Signal("count") == 2)


# ----------------------------------------------------------------------
# Engine adapters: result normalisation
# ----------------------------------------------------------------------
def test_atpg_adapter_normalises_result():
    result = AtpgEngine().run(build_counter(), REACH_TWO, None, None, EngineBudget())
    assert result.engine == "atpg"
    assert result.status is CheckStatus.WITNESS_FOUND
    assert result.conclusive and result.verdict == "reachable"
    assert result.bound == 8
    assert result.counterexample is not None and result.counterexample.validated
    assert result.counterexample.target_frame == 2
    assert {"frames_explored", "decisions", "backtracks"} <= set(result.stats)
    assert result.wall_seconds > 0


def test_bdd_adapter_is_unbounded_and_traceless():
    result = BddEngine().run(build_counter(), BOUNDED, None, None, EngineBudget())
    assert result.engine == "bdd"
    assert result.status is CheckStatus.HOLDS
    assert result.verdict == "unreachable"
    assert result.bound is None  # a fixed point is an unbounded proof
    assert result.counterexample is None
    assert {"iterations", "peak_nodes", "reachable_states"} <= set(result.stats)


def test_sat_adapter_replays_trace_through_simulator():
    result = SatEngine().run(build_counter(), REACH_TWO, None, None, EngineBudget())
    assert result.engine == "sat"
    assert result.verdict == "reachable"
    trace = result.counterexample
    assert trace is not None and trace.validated
    assert trace.trace[trace.target_frame]["count"] == 2
    assert {"clauses", "variables", "decisions"} <= set(result.stats)


def test_random_adapter_not_found_is_inconclusive():
    budget = EngineBudget(random_runs=4, random_cycles=4, seed=7)
    result = RandomSimEngine().run(build_counter(), BOUNDED, None, None, budget)
    # Nothing found: status says HOLDS for comparability, but that is not a
    # proof, so normalisation must refuse to call it conclusive.
    assert result.status is CheckStatus.HOLDS
    assert not result.conclusive and result.verdict is None
    assert result.stats["seed"] == 7


def test_random_adapter_seed_reproducibility():
    budget = EngineBudget(random_runs=16, random_cycles=8, seed=123)
    first = RandomSimEngine().run(build_counter(), REACH_TWO, None, None, budget)
    second = RandomSimEngine().run(build_counter(), REACH_TWO, None, None, budget)
    assert first.verdict == second.verdict == "reachable"
    assert first.counterexample.inputs == second.counterexample.inputs


def test_engine_registry():
    assert available_engines() == ["atpg", "bdd", "sat", "random"]
    assert make_engine("bdd").name == "bdd"
    with pytest.raises(ValueError, match="unknown engine"):
        make_engine("z3")


def test_engine_result_json_round_trip():
    result = SatEngine().run(build_counter(), REACH_TWO, None, None, EngineBudget())
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["engine"] == "sat"
    assert payload["verdict"] == "reachable"
    assert payload["trace"]["validated"] is True


# ----------------------------------------------------------------------
# Disagreement detection
# ----------------------------------------------------------------------
def _result(engine, status, conclusive=True, bound=None, target_frame=None):
    counterexample = None
    if target_frame is not None:
        counterexample = Counterexample(
            initial_state={}, inputs=[{}] * (target_frame + 1),
            trace=[{}] * (target_frame + 1), target_frame=target_frame,
            monitor_name="m", validated=True,
        )
    return EngineResult(
        engine=engine, status=status, conclusive=conclusive,
        counterexample=counterexample, bound=bound,
    )


def test_disagreement_proof_vs_trace_conflicts():
    results = [
        _result("bdd", CheckStatus.HOLDS),  # unbounded proof of absence
        _result("atpg", CheckStatus.FAILS, target_frame=2, bound=8),
    ]
    assert detect_disagreement(results) == ["bdd", "atpg"]


def test_disagreement_respects_bounded_verdicts():
    # ATPG searched 4 frames and found nothing; BDD proves the state *is*
    # reachable but has no trace -- the witness may lie beyond the bound, so
    # this is not a soundness conflict.
    results = [
        _result("atpg", CheckStatus.WITNESS_NOT_FOUND, bound=4),
        _result("bdd", CheckStatus.WITNESS_FOUND),
    ]
    assert detect_disagreement(results) == []
    # But a validated trace *inside* the bound is a genuine conflict.
    results = [
        _result("atpg", CheckStatus.WITNESS_NOT_FOUND, bound=4),
        _result("sat", CheckStatus.WITNESS_FOUND, target_frame=2, bound=8),
    ]
    assert detect_disagreement(results) == ["atpg", "sat"]
    # A deeper trace than the bound is expected behaviour.
    results = [
        _result("atpg", CheckStatus.WITNESS_NOT_FOUND, bound=4),
        _result("sat", CheckStatus.WITNESS_FOUND, target_frame=6, bound=8),
    ]
    assert detect_disagreement(results) == []


def test_disagreement_ignores_inconclusive_results():
    results = [
        _result("bdd", CheckStatus.ABORTED, conclusive=False),
        _result("random", CheckStatus.HOLDS, conclusive=False),
        _result("atpg", CheckStatus.FAILS, target_frame=0, bound=8),
    ]
    assert detect_disagreement(results) == []


def test_real_engines_agree_in_compare_mode():
    checker = PortfolioChecker(
        build_counter(),
        engines=("atpg", "bdd", "sat"),
        options=PortfolioOptions(mode="sequential", run_all=True),
    )
    result = checker.check(REACH_TWO)
    assert [r.engine for r in result.engine_results] == ["atpg", "bdd", "sat"]
    assert all(r.verdict == "reachable" for r in result.engine_results)
    assert result.disagreement == []
    assert result.status is CheckStatus.WITNESS_FOUND


# ----------------------------------------------------------------------
# Racing: cancellation, timeout, sequential early-stop
# ----------------------------------------------------------------------
class SleepyEngine:
    """A stub engine that stalls forever (until cancelled or timed out)."""

    name = "sleepy"
    can_prove = True

    def run(self, circuit, prop, environment, initial_state, budget):
        time.sleep(60.0)
        return EngineResult(  # pragma: no cover - must never be reached
            engine=self.name, status=CheckStatus.HOLDS, conclusive=True
        )


class InstantEngine:
    """A stub engine that answers immediately."""

    name = "instant"
    can_prove = True

    def run(self, circuit, prop, environment, initial_state, budget):
        return EngineResult(
            engine=self.name, status=CheckStatus.HOLDS, conclusive=True,
            wall_seconds=0.001,
        )


def test_process_race_cancels_losers():
    checker = PortfolioChecker(
        build_counter(),
        engines=(SleepyEngine(), InstantEngine()),
        options=PortfolioOptions(mode="process"),
    )
    started = time.perf_counter()
    result = checker.check(BOUNDED)
    assert time.perf_counter() - started < 30.0  # nowhere near the 60s sleep
    assert result.winner == "instant"
    assert result.status is CheckStatus.HOLDS
    by_name = {r.engine: r for r in result.engine_results}
    assert by_name["sleepy"].cancelled
    assert by_name["sleepy"].status is CheckStatus.ABORTED
    assert not by_name["instant"].cancelled


def test_process_race_times_out_stuck_engines():
    checker = PortfolioChecker(
        build_counter(),
        engines=(SleepyEngine(),),
        options=PortfolioOptions(
            budget=EngineBudget(time_seconds=0.3), mode="process"
        ),
    )
    result = checker.check(BOUNDED)
    assert result.winner is None
    assert result.status is CheckStatus.ABORTED
    assert result.engine_results[0].timed_out
    assert not result.conclusive


def test_sequential_race_stops_after_first_conclusive():
    checker = PortfolioChecker(
        build_counter(),
        engines=(InstantEngine(), SleepyEngine()),
        options=PortfolioOptions(mode="sequential"),
    )
    result = checker.check(BOUNDED)
    assert result.winner == "instant"
    by_name = {r.engine: r for r in result.engine_results}
    assert by_name["sleepy"].cancelled  # never started


def test_portfolio_rejects_bad_configuration():
    with pytest.raises(ValueError, match="at least one engine"):
        PortfolioChecker(build_counter(), engines=())
    with pytest.raises(ValueError, match="duplicate"):
        PortfolioChecker(build_counter(), engines=("atpg", "atpg"))
    with pytest.raises(ValueError, match="unknown portfolio mode"):
        PortfolioChecker(
            build_counter(), options=PortfolioOptions(mode="warp")
        ).check(BOUNDED)


def test_race_keeps_parent_circuit_pristine():
    circuit = build_counter()
    gates_before = len(list(circuit.topological_order()))
    PortfolioChecker(
        circuit, engines=("atpg", "sat"), options=PortfolioOptions(mode="sequential")
    ).check(BOUNDED)
    # Monitor compilation happens on private copies, never on the input.
    assert len(list(circuit.topological_order())) == gates_before


# ----------------------------------------------------------------------
# Batch runner
# ----------------------------------------------------------------------
def _batch_jobs():
    return [
        BatchJob("j_bounded", build_counter(), BOUNDED),
        BatchJob("j_reach", build_counter(), REACH_TWO),
        BatchJob("j_pinned", build_counter(), REACH_TWO, seed=999),
    ]


def test_batch_runner_deterministic_order_and_seeds():
    report = BatchRunner(
        BatchOptions(engines=("atpg",), jobs=2, base_seed=100)
    ).run(_batch_jobs())
    assert [item.job_id for item in report.items] == ["j_bounded", "j_reach", "j_pinned"]
    assert [item.seed for item in report.items] == [100, 101, 999]
    assert report.disagreements == []
    assert report.inconclusive == []


def test_batch_report_json_schema():
    report = BatchRunner(BatchOptions(engines=("atpg", "bdd"), jobs=1)).run(
        _batch_jobs()[:2]
    )
    payload = json.loads(report.to_json())
    assert payload["schema"] == "repro-batch-report/v1"
    assert payload["engines"] == ["atpg", "bdd"]
    assert payload["jobs"] == 2
    statuses = {r["job_id"]: r["status"] for r in payload["results"]}
    assert statuses == {"j_bounded": "holds", "j_reach": "witness_found"}


def test_batch_runs_are_reproducible():
    def snapshot():
        report = BatchRunner(
            BatchOptions(engines=("random",), jobs=2, base_seed=42,
                         budget=EngineBudget(random_runs=32, random_cycles=8))
        ).run([BatchJob("w%d" % i, build_counter(), REACH_TWO) for i in range(3)])
        return [
            (item.job_id, item.seed, item.result.status.value,
             item.result.counterexample.inputs
             if item.result.counterexample else None)
            for item in report.items
        ]

    assert snapshot() == snapshot()


def test_batch_base_seed_derives_from_budget_seed():
    # Setting the seed on the budget alone must take effect (no silent
    # fallback to an unrelated base_seed default).
    report = BatchRunner(
        BatchOptions(engines=("atpg",), budget=EngineBudget(seed=42))
    ).run(_batch_jobs()[:2])
    assert report.base_seed == 42
    assert [item.seed for item in report.items] == [42, 43]


def test_batch_rejects_bad_job_count():
    with pytest.raises(ValueError, match="jobs must be"):
        BatchRunner(BatchOptions(jobs=0))


def test_batch_enforces_time_budget_with_parallel_jobs():
    # Workers are non-daemonic, so each job still races its engines in
    # processes and the wall-clock budget is enforced by cancellation even
    # under jobs > 1.
    started = time.perf_counter()
    report = BatchRunner(
        BatchOptions(
            engines=(SleepyEngine(), "atpg"),
            budget=EngineBudget(time_seconds=5.0),
            jobs=2,
        )
    ).run([BatchJob("a", build_counter(), BOUNDED), BatchJob("b", build_counter(), BOUNDED)])
    assert time.perf_counter() - started < 30.0  # nowhere near the 60s sleep
    for item in report.items:
        assert item.result.winner == "atpg"
        by_name = {r.engine: r for r in item.result.engine_results}
        assert by_name["sleepy"].cancelled or by_name["sleepy"].timed_out


def test_batch_accepts_configured_engine_objects():
    from repro.checker import CheckerOptions
    from repro.portfolio import AtpgEngine

    engine = AtpgEngine(CheckerOptions(use_local_fsm_guidance=True))
    report = BatchRunner(BatchOptions(engines=(engine,), jobs=2)).run(
        [BatchJob("a", build_counter(), BOUNDED), BatchJob("b", build_counter(), REACH_TWO)]
    )
    assert report.engines == ["atpg"]
    assert [item.result.status.value for item in report.items] == [
        "holds", "witness_found",
    ]


def test_batch_surfaces_job_level_failures():
    class ExplodingEngine:
        name = "boom"
        can_prove = True

        def run(self, circuit, prop, environment, initial_state, budget):
            raise RuntimeError("kaput")

    report = BatchRunner(BatchOptions(engines=(ExplodingEngine(), "atpg"))).run(
        [BatchJob("a", build_counter(), BOUNDED)]
    )
    item = report.items[0]
    # The adapter contract is "never raise", but even a hostile engine must
    # not take down the batch: the job completes on the surviving engine.
    assert item.result.winner == "atpg"


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
COUNTER_VERILOG = """
module counter(input clk, input en, output [3:0] count);
  reg [3:0] count;
  always @(posedge clk) begin
    if (en) begin
      if (count == 9)
        count <= 0;
      else
        count <= count + 1;
    end
  end
endmodule
"""


@pytest.fixture()
def counter_file(tmp_path):
    path = tmp_path / "counter.v"
    path.write_text(COUNTER_VERILOG)
    return str(path)


def test_cli_portfolio_json(counter_file, capsys):
    from repro.cli import main

    code = main([
        "check", counter_file,
        "--assert", "bounded=count <= 9",
        "--engines", "atpg,bdd",
        "--jobs", "2",
        "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["schema"] == "repro-batch-report/v1"
    assert payload["disagreements"] == []
    (result,) = payload["results"]
    assert result["status"] == "holds"
    assert {entry["engine"] for entry in result["engines"]} == {"atpg", "bdd"}


def test_cli_portfolio_compare_text(counter_file, capsys):
    from repro.cli import main

    code = main([
        "check", counter_file,
        "--witness", "hit=count == 2",
        "--engines", "atpg,sat",
        "--compare",
        "--seed", "11",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "winner:" in out
    assert "atpg" in out and "sat" in out
    assert "DISAGREE" not in out


def test_cli_rejects_unknown_engine(counter_file):
    from repro.cli import main

    with pytest.raises(SystemExit, match="unknown engine"):
        main(["check", counter_file, "--assert", "count <= 9", "--engines", "cvc5"])
