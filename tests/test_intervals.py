"""Tests for the interval abstraction and Rules 1-2 cube refinement (Fig. 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.bitvector import BV3, BV3Conflict, ValueRange, cube_to_range, range_to_cube
from repro.bitvector.bv3 import bv
from repro.bitvector.intervals import tighten_for_compare


def test_range_constructors():
    assert ValueRange.full(4) == ValueRange(4, 0, 15)
    assert ValueRange.point(4, 20) == ValueRange(4, 4, 4)
    assert ValueRange.empty(4).is_empty()
    assert ValueRange(4, 3, 3).is_point()
    assert ValueRange(4, 2, 5).size() == 4
    assert ValueRange.empty(4).size() == 0


def test_range_operations():
    a = ValueRange(4, 2, 10)
    assert a.contains(2) and a.contains(10) and not a.contains(11)
    assert a.intersect(ValueRange(4, 8, 12)) == ValueRange(4, 8, 10)
    assert a.clamp_below(5) == ValueRange(4, 2, 5)
    assert a.clamp_above(4) == ValueRange(4, 4, 10)
    with pytest.raises(ValueError):
        a.intersect(ValueRange(5, 0, 1))


def test_cube_to_range_matches_paper():
    assert cube_to_range(bv("x01x")) == ValueRange(4, 2, 11)
    assert cube_to_range(bv("1x0x")) == ValueRange(4, 8, 13)


def test_range_to_cube_fig4_example():
    """The worked comparator example of the paper's Fig. 4."""
    in_a = bv("x01x")
    in_b = bv("1x0x")
    refined_a = range_to_cube(in_a, ValueRange(4, 9, 11))
    refined_b = range_to_cube(in_b, ValueRange(4, 8, 10))
    assert refined_a == bv("101x")
    assert refined_b == bv("100x")


def test_range_to_cube_stops_at_first_undecidable_bit():
    # Rule 2: once an x bit cannot be decided, lower bits are not implied.
    cube = bv("xxxx")
    refined = range_to_cube(cube, ValueRange(4, 4, 11))
    # Both halves [0,7] and [8,15] intersect [4,11]: nothing can be implied.
    assert refined == cube


def test_range_to_cube_conflict():
    with pytest.raises(BV3Conflict):
        range_to_cube(bv("00xx"), ValueRange(4, 8, 12))
    with pytest.raises(BV3Conflict):
        range_to_cube(bv("xxxx"), ValueRange.empty(4))


def test_range_to_cube_width_mismatch():
    with pytest.raises(ValueError):
        range_to_cube(bv("xx"), ValueRange(4, 0, 3))


def test_tighten_greater_matches_paper():
    a, b = tighten_for_compare(">", ValueRange(4, 2, 11), ValueRange(4, 8, 13), True)
    assert (a.lo, a.hi) == (9, 11)
    assert (b.lo, b.hi) == (8, 10)


def test_tighten_with_false_result_flips_relation():
    # a > b is FALSE means a <= b.
    a, b = tighten_for_compare(">", ValueRange(4, 5, 15), ValueRange(4, 0, 7), False)
    assert a.hi <= 7
    assert b.lo >= 5


def test_tighten_equation_and_inequation():
    a, b = tighten_for_compare("==", ValueRange(4, 2, 9), ValueRange(4, 5, 12), True)
    assert (a.lo, a.hi) == (5, 9)
    assert (b.lo, b.hi) == (5, 9)
    a, b = tighten_for_compare("!=", ValueRange(4, 3, 3), ValueRange(4, 3, 3), True)
    assert a.is_empty() or b.is_empty()


def test_tighten_unknown_operator():
    with pytest.raises(ValueError):
        tighten_for_compare("<>", ValueRange(4, 0, 3), ValueRange(4, 0, 3), True)


# ----------------------------------------------------------------------
# Property-based: refinement soundness
# ----------------------------------------------------------------------
cube_strategy = st.integers(2, 6).flatmap(
    lambda width: st.tuples(
        st.just(width),
        st.integers(0, (1 << width) - 1),
        st.integers(0, (1 << width) - 1),
    )
).map(lambda spec: BV3(spec[0], spec[1], spec[2]))


@given(cube_strategy, st.data())
def test_range_to_cube_never_loses_valid_completions(cube, data):
    """Any completion of the cube inside the target range survives refinement."""
    lo = data.draw(st.integers(0, (1 << cube.width) - 1))
    hi = data.draw(st.integers(lo, (1 << cube.width) - 1))
    target = ValueRange(cube.width, lo, hi)
    valid = [v for v in cube.completions() if lo <= v <= hi]
    try:
        refined = range_to_cube(cube, target)
    except BV3Conflict:
        assert not valid
        return
    for value in valid:
        assert refined.contains_int(value)
