"""Tests for the fleet shard router (:mod:`repro.service.fleet`).

Five layers:

* configuration -- endpoint specs, the environment, TOML fleet files (and
  the tomllib-free fallback parser CI's Python 3.10 exercises);
* rendezvous hashing -- stable scores, fair-ish spread, and the property
  the failover contract rests on: removing an endpoint never reorders the
  survivors (no rehash scatter);
* health -- ping probes against live / legacy / dead endpoints, and the
  per-endpoint circuit breaker (trip, cooldown, half-open rejoin);
* routing -- live multi-daemon fleets: sticky assignment, deterministic
  failover with bit-identical verdicts, draining handoff, the
  answered-means-answered contract, hedged submits, in-process fallback
  (deadline-clamped) and the ``fleet.route`` / ``fleet.hedge`` /
  ``fleet.probe`` fault sites;
* anti-entropy -- ``sync_stores`` drives every shard store to the union of
  learned facts, idempotently, and the ``repro fleet`` CLI wraps it all.
"""

import json
import os
import socket as socket_module
import threading
import time

import pytest

from repro import api, faults
from repro.kb import KnowledgeBase
from repro.service import fleet, protocol
from repro.service.client import JobFailure, ServiceError

from test_service import arm_plan, case_request, normalized, running_daemon


@pytest.fixture(autouse=True)
def _unarmed_faults(monkeypatch):
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    monkeypatch.delenv(faults.SEED_ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.disarm()
    yield
    faults.disarm()


def two_endpoints(tmp_path, sock_a, sock_b, with_kb=True):
    kb_a = str(tmp_path / "a.sqlite") if with_kb else None
    kb_b = str(tmp_path / "b.sqlite") if with_kb else None
    return [fleet.FleetEndpoint("a", sock_a, kb_a),
            fleet.FleetEndpoint("b", sock_b, kb_b)]


def second_daemon_dir(tmp_path):
    """A sibling directory for a second in-thread daemon's socket."""
    path = tmp_path / "b"
    path.mkdir(exist_ok=True)
    return path


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TestEndpointConfig:
    def test_spec_with_name_and_kb(self):
        endpoint = fleet.parse_endpoint_spec("a=/run/a.sock;kb=/var/a.sqlite")
        assert endpoint == fleet.FleetEndpoint("a", "/run/a.sock", "/var/a.sqlite")

    def test_spec_name_defaults_to_socket_basename(self):
        assert fleet.parse_endpoint_spec("/run/shard-0.sock").name == "shard-0"
        assert fleet.parse_endpoint_spec("/run/shard-1").name == "shard-1"

    def test_bad_specs_are_typed_errors(self):
        with pytest.raises(fleet.FleetError):
            fleet.parse_endpoint_spec("")
        with pytest.raises(fleet.FleetError):
            fleet.parse_endpoint_spec("a=/run/a.sock;bogus=1")
        with pytest.raises(fleet.FleetError):
            fleet.parse_endpoint_specs(["x=/a.sock", "x=/b.sock"])

    def test_env_endpoints_resolve(self):
        endpoints, options = fleet.resolve_endpoints(
            env={fleet.ENDPOINTS_ENV: "a=/a.sock;kb=/a.kb, b=/b.sock"})
        assert [e.name for e in endpoints] == ["a", "b"]
        assert endpoints[0].kb == "/a.kb"
        assert options == {}

    def test_cli_specs_beat_environment(self):
        endpoints, _ = fleet.resolve_endpoints(
            specs=["only=/one.sock"],
            env={fleet.ENDPOINTS_ENV: "a=/a.sock,b=/b.sock"})
        assert [e.name for e in endpoints] == ["only"]

    def test_nothing_configured_is_empty_not_an_error(self):
        endpoints, options = fleet.resolve_endpoints(env={})
        assert endpoints == [] and options == {}

    FLEET_TOML = (
        "# two shards\n"
        "[fleet]\n"
        "hedge_after = 1.5\n"
        "trip_threshold = 2\n"
        "cooldown = 0.5\n"
        "\n"
        "[[endpoints]]\n"
        'name = "a"\n'
        'socket = "/run/a.sock"\n'
        'kb = "/var/a.sqlite"\n'
        "\n"
        "[[endpoints]]\n"
        'socket = "/run/b.sock"\n'
    )

    def test_fleet_file_round_trip(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text(self.FLEET_TOML)
        endpoints, options = fleet.load_fleet_file(str(path))
        assert endpoints == [
            fleet.FleetEndpoint("a", "/run/a.sock", "/var/a.sqlite"),
            fleet.FleetEndpoint("b", "/run/b.sock", None),
        ]
        assert options == {"hedge_after": 1.5, "trip_threshold": 2,
                           "cooldown": 0.5}

    def test_fallback_parser_matches_tomllib(self):
        """The 3.10 fallback and tomllib must agree on fleet files."""
        fallback = fleet._parse_fleet_toml_fallback(self.FLEET_TOML)
        tomllib = pytest.importorskip("tomllib")
        assert fallback == tomllib.loads(self.FLEET_TOML)

    def test_fallback_parser_rejects_garbage(self):
        with pytest.raises(fleet.FleetError):
            fleet._parse_fleet_toml_fallback("not toml at all")

    def test_fleet_file_without_endpoints_rejected(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text("[fleet]\ncooldown = 1.0\n")
        with pytest.raises(fleet.FleetError):
            fleet.load_fleet_file(str(path))

    def test_fleet_file_env_is_lowest_precedence(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text(self.FLEET_TOML)
        endpoints, _ = fleet.resolve_endpoints(
            env={fleet.FLEET_FILE_ENV: str(path)})
        assert [e.name for e in endpoints] == ["a", "b"]
        endpoints, _ = fleet.resolve_endpoints(
            env={fleet.FLEET_FILE_ENV: str(path),
                 fleet.ENDPOINTS_ENV: "win=/w.sock"})
        assert [e.name for e in endpoints] == ["win"]


# ----------------------------------------------------------------------
# Rendezvous hashing
# ----------------------------------------------------------------------
FIVE = [fleet.FleetEndpoint(name, "/run/%s.sock" % name)
        for name in ("alpha", "bravo", "charlie", "delta", "echo")]


class TestRendezvous:
    def test_scores_are_pure_and_stable(self):
        a = fleet.rendezvous_score("%016x" % 42, "alpha")
        assert a == fleet.rendezvous_score("%016x" % 42, "alpha")
        assert a != fleet.rendezvous_score("%016x" % 42, "bravo")
        assert a != fleet.rendezvous_score("%016x" % 43, "alpha")

    def test_removal_never_reorders_survivors(self):
        """The no-scatter property: drop any endpoint and every other
        fingerprint keeps its assignment; the dropped endpoint's jobs move
        to their second choice."""
        for n in range(200):
            fingerprint = "%016x" % (n * 0x9E3779B9)
            full = fleet.rendezvous_order(fingerprint, FIVE)
            for gone in FIVE:
                survivors = [e for e in FIVE if e.name != gone.name]
                reduced = fleet.rendezvous_order(fingerprint, survivors)
                assert reduced == [e for e in full if e.name != gone.name]

    def test_spread_is_roughly_fair(self):
        counts = {endpoint.name: 0 for endpoint in FIVE}
        total = 1000
        for n in range(total):
            fingerprint = "%016x" % (n * 0x517CC1B727220A95 % (1 << 64))
            counts[fleet.rendezvous_order(fingerprint, FIVE)[0].name] += 1
        for name, count in counts.items():
            assert total / 10 < count < total / 2, (name, counts)

    def test_order_is_deterministic_across_list_order(self):
        fingerprint = "%016x" % 7
        shuffled = list(reversed(FIVE))
        assert fleet.rendezvous_order(fingerprint, FIVE) == \
            fleet.rendezvous_order(fingerprint, shuffled)


# ----------------------------------------------------------------------
# Health probes and the breaker
# ----------------------------------------------------------------------
@pytest.fixture
def legacy_server(tmp_path):
    """A fake pre-v1.1 daemon: live socket, but ping is an unknown verb."""
    socket_path = str(tmp_path / "legacy.sock")
    server = socket_module.socket(socket_module.AF_UNIX,
                                  socket_module.SOCK_STREAM)
    server.bind(socket_path)
    server.listen(4)
    stop = threading.Event()

    def run():
        server.settimeout(0.2)
        while not stop.is_set():
            try:
                conn, _ = server.accept()
            except socket_module.timeout:
                continue
            with conn:
                stream = conn.makefile("rwb")
                line = stream.readline()
                if not line:
                    continue
                message = protocol.decode(line.rstrip(b"\n"))
                response = dict(
                    protocol.error_response(
                        message.get("verb"),
                        "unknown verb %r" % (message.get("verb"),)),
                    schema="repro-service/v1",
                )
                stream.write(protocol.encode(response))
                stream.flush()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        yield socket_path
    finally:
        stop.set()
        thread.join(timeout=5.0)
        server.close()


class TestProbes:
    def test_probe_live_daemon(self, tmp_path):
        with running_daemon(tmp_path) as socket_path:
            probe = fleet.probe_endpoint(fleet.FleetEndpoint("a", socket_path))
        assert probe["alive"] is True
        assert probe["draining"] is False
        assert probe["protocol"] == protocol.PROTOCOL
        assert isinstance(probe["pid"], int)

    def test_probe_dead_socket(self, tmp_path):
        probe = fleet.probe_endpoint(
            fleet.FleetEndpoint("a", str(tmp_path / "nobody.sock")))
        assert probe["alive"] is False
        assert probe["error"]

    def test_probe_legacy_unknown_verb_is_alive(self, legacy_server):
        """A v1 daemon that predates ping answers 'unknown verb' -- that is
        a live supervisor, not a failed probe (same-major tolerance)."""
        probe = fleet.probe_endpoint(fleet.FleetEndpoint("old", legacy_server))
        assert probe["alive"] is True
        assert probe["legacy"] is True

    def test_probe_fault_site(self, tmp_path, monkeypatch):
        arm_plan(monkeypatch, tmp_path, "fleet.probe:drop-connection")
        with running_daemon(tmp_path) as socket_path:
            probe = fleet.probe_endpoint(fleet.FleetEndpoint("a", socket_path))
        assert probe["alive"] is False
        assert "injected" in probe["error"]


class TestBreaker:
    def test_trip_cooldown_half_open(self):
        state = fleet.EndpointState(fleet.FleetEndpoint("a", "/none.sock"))
        assert state.health(cooldown=0.2) == "up"
        state.record_failure("boom", trip_threshold=2)
        assert state.health(cooldown=0.2) == "up"
        state.record_failure("boom", trip_threshold=2)
        assert state.health(cooldown=60.0) == "tripped"
        state.tripped_at = time.monotonic() - 1.0
        assert state.health(cooldown=0.2) == "half-open"
        state.record_success()
        assert state.health(cooldown=0.2) == "up"
        assert state.consecutive_failures == 0

    def test_success_clears_draining(self):
        state = fleet.EndpointState(fleet.FleetEndpoint("a", "/none.sock"))
        state.draining = True
        assert state.health(cooldown=1.0) == "draining"
        state.record_success()
        assert state.health(cooldown=1.0) == "up"

    def test_tripped_endpoint_is_skipped_then_rejoins(self, tmp_path):
        """A tripped endpoint is routed around for the cooldown, then one
        half-open probe lets a live daemon rejoin."""
        with running_daemon(tmp_path) as socket_path:
            router = fleet.FleetRouter(
                [fleet.FleetEndpoint("a", socket_path)],
                trip_threshold=1, cooldown=30.0)
            state = router._states["a"]
            state.record_failure("induced", router.trip_threshold)
            assert not router._usable(state)  # tripped, cooldown running
            state.tripped_at = time.monotonic() - 60.0
            assert router._usable(state)      # half-open probe succeeded
            assert state.health(router.cooldown) == "up"


# ----------------------------------------------------------------------
# Routing (live daemons)
# ----------------------------------------------------------------------
class TestRouting:
    def test_single_endpoint_fleet_matches_in_process(self, tmp_path):
        request = case_request("p1")
        baseline = normalized(api.check(request))
        with running_daemon(tmp_path) as socket_path:
            router = fleet.FleetRouter([fleet.FleetEndpoint("a", socket_path)])
            report = router.check(request, fallback=False)
        assert normalized(report) == baseline
        assert report.source == "daemon"
        assert report.service["endpoint"] == "a"
        assert router.counters["jobs"] == 1
        assert router.counters["failovers"] == 0

    def test_routing_is_sticky(self, tmp_path):
        """Repeats of one circuit keep landing on the same shard."""
        with running_daemon(tmp_path) as sock_a:
            with running_daemon(second_daemon_dir(tmp_path)) as sock_b:
                router = fleet.FleetRouter(
                    two_endpoints(tmp_path, sock_a, sock_b, with_kb=False))
                homes = set()
                for _ in range(3):
                    report = router.check(case_request("p1"), fallback=False)
                    homes.add(report.service["endpoint"])
        assert len(homes) == 1

    def test_requests_rewritten_to_shard_kb(self, tmp_path):
        """Each shard learns into its own store: the routed request's
        kb_path is the endpoint's, not the client's."""
        with running_daemon(tmp_path) as socket_path:
            endpoint = fleet.FleetEndpoint("a", socket_path,
                                           str(tmp_path / "a.sqlite"))
            router = fleet.FleetRouter([endpoint])
            router.check(case_request("p1"), fallback=False)
        assert os.path.exists(endpoint.kb)

    def test_failover_is_deterministic_and_bit_identical(self, tmp_path):
        """Satellite: with A dead, every fingerprint whose primary was A
        lands on B (its second choice -- no rehash scatter), and the
        verdicts are bit-identical to a single-daemon run."""
        cases = ["p1", "p2", "p3"]
        baselines = {cid: normalized(api.check(case_request(cid)))
                     for cid in cases}
        dead_socket = str(tmp_path / "dead-a.sock")
        with running_daemon(tmp_path) as sock_b:
            endpoints = [fleet.FleetEndpoint("a", dead_socket),
                         fleet.FleetEndpoint("b", sock_b)]
            router = fleet.FleetRouter(endpoints, trip_threshold=99)
            expected_failovers = 0
            for cid in cases:
                fingerprint = router.fingerprint_for(case_request(cid))
                order = [e.name for e in
                         fleet.rendezvous_order(fingerprint, endpoints)]
                if order[0] == "a":
                    # A's jobs fail over to exactly their second choice.
                    expected_failovers += 1
                    assert order[1] == "b"
                report = router.check(case_request(cid), fallback=False)
                assert normalized(report) == baselines[cid]
                assert report.service["endpoint"] == "b"
            assert router.counters["failovers"] == expected_failovers
            assert router._states["b"].jobs_routed == len(cases)

    def test_draining_endpoint_hands_over(self, tmp_path):
        """A draining daemon's typed refusal moves the job along the chain
        instead of surfacing as a failure."""
        from repro.service.client import ServiceClient

        with running_daemon(tmp_path) as sock_a:
            with running_daemon(second_daemon_dir(tmp_path)) as sock_b:
                with ServiceClient(sock_a) as client:
                    client.shutdown(mode="drain")
                router = fleet.FleetRouter(
                    two_endpoints(tmp_path, sock_a, sock_b, with_kb=False))
                report = router.check(case_request("p1"), fallback=False)
                assert report.service["endpoint"] == "b"

    def test_job_failure_propagates_not_retried(self, tmp_path, monkeypatch):
        """Answered-means-answered: a daemon-side job failure must raise
        typed, never be silently re-run on the next endpoint."""
        arm_plan(monkeypatch, tmp_path, "worker.run:crash")
        with running_daemon(tmp_path, requeue_limit=0,
                            quarantine_limit=99) as sock_a:
            with running_daemon(second_daemon_dir(tmp_path), requeue_limit=0,
                                quarantine_limit=99) as sock_b:
                router = fleet.FleetRouter(
                    two_endpoints(tmp_path, sock_a, sock_b, with_kb=False))
                with pytest.raises(JobFailure) as excinfo:
                    router.check(case_request("p1"), fallback=False)
        assert excinfo.value.cause in protocol.FAILURE_CAUSES
        # Exactly one endpoint saw the job; nobody re-ran it.
        routed = [state.jobs_routed for state in router._states.values()]
        assert sum(routed) == 0  # no *successful* routes
        assert router.counters["failovers"] == 0

    def test_route_fault_forces_failover(self, tmp_path, monkeypatch):
        arm_plan(monkeypatch, tmp_path, "fleet.route:drop-connection")
        request = case_request("p1")
        baseline = normalized(api.check(request))
        with running_daemon(tmp_path) as sock_a:
            with running_daemon(second_daemon_dir(tmp_path)) as sock_b:
                router = fleet.FleetRouter(
                    two_endpoints(tmp_path, sock_a, sock_b, with_kb=False))
                report = router.check(request, fallback=False)
        assert normalized(report) == baseline
        assert router.counters["failovers"] == 1

    def test_hedge_fault_launches_backup(self, tmp_path, monkeypatch):
        """An armed fleet.hedge fault forces an immediate hedge: both
        shards race the job and the first answer wins."""
        arm_plan(monkeypatch, tmp_path, "fleet.hedge:drop-connection")
        request = case_request("p1")
        baseline = normalized(api.check(request))
        with running_daemon(tmp_path) as sock_a:
            with running_daemon(second_daemon_dir(tmp_path)) as sock_b:
                router = fleet.FleetRouter(
                    two_endpoints(tmp_path, sock_a, sock_b, with_kb=False),
                    hedge_after=30.0)
                report = router.check(request, fallback=False)
        assert normalized(report) == baseline
        assert router.counters["hedges"] == 1

    def test_all_down_falls_back_in_process_with_deadline(
            self, tmp_path, monkeypatch):
        """With every endpoint dead the in-process fallback answers -- and
        it honours the end-to-end deadline by clamping the engine budget,
        exactly like the daemon path."""
        seen = {}
        real_check = api.check

        def spy(request, **kwargs):
            seen["time_budget"] = request.time_budget
            return real_check(request, **kwargs)

        monkeypatch.setattr(api, "check", spy)
        router = fleet.FleetRouter(
            [fleet.FleetEndpoint("a", str(tmp_path / "no-a.sock")),
             fleet.FleetEndpoint("b", str(tmp_path / "no-b.sock"))])
        report = router.check(case_request("p1"), deadline=7.5)
        assert report.source == "in-process"
        assert seen["time_budget"] == 7.5
        assert router.counters["fell_back"] == 1

    def test_all_down_without_fallback_raises_typed(self, tmp_path):
        router = fleet.FleetRouter(
            [fleet.FleetEndpoint("a", str(tmp_path / "no-a.sock"))])
        with pytest.raises(ServiceError):
            router.check(case_request("p1"), fallback=False)

    def test_inline_circuit_short_circuits_to_in_process(self, tmp_path):
        from repro.circuits import build_case

        case = build_case("p1")
        request = api.CheckRequest(
            circuit=api.CircuitRef.inline(case.circuit),
            properties=(api.PropertySpec.from_property(case.prop),),
        )
        router = fleet.FleetRouter(
            [fleet.FleetEndpoint("a", str(tmp_path / "no.sock"))])
        report = router.check(request)
        assert report.source == "in-process"


# ----------------------------------------------------------------------
# Batches
# ----------------------------------------------------------------------
class TestBatch:
    def test_batch_routes_everything_no_losses(self, tmp_path):
        cases = ["p1", "p2", "p3", "p5"]
        with running_daemon(tmp_path) as sock_a:
            with running_daemon(second_daemon_dir(tmp_path)) as sock_b:
                router = fleet.FleetRouter(
                    two_endpoints(tmp_path, sock_a, sock_b))
                report = router.run_batch(
                    [case_request(cid) for cid in cases], fallback=False)
        assert report["schema"] == fleet.FLEET_BATCH_SCHEMA
        assert report["total"] == len(cases)
        assert report["done"] == len(cases)
        assert report["failed"] == 0
        assert report["lost"] == 0
        labels = {item["circuit"] for item in report["items"]}
        assert labels == set(cases)
        for item in report["items"]:
            assert item["endpoint"] in ("a", "b")
        assert {block["name"] for block in report["endpoints"]} == {"a", "b"}

    def test_batch_with_one_shard_down_completes_on_survivor(self, tmp_path):
        cases = ["p1", "p2", "p3"]
        with running_daemon(tmp_path) as sock_b:
            router = fleet.FleetRouter(
                [fleet.FleetEndpoint("a", str(tmp_path / "dead.sock")),
                 fleet.FleetEndpoint("b", sock_b)],
                trip_threshold=99)
            report = router.run_batch(
                [case_request(cid) for cid in cases], fallback=False)
        assert report["done"] == len(cases)
        assert report["lost"] == 0
        assert all(item["endpoint"] == "b" for item in report["items"])


# ----------------------------------------------------------------------
# Anti-entropy
# ----------------------------------------------------------------------
def kb_facts(path):
    """The (models, cubes, fail_memos) content triple of a store."""
    store = KnowledgeBase(path)
    try:
        stats = store.stats()
        assert not stats.get("disabled"), stats
        return (stats["models"], stats["cubes"], stats["fail_memos"],
                stats["hits"])
    finally:
        store.close()


def learn_into(kb_path, case_id):
    report = api.check(case_request(case_id, kb_path=str(kb_path)))
    from repro.kb import flush_attached_stores

    flush_attached_stores()
    return report


class TestAntiEntropy:
    def test_sync_unions_both_directions_idempotently(self, tmp_path):
        kb_a = str(tmp_path / "a.sqlite")
        kb_b = str(tmp_path / "b.sqlite")
        learn_into(kb_a, "p1")
        learn_into(kb_b, "p2")
        before_a, before_b = kb_facts(kb_a), kb_facts(kb_b)

        results = fleet.sync_stores([kb_a, kb_b])
        assert len(results) == 2
        after_a, after_b = kb_facts(kb_a), kb_facts(kb_b)
        # Both shards now hold the union: every count at least as big as
        # either input, and the two stores agree with each other.
        assert after_a == after_b
        for before in (before_a, before_b):
            assert all(a >= b for a, b in zip(after_a, before))

        # Re-syncing is a no-op (the merge rules commute and dedupe).
        fleet.sync_stores([kb_a, kb_b])
        assert kb_facts(kb_a) == after_a
        assert kb_facts(kb_b) == after_b

    def test_sync_fewer_than_two_stores_is_a_noop(self, tmp_path):
        kb_a = str(tmp_path / "a.sqlite")
        learn_into(kb_a, "p1")
        results = fleet.sync_stores([kb_a, kb_a])
        assert results == [{"path": kb_a, "sources": 0, "models": 0,
                            "cubes": 0, "fail_memos": 0}]

    def test_router_syncs_after_failover(self, tmp_path):
        """sync_on_failover: the takeover shard inherits what the dead
        shard had learned, once per (failed, winner) pair."""
        kb_a = str(tmp_path / "a.sqlite")
        kb_b = str(tmp_path / "b.sqlite")
        learn_into(kb_a, "p1")  # the "dead" shard's prior knowledge
        cubes_a = kb_facts(kb_a)
        with running_daemon(tmp_path) as sock_b:
            router = fleet.FleetRouter(
                [fleet.FleetEndpoint("a", str(tmp_path / "dead.sock"), kb_a),
                 fleet.FleetEndpoint("b", sock_b, kb_b)],
                trip_threshold=99, sync_on_failover=True)
            failed_over = 0
            for cid in ("p1", "p2", "p3"):
                fingerprint = router.fingerprint_for(case_request(cid))
                order = fleet.rendezvous_order(fingerprint, router.endpoints)
                failed_over += order[0].name == "a"
                router.check(case_request(cid), fallback=False)
        # At least one bundled case must shard onto A for this to bite.
        assert failed_over > 0
        # One sync per (failed, winner) pair, not one per job.
        assert router.counters["syncs"] == 1
        facts_b = kb_facts(kb_b)
        # B's store now contains at least everything A had learned.
        assert all(b >= a for b, a in zip(facts_b, cubes_a))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestFleetCli:
    def test_fleet_status_json(self, tmp_path, capsys):
        from repro.cli import main

        with running_daemon(tmp_path) as socket_path:
            code = main(["fleet", "status", "--endpoint",
                         "a=%s" % socket_path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["up"] == 1
        assert payload["endpoints"][0]["probe"]["alive"] is True

    def test_fleet_status_all_down_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["fleet", "status",
                     "--endpoint", "a=%s" % (tmp_path / "no.sock")])
        assert code == 1
        assert "DOWN" in capsys.readouterr().out

    def test_fleet_sync_cli(self, tmp_path, capsys):
        from repro.cli import main

        kb_a = str(tmp_path / "a.sqlite")
        kb_b = str(tmp_path / "b.sqlite")
        learn_into(kb_a, "p1")
        learn_into(kb_b, "p2")
        code = main(["fleet", "sync", kb_a, kb_b, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert kb_facts(kb_a) == kb_facts(kb_b)

    def test_fleet_sync_needs_two_stores(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["fleet", "sync", str(tmp_path / "only.sqlite")])
        assert code == 1
        assert "at least two" in capsys.readouterr().err

    def test_fleet_sync_uses_endpoint_kb_paths(self, tmp_path, capsys):
        from repro.cli import main

        kb_a = str(tmp_path / "a.sqlite")
        kb_b = str(tmp_path / "b.sqlite")
        learn_into(kb_a, "p1")
        learn_into(kb_b, "p2")
        code = main(["fleet", "sync",
                     "--endpoint", "a=/no.sock;kb=%s" % kb_a,
                     "--endpoint", "b=/no.sock2;kb=%s" % kb_b])
        assert code == 0
        assert kb_facts(kb_a) == kb_facts(kb_b)

    def test_fleet_batch_cli(self, tmp_path, capsys):
        from repro.cli import main

        with running_daemon(tmp_path) as socket_path:
            code = main(["fleet", "batch", "--case", "p2", "--case", "p3",
                         "--endpoint", "a=%s" % socket_path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["done"] == 2 and payload["lost"] == 0

    COUNTER_VERILOG = (
        "module counter(input clk, input rst, input en,"
        " output [3:0] count);\n"
        "  reg [3:0] count;\n"
        "  always @(posedge clk) begin\n"
        "    if (rst) count <= 0;\n"
        "    else if (en) begin\n"
        "      if (count == 9) count <= 0;\n"
        "      else count <= count + 1;\n"
        "    end\n"
        "  end\n"
        "endmodule\n"
    )

    def test_submit_routes_through_fleet(self, tmp_path, capsys):
        from repro.cli import main

        design = tmp_path / "counter.v"
        design.write_text(self.COUNTER_VERILOG)
        with running_daemon(tmp_path) as socket_path:
            code = main([
                "submit", str(design),
                "--assert", "count <= 9",
                "--endpoint", "a=%s" % socket_path,
                "--no-fallback", "--json",
            ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["source"] == "daemon"
        assert payload["service"]["endpoint"] == "a"
