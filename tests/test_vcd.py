"""Tests for the VCD trace writer."""

import pytest

from repro.checker import AssertionChecker, CheckerOptions, CheckStatus
from repro.netlist import Circuit
from repro.properties import Assertion, Signal
from repro.simulation import Simulator, VcdWriter, trace_to_vcd
from repro.simulation.vcd import _identifier


def build_counter(width=3, limit=5):
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", width)
    at_max = circuit.eq(cnt, limit)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, width))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


# ----------------------------------------------------------------------
# Identifier generation
# ----------------------------------------------------------------------
def test_identifiers_are_unique_and_printable():
    codes = [_identifier(i) for i in range(500)]
    assert len(set(codes)) == 500
    assert all(all(33 <= ord(ch) <= 126 for ch in code) for code in codes)
    with pytest.raises(ValueError):
        _identifier(-1)


# ----------------------------------------------------------------------
# Document structure
# ----------------------------------------------------------------------
def test_header_declares_every_signal():
    writer = VcdWriter("demo", {"clk": 1, "data": 8})
    header = "\n".join(writer.header_lines())
    assert "$scope module demo $end" in header
    assert "$var wire 1" in header and "clk" in header
    assert "$var wire 8" in header and "data" in header
    assert header.strip().endswith("$enddefinitions $end")


def test_requires_at_least_one_signal():
    with pytest.raises(ValueError):
        VcdWriter("demo", {})


def test_format_emits_initial_dump_and_changes_only():
    writer = VcdWriter("demo", {"a": 1, "bus": 4})
    text = writer.format(
        [
            {"a": 0, "bus": 5},
            {"a": 0, "bus": 5},  # no change -> no value lines
            {"a": 1, "bus": 6},
        ]
    )
    assert "$dumpvars" in text
    lines = text.splitlines()
    time1_index = lines.index("#1")
    time2_index = lines.index("#2")
    assert lines[time1_index + 1] == "#2"  # nothing changed at time 1
    changes_at_2 = set(lines[time2_index + 1 : lines.index("#3")])
    assert any(line.startswith("b110 ") for line in changes_at_2)
    assert any(line[0] == "1" and len(line) == 2 for line in changes_at_2)


def test_values_are_masked_to_width():
    writer = VcdWriter("demo", {"bus": 4})
    text = writer.format([{"bus": 0x1F}])
    assert "b1111 " in text  # 0x1F masked to 4 bits


def test_write_file(tmp_path):
    writer = VcdWriter("demo", {"a": 1})
    path = tmp_path / "trace.vcd"
    writer.write_file([{"a": 1}, {"a": 0}], str(path))
    content = path.read_text()
    assert content.startswith("$comment")
    assert content.endswith("\n")


# ----------------------------------------------------------------------
# Integration with simulator and checker traces
# ----------------------------------------------------------------------
def test_trace_to_vcd_defaults_to_interface_signals():
    circuit = build_counter()
    simulator = Simulator(circuit)
    trace = simulator.run([{"en": 1}] * 4)
    text = trace_to_vcd(circuit, trace.cycles)
    assert "$var wire 1" in text and "en" in text
    assert "cnt" in text
    # Internal helper nets are not dumped by default.
    assert "mux_" not in text


def test_counterexample_trace_dumps_cleanly():
    circuit = build_counter()
    checker = AssertionChecker(circuit, options=CheckerOptions(max_frames=8))
    result = checker.check(Assertion("never_three", Signal("cnt") != 3))
    assert result.status is CheckStatus.FAILS
    text = trace_to_vcd(circuit, result.counterexample.trace, signals=["en", "cnt"])
    assert text.count("$var wire") == 2
    assert "#%d" % (result.counterexample.length,) in text
