"""Tests for the deterministic fault-injection framework (:mod:`repro.faults`).

The framework's whole value is determinism: the same (seed, site, hit)
triple always decides the same way, in any process, so chaos schedules
replay bit-identically.  These tests pin the plan syntax (text and JSON),
the schedule math, nth/limit semantics, cross-process counter sharing and
the arm/disarm lifecycle.
"""

import json
import multiprocessing
import os
import subprocess
import sys

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _clean_arming(monkeypatch):
    """Every test starts unarmed and leaves nothing armed behind."""
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    monkeypatch.delenv(faults.SEED_ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.disarm()
    yield
    faults.disarm()


class TestPlanParsing:
    def test_compact_text_round_trips_through_json(self):
        plan = faults.FaultPlan.parse(
            "worker.run:crash:nth=1;kb.flush:torn-write;"
            "client.send:drop-connection:p=0.5;worker.run:sleep:seconds=2",
            seed=7,
        )
        assert len(plan.rules) == 4
        assert plan.seed == 7
        again = faults.FaultPlan.parse(plan.to_json())
        assert again == plan

    def test_json_object_form(self):
        plan = faults.FaultPlan.parse(json.dumps({
            "seed": 3,
            "rules": [
                {"site": "worker.run", "kind": "crash", "nth": 2, "exit_code": 9},
                {"site": "kb.flush", "kind": "fsync-fail"},
            ],
        }))
        assert plan.seed == 3
        assert plan.rules[0] == faults.FaultRule(
            site="worker.run", kind="crash", nth=2, exit_code=9)
        assert plan.rules[1].kind == "fsync-fail"

    def test_empty_plan(self):
        assert faults.FaultPlan.parse("") == faults.FaultPlan()

    @pytest.mark.parametrize("bad", [
        "worker.run",                    # no kind
        "worker.run:explode",            # unknown kind
        "worker.run:crash:wat",          # option without '='
        "worker.run:crash:bogus=1",      # unknown option
        "worker.run:crash:nth=often",    # non-integer value
        "[not json",                     # broken JSON
        '[{"kind": "crash"}]',           # JSON rule without a site
    ])
    def test_bad_plans_raise_typed_error(self, bad):
        with pytest.raises(faults.FaultPlanError):
            faults.FaultPlan.parse(bad)

    def test_every_declared_kind_parses(self):
        for kind in faults.KINDS:
            plan = faults.FaultPlan.parse("some.site:%s" % kind)
            assert plan.rules[0].kind == kind

    def test_site_glob_matching(self):
        rule = faults.FaultRule(site="client.*", kind="error")
        assert rule.matches("client.send")
        assert rule.matches("client.recv")
        assert not rule.matches("worker.run")


class TestSchedule:
    def test_same_seed_same_schedule(self):
        plan = faults.FaultPlan.parse("site.a:error:p=0.3", seed=42)
        baseline = faults.FaultInjector(plan)
        first = [baseline.fire("site.a") is not None for _ in range(50)]
        schedules = []
        for _ in range(3):
            injector = faults.FaultInjector(plan)
            schedules.append([injector.fire("site.a") is not None
                              for _ in range(50)])
        assert all(schedule == schedules[0] for schedule in schedules)
        assert first == schedules[0]
        # A p=0.3 rule over 50 hits fires sometimes and skips sometimes.
        assert 0 < sum(schedules[0]) < 50

    def test_different_seeds_differ(self):
        schedules = []
        for seed in (1, 2, 3, 4):
            plan = faults.FaultPlan.parse("site.a:error:p=0.5", seed=seed)
            injector = faults.FaultInjector(plan)
            schedules.append(tuple(injector.fire("site.a") is not None
                                   for _ in range(64)))
        assert len(set(schedules)) > 1

    def test_nth_fires_exactly_once(self):
        plan = faults.FaultPlan.parse("site.a:error:nth=3")
        injector = faults.FaultInjector(plan)
        fired = [injector.fire("site.a") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_limit_caps_firings(self):
        plan = faults.FaultPlan.parse("site.a:error:limit=2")
        injector = faults.FaultInjector(plan)
        fired = [injector.fire("site.a") is not None for _ in range(5)]
        assert sum(fired) == 2 and fired[:2] == [True, True]

    def test_unrelated_site_never_fires(self):
        plan = faults.FaultPlan.parse("site.a:error")
        injector = faults.FaultInjector(plan)
        assert injector.fire("site.b") is None
        assert injector.hits("site.b") == 0  # non-matching sites are free

    def test_state_dir_shares_counters_across_injectors(self, tmp_path):
        """A respawned process must not re-fire a spent nth rule."""
        plan = faults.FaultPlan.parse("site.a:error:nth=2")
        state = str(tmp_path / "fault-state")
        first = faults.FaultInjector(plan, state_dir=state)
        assert first.fire("site.a") is None      # hit 1
        # "New process": a fresh injector over the same state dir.
        second = faults.FaultInjector(plan, state_dir=state)
        assert second.fire("site.a") is not None  # hit 2 -> fires
        third = faults.FaultInjector(plan, state_dir=state)
        assert third.fire("site.a") is None       # hit 3 -> spent
        assert third.hits("site.a") == 3

    def test_state_dir_counters_survive_real_fork(self, tmp_path):
        plan = faults.FaultPlan.parse("site.a:error:nth=2")
        state = str(tmp_path / "fault-state")
        faults.FaultInjector(plan, state_dir=state).fire("site.a")  # hit 1

        def child(conn):
            injector = faults.FaultInjector(plan, state_dir=state)
            conn.send(injector.fire("site.a") is not None)
            conn.close()

        ctx = multiprocessing.get_context("fork")
        parent, child_end = ctx.Pipe()
        proc = ctx.Process(target=child, args=(child_end,))
        proc.start()
        assert parent.recv() is True  # the fork saw hit 2 and fired
        proc.join(10)


class TestArming:
    def test_unarmed_site_is_inert(self):
        assert faults.maybe_fire("worker.run") is None

    def test_arm_and_disarm(self):
        faults.arm(faults.FaultPlan.parse("site.a:error"))
        with pytest.raises(faults.InjectedFault) as excinfo:
            faults.maybe_fire("site.a")
        assert excinfo.value.site == "site.a"
        faults.disarm()
        assert faults.maybe_fire("site.a") is None

    def test_environment_arms_lazily(self, monkeypatch, tmp_path):
        plan = faults.FaultPlan.parse("site.a:error", seed=5)
        for key, value in faults.plan_environment(
                plan, state_dir=str(tmp_path)).items():
            monkeypatch.setenv(key, value)
        faults.disarm()
        # disarm pins "nothing armed" even with the env set...
        assert faults.maybe_fire("site.a") is None
        # ...until explicitly re-armed or re-read in a fresh process.
        faults._ARMED = None
        armed = faults.injector()
        assert armed is not None
        assert armed.plan == plan
        assert armed.state_dir == str(tmp_path)

    def test_sleep_kind_blocks_briefly(self):
        import time

        faults.arm(faults.FaultPlan.parse("site.a:sleep:seconds=0.1"))
        start = time.monotonic()
        rule = faults.maybe_fire("site.a")
        assert rule is not None and rule.kind == "sleep"
        assert time.monotonic() - start >= 0.09

    def test_special_kinds_are_returned_not_executed(self):
        faults.arm(faults.FaultPlan.parse(
            "a:hang;b:torn-write;c:fsync-fail;d:exhaust-budget;e:drop-connection"))
        for site, kind in [("a", "hang"), ("b", "torn-write"),
                           ("c", "fsync-fail"), ("d", "exhaust-budget"),
                           ("e", "drop-connection")]:
            rule = faults.maybe_fire(site)
            assert rule is not None and rule.kind == kind

    def test_crash_kind_exits_with_code(self, tmp_path):
        """``crash`` must be a hard process death with the configured code."""
        code = subprocess.run(
            [sys.executable, "-c",
             "from repro import faults\n"
             "faults.arm(faults.FaultPlan.parse('site.a:crash:exit_code=23'))\n"
             "faults.maybe_fire('site.a')\n"
             "raise SystemExit(0)"],
            env=dict(os.environ,
                     PYTHONPATH=os.path.join(os.path.dirname(__file__), "..", "src")),
            timeout=60,
        ).returncode
        assert code == 23

    def test_sites_registry_is_well_formed(self):
        assert len(set(faults.SITES)) == len(faults.SITES)
        for site in faults.SITES:
            assert "." in site
