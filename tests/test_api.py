"""Tests for the unified public API (:mod:`repro.api`).

Covers the satellite guarantees of the api_redesign: the
``repro-check-request/v1`` JSON round trip (tolerant of unknown fields and
newer minor schema revisions), the adapter equivalence of
``CheckerOptions`` / ``EngineBudget`` / ``BatchOptions`` over one request,
the property-expression render/parse round trip, and the facade
(``check`` / ``check_batch`` / ``CheckReport``) matching the classic
checker verbatim.
"""

import dataclasses
import json

import pytest

from repro import api
from repro.atpg.statehash import property_search_digest
from repro.checker.engine import AssertionChecker, CheckerOptions
from repro.circuits import all_case_ids, build_case
from repro.netlist import Circuit
from repro.portfolio.batch import BatchOptions
from repro.portfolio.engines import AtpgEngine, EngineBudget
from repro.properties import (
    Assertion,
    Environment,
    Signal,
    Witness,
    format_expression,
    parse_expression,
)


def build_counter(limit: int = 9) -> Circuit:
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    count = circuit.state("count", 4)
    wrapped = circuit.mux(circuit.eq(count, limit),
                          circuit.add(count, circuit.const(1, 4)),
                          circuit.const(0, 4))
    circuit.dff_into(count, circuit.mux(en, count, wrapped), init_value=0)
    circuit.output(count, name="count")
    return circuit


def full_request() -> api.CheckRequest:
    return api.CheckRequest(
        circuit=api.CircuitRef.verilog("designs/foo.v", top="foo"),
        properties=(
            api.PropertySpec.assertion("safe", "count != 12", max_frames=5),
            api.PropertySpec.witness("reach", "count == 2", seed=7),
        ),
        pinned=(("rst", 0),),
        one_hot=(("req0", "req1"),),
        assumptions=("en == 1",),
        initial_state=(("count", 3),),
        init_vectors=((("rst", 1),),),
        engines=("atpg", "random"),
        max_frames=6,
        time_budget=2.5,
        sim_width=16,
        seed=11,
        random_runs=32,
        random_cycles=24,
        bdd_iterations=100,
        bdd_node_limit=50_000,
        incremental=False,
        learning=False,
        kb_path="/tmp/kb.sqlite",
        fsm_guidance=True,
        jobs=3,
        compare=True,
    )


# ----------------------------------------------------------------------
# CheckRequest serialisation
# ----------------------------------------------------------------------
class TestRequestRoundTrip:
    def test_full_round_trip(self):
        request = full_request()
        assert api.CheckRequest.from_json(request.to_json()) == request

    def test_defaults_round_trip(self):
        request = api.CheckRequest(circuit=api.CircuitRef.case("p1"))
        assert api.CheckRequest.from_json(request.to_json()) == request

    def test_unknown_fields_tolerated_everywhere(self):
        payload = full_request().to_dict()
        payload["future_field"] = {"nested": True}
        payload["circuit"]["future_hint"] = "x"
        payload["properties"][0]["future_weight"] = 3
        payload["environment"]["future_clock"] = "clk"
        payload["budget"]["future_budget"] = 9
        payload["search"]["future_switch"] = False
        payload["batch"]["future_shard"] = 4
        assert api.CheckRequest.from_dict(payload) == full_request()

    def test_newer_minor_schema_accepted(self):
        payload = full_request().to_dict()
        payload["schema"] = "repro-check-request/v1.7"
        assert api.CheckRequest.from_dict(payload) == full_request()

    def test_other_major_schema_rejected(self):
        payload = full_request().to_dict()
        payload["schema"] = "repro-check-request/v2"
        with pytest.raises(api.RequestError):
            api.CheckRequest.from_dict(payload)

    def test_missing_circuit_rejected(self):
        with pytest.raises(api.RequestError):
            api.CheckRequest.from_dict({"schema": api.REQUEST_SCHEMA})

    def test_invalid_knobs_rejected(self):
        with pytest.raises(api.RequestError):
            api.CheckRequest(circuit=api.CircuitRef.case("p1"), engines=())
        with pytest.raises(api.RequestError):
            api.CheckRequest(circuit=api.CircuitRef.case("p1"), jobs=0)
        with pytest.raises(api.RequestError):
            api.CheckRequest(circuit=api.CircuitRef.case("p1"), sim_width=0)

    def test_inline_circuit_is_not_serialisable(self):
        request = api.build_request(build_counter(), "count != 12")
        assert not request.circuit.serializable
        with pytest.raises(api.RequestError):
            request.to_dict()


# ----------------------------------------------------------------------
# Property specs and expression rendering
# ----------------------------------------------------------------------
class TestPropertySpecs:
    def test_spec_round_trip_preserves_structure(self):
        prop = Assertion("safe", (Signal("a") & Signal("b")) != 0)
        spec = api.PropertySpec.from_property(prop)
        rebuilt = spec.to_property()
        assert rebuilt.name == "safe"
        assert rebuilt.is_assertion
        assert property_search_digest(rebuilt.expr) == property_search_digest(prop.expr)

    def test_witness_kind_round_trips(self):
        spec = api.PropertySpec.from_property(Witness("reach", Signal("x") == 3))
        assert spec.kind == "witness"
        assert not spec.to_property().is_assertion

    @pytest.mark.parametrize("case_id", all_case_ids())
    def test_bundled_case_properties_render_and_parse(self, case_id):
        prop = build_case(case_id).prop
        text = format_expression(prop.expr)
        assert property_search_digest(parse_expression(text)) == (
            property_search_digest(prop.expr)
        )

    def test_delayed_initial_round_trips(self):
        expr = parse_expression("delayed(x == 1, 2, 1) >> (y == 0)")
        assert parse_expression(format_expression(expr)) is not None
        assert property_search_digest(parse_expression(format_expression(expr))) == (
            property_search_digest(expr)
        )

    def test_bad_expression_rejected_eagerly(self):
        with pytest.raises(Exception):
            api.PropertySpec.assertion("broken", "count ===")


# ----------------------------------------------------------------------
# Adapter equivalence: one request, no second knob list
# ----------------------------------------------------------------------
class TestAdapters:
    def test_checker_options_adapter(self):
        request = full_request()
        options = CheckerOptions.from_request(request)
        assert options.max_frames == request.max_frames
        assert options.incremental is request.incremental
        assert options.learning is request.learning
        assert options.kb_path == request.kb_path
        assert options.use_local_fsm_guidance is request.fsm_guidance

    def test_checker_options_defaults_survive_none(self):
        request = api.CheckRequest(circuit=api.CircuitRef.case("p1"))
        options = CheckerOptions.from_request(request)
        assert options.max_frames == CheckerOptions().max_frames

    def test_engine_budget_adapter(self):
        request = full_request()
        budget = EngineBudget.from_request(request)
        assert budget.time_seconds == request.time_budget
        assert budget.max_frames == request.max_frames
        assert budget.sim_width == request.sim_width
        assert budget.seed == request.seed
        assert budget.random_runs == request.random_runs
        assert budget.random_cycles == request.random_cycles
        assert budget.bdd_iterations == request.bdd_iterations
        assert budget.bdd_node_limit == request.bdd_node_limit

    def test_engine_budget_defaults_survive_none(self):
        request = api.CheckRequest(circuit=api.CircuitRef.case("p1"))
        assert EngineBudget.from_request(request) == EngineBudget()

    def test_batch_options_adapter(self):
        request = full_request()
        options = BatchOptions.from_request(request)
        assert options.jobs == request.jobs
        assert options.run_all is request.compare
        assert options.incremental is request.incremental
        assert options.learning is request.learning
        assert options.kb_path == request.kb_path
        assert options.budget == EngineBudget.from_request(request)
        # fsm_guidance turns the bare "atpg" name into a configured adapter.
        assert isinstance(options.engines[0], AtpgEngine)
        assert options.engines[0].options.use_local_fsm_guidance
        assert options.engines[1] == "random"

    def test_batch_options_plain_engines_without_fsm_guidance(self):
        request = dataclasses.replace(full_request(), fsm_guidance=False)
        options = BatchOptions.from_request(request)
        assert options.engines == ("atpg", "random")


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class TestFacade:
    def test_check_matches_classic_checker(self):
        circuit = build_counter()
        prop = Assertion("no_twelve", Signal("count") != 12)
        classic = AssertionChecker(
            circuit, options=CheckerOptions(max_frames=6)
        ).check(prop)

        report = api.check(api.build_request(build_counter(), prop, max_frames=6))
        assert len(report.results) == 1
        verdict = report.results[0]
        assert verdict.status == classic.status.value
        assert verdict.conclusive
        assert report.exit_code == 0

    def test_check_failing_assertion_reports_trace_and_exit_code(self):
        report = api.check(
            api.build_request(build_counter(), Assertion("bad", Signal("count") != 3),
                              max_frames=8)
        )
        verdict = report.results[0]
        assert verdict.status == "fails"
        assert verdict.trace is not None
        assert report.exit_code == 1

    def test_case_ref_supplies_defaults(self):
        # No properties / bound on the request: the bundled case's own
        # property and max_frames apply.
        request = api.CheckRequest(circuit=api.CircuitRef.case("p1"))
        report = api.check(request)
        case = build_case("p1")
        assert report.results[0].name == case.prop.name
        assert report.results[0].status == case.expected_status.value

    def test_check_batch_forces_portfolio_machinery(self):
        report = api.check_batch(
            api.build_request(build_counter(), Assertion("ok", Signal("count") != 12),
                              max_frames=6)
        )
        assert report.results[0].engines  # per-engine details present
        assert report.results[0].winner == "atpg"

    def test_design_cache_reuses_circuit_objects(self):
        cache = {}
        request = api.CheckRequest(circuit=api.CircuitRef.case("p1"))
        first = api.resolve_design(request.circuit, cache)
        second = api.resolve_design(request.circuit, cache)
        assert first.circuit is second.circuit

    def test_report_json_round_trip(self):
        report = api.check(
            api.build_request(build_counter(), Assertion("bad", Signal("count") != 3),
                              max_frames=8)
        )
        rebuilt = api.CheckReport.from_json(report.to_json())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.exit_code == report.exit_code

    def test_report_tolerates_unknown_fields_and_minor_versions(self):
        payload = api.check(
            api.CheckRequest(circuit=api.CircuitRef.case("p1"))
        ).to_dict()
        payload["schema"] = "repro-check-report/v1.4"
        payload["future"] = 1
        payload["results"][0]["future_detail"] = "x"
        rebuilt = api.CheckReport.from_dict(payload)
        assert rebuilt.results[0].status == payload["results"][0]["status"]

    def test_environment_decomposition_through_build_request(self):
        environment = Environment()
        environment.pin("rst", 0)
        environment.one_hot(["a", "b"])
        environment.assume(parse_expression("en == 1"))
        environment.initialize_with([{"rst": 1}])
        request = api.build_request(build_counter(), "count != 12",
                                    environment=environment)
        rebuilt = request.build_environment()
        assert rebuilt.pinned == {"rst": 0}
        assert [list(g) for g in rebuilt.one_hot_groups] == [["a", "b"]]
        assert len(rebuilt.assumptions) == 1
        assert rebuilt.initialization.vectors == [{"rst": 1}]

    def test_unknown_engine_rejected(self):
        request = api.build_request(build_counter(), "count != 12",
                                    engines=("warp",))
        with pytest.raises(api.RequestError):
            api.check(request)

    def test_request_json_is_camera_ready(self):
        # The wire form groups knobs; spot-check the layout the docs promise.
        payload = json.loads(full_request().to_json())
        assert payload["schema"] == api.REQUEST_SCHEMA
        assert set(payload) >= {"circuit", "properties", "environment",
                                "engines", "bounds", "budget", "search", "batch"}
