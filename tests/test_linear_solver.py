"""Tests for the modular linear constraint solver (Section 4.1 of the paper)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.modsolver.linear import LinearConstraint, ModularLinearSystem
from repro.modsolver.result import Infeasible


def brute_force_solutions(rows, rhs, width):
    """Exhaustively enumerate solutions of A*x = b mod 2**width."""
    num_vars = len(rows[0]) if rows else 0
    modulus = 1 << width
    solutions = []
    for packed in range(modulus ** num_vars):
        values = []
        remaining = packed
        for _ in range(num_vars):
            values.append(remaining % modulus)
            remaining //= modulus
        if all(
            sum(c * v for c, v in zip(row, values)) % modulus == b % modulus
            for row, b in zip(rows, rhs)
        ):
            solutions.append(tuple(values))
    return solutions


# ----------------------------------------------------------------------
# Paper examples
# ----------------------------------------------------------------------
def test_paper_3bit_example_finds_modular_solution():
    """Section 4: [[1,1],[2,7]] x = [5,4] has no integral solution but
    (x, y) = (3, 2) modulo 2**3."""
    system = ModularLinearSystem.from_matrix([[1, 1], [2, 7]], [5, 4], width=3)
    solutions = system.solve()
    assert solutions is not None
    assert system.is_solution({"x0": 3, "x1": 2})
    found = list(solutions.enumerate())
    assert any(s["x0"] == 3 and s["x1"] == 2 for s in found)


def test_paper_fig5_4bit_example():
    """Section 4.1 worked example: the 4-bit system
    [[3,-1,0,-2],[1,2,-2,0]] x = [2,10] has the closed-form solution set the
    paper prints; we check the particular solution and the solution count."""
    rows = [[3, -1, 0, -2], [1, 2, -2, 0]]
    rhs = [2, 10]
    system = ModularLinearSystem.from_matrix(rows, rhs, width=4)
    solutions = system.solve()
    assert solutions is not None
    # The paper's particular solution x0 = (10, 0, 0, 6)^T (a, b, c, d).
    paper_particular = {"x0": 10, "x1": 0, "x2": 0, "x3": 6}
    assert system.is_solution(paper_particular)
    # Every enumerated solution must satisfy the system.
    count = 0
    for solution in solutions.enumerate(limit=512):
        assert system.is_solution(solution)
        count += 1
    # Two free 4-bit variables => 256 distinct solutions.
    assert count == 256


def test_multiplier_false_negative_example_linearised():
    """a * b = c with a = 4, c = 12 over 4 bits: b in {3, 7, 11, 15}."""
    system = ModularLinearSystem(4)
    system.add_constraint({"b": 4}, 12)
    solutions = system.solve()
    values = sorted(s["b"] for s in solutions.enumerate())
    assert values == [3, 7, 11, 15]


# ----------------------------------------------------------------------
# API behaviour
# ----------------------------------------------------------------------
def test_infeasible_system_returns_certificate():
    system = ModularLinearSystem(4)
    system.add_constraint({"x": 2}, 3, tags=("c0",))  # 2x = 3 mod 16: no solution
    result = system.solve()
    assert isinstance(result, Infeasible)
    assert not result  # infeasible results are falsy
    assert result.core == frozenset({"c0"})


def test_contradictory_constants():
    system = ModularLinearSystem(4)
    system.add_constraint({}, 5, tags=("five",))
    result = system.solve()
    assert isinstance(result, Infeasible)
    assert result.core == frozenset({"five"})
    empty = ModularLinearSystem(4)
    empty.add_constraint({}, 0)
    assert empty.solve()


def test_no_variables_no_constraints():
    system = ModularLinearSystem(8)
    solutions = system.solve()
    assert solutions is not None
    assert solutions.solution_count() == 1


def test_more_constraints_than_variables():
    system = ModularLinearSystem(4)
    system.add_constraint({"x": 1}, 5)
    system.add_constraint({"x": 3}, 15)
    solutions = system.solve()
    assert solutions is not None
    assert solutions.particular["x"] == 5
    conflicting = ModularLinearSystem(4)
    conflicting.add_constraint({"x": 1}, 5, tags=("first",))
    conflicting.add_constraint({"x": 1}, 6, tags=("second",))
    result = conflicting.solve()
    assert isinstance(result, Infeasible)
    assert result.core == frozenset({"first", "second"})


def test_substitute_and_free_variables():
    system = ModularLinearSystem(4)
    system.add_constraint({"x": 1, "y": 1}, 6)
    solutions = system.solve()
    assert solutions.num_free_variables == 1
    for value in range(4):
        assignment = solutions.substitute([value])
        assert system.is_solution(assignment)
    with pytest.raises(ValueError):
        solutions.substitute([1, 2])


def test_linear_constraint_helpers():
    constraint = LinearConstraint({"x": 3, "y": 1}, 7)
    assert constraint.evaluate({"x": 1, "y": 4}, 4) == 7
    assert constraint.is_satisfied({"x": 1, "y": 4}, 4)
    assert not constraint.is_satisfied({"x": 1, "y": 5}, 4)


def test_invalid_width_and_ragged_matrix():
    with pytest.raises(ValueError):
        ModularLinearSystem(0)
    with pytest.raises(ValueError):
        ModularLinearSystem.from_matrix([[1, 2], [1]], [0, 0], 4)


# ----------------------------------------------------------------------
# Property-based: agreement with brute force on small systems
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.integers(2, 3),  # width
    st.integers(1, 2),  # variables
    st.integers(1, 2),  # constraints
    st.data(),
)
def test_solver_agrees_with_brute_force(width, num_vars, num_rows, data):
    modulus = 1 << width
    rows = [
        [data.draw(st.integers(0, modulus - 1)) for _ in range(num_vars)]
        for _ in range(num_rows)
    ]
    rhs = [data.draw(st.integers(0, modulus - 1)) for _ in range(num_rows)]
    expected = brute_force_solutions(rows, rhs, width)
    system = ModularLinearSystem.from_matrix(rows, rhs, width)
    solutions = system.solve()
    if not expected:
        assert isinstance(solutions, Infeasible)
        return
    assert not isinstance(solutions, Infeasible)
    variables = system.variables
    enumerated = {
        tuple(solution[v] for v in variables) for solution in solutions.enumerate(limit=4096)
    }
    assert enumerated == set(expected)


# ----------------------------------------------------------------------
# Infeasibility certificates: the reported core is minimal-ish
# ----------------------------------------------------------------------
def _tagged_system(width, tagged_constraints):
    system = ModularLinearSystem(width)
    for tag, (coefficients, rhs) in tagged_constraints.items():
        system.add_constraint(coefficients, rhs, tags=(tag,))
    return system


def _core_members_are_necessary(width, tagged_constraints):
    """Every tag in the core must be necessary: dropping that constraint
    (keeping the rest) must make the remaining *core* satisfiable."""
    result = _tagged_system(width, tagged_constraints).solve()
    assert isinstance(result, Infeasible)
    core = result.core
    assert core and core <= set(tagged_constraints)
    for dropped in core:
        remaining = {
            tag: spec
            for tag, spec in tagged_constraints.items()
            if tag in core and tag != dropped
        }
        assert _tagged_system(width, remaining).solve(), (
            "core member %r is unnecessary" % (dropped,)
        )
    return core


def test_core_is_minimal_for_direct_clash():
    """x = 5 vs x = 6 clash; an unrelated satisfiable constraint on y must
    stay out of the core."""
    core = _core_members_are_necessary(4, {
        "x_is_5": ({"x": 1}, 5),
        "x_is_6": ({"x": 1}, 6),
        "y_is_0": ({"y": 1}, 0),
    })
    assert core == {"x_is_5", "x_is_6"}


def test_core_is_minimal_for_cancelling_combination():
    """The p15 shape: (x+y), (y-w) and (x+w) combine to cancel every
    variable and contradict the constants; all three are necessary, the
    bystander is not."""
    core = _core_members_are_necessary(16, {
        "direct": ({"x": 1, "y": 1}, 7),
        "shift": ({"y": 1, "w": -1}, (-9) % (1 << 16)),
        "cross": ({"x": 1, "w": 1}, 9),
        "bystander": ({"z": 3}, 1),
    })
    assert core == {"direct", "shift", "cross"}


def test_core_for_unsolvable_congruence_after_elimination():
    """2x = 3 reached only after eliminating y through two other rows."""
    core = _core_members_are_necessary(4, {
        "sum": ({"x": 1, "y": 1}, 1),
        "double": ({"x": 3, "y": 1}, 4),  # subtracting: 2x = 3 (mod 16)
        "free": ({"z": 1, "w": 5}, 11),
    })
    assert core == {"sum", "double"}
