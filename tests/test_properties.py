"""Tests for the property expression layer, compiler and environments."""

import pytest

from repro.netlist import Circuit
from repro.properties import (
    And,
    Assertion,
    AtMostOneHot,
    Delayed,
    Environment,
    Implies,
    Not,
    OneHot,
    Or,
    Signal,
    Witness,
)
from repro.properties.convert import PropertyCompiler
from repro.properties.spec import BinOp
from repro.simulation import Simulator


def build_simple_circuit():
    circuit = Circuit("demo")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    circuit.output(circuit.add(a, b), name="total")
    return circuit


# ----------------------------------------------------------------------
# Expression construction
# ----------------------------------------------------------------------
def test_operator_overloading_builds_ast():
    expr = (Signal("a") + 1) == Signal("b")
    assert isinstance(expr, BinOp)
    assert expr.op == "=="
    assert sorted(expr.signals()) == ["a", "b"]


def test_boolean_combinators():
    expr = And(Signal("x") == 1, Or(Signal("y") == 0, Not(Signal("z") == 2)))
    assert sorted(expr.signals()) == ["x", "y", "z"]
    implication = Signal("p").implies(Signal("q"))
    assert isinstance(implication, Implies)


def test_expression_validation():
    with pytest.raises(ValueError):
        And(Signal("a"))
    with pytest.raises(ValueError):
        Or(Signal("a"))
    with pytest.raises(ValueError):
        OneHot(Signal("a"))
    with pytest.raises(ValueError):
        Delayed(Signal("a"), cycles=0)
    with pytest.raises(TypeError):
        Signal("a") == 1.5
    with pytest.raises(ValueError):
        BinOp("**", Signal("a"), Signal("b"))


def test_delayed_tracks_depth_through_signals():
    expr = Delayed(Signal("x") == 3, cycles=2)
    assert expr.signals() == ["x"]


# ----------------------------------------------------------------------
# Property compilation to monitor logic
# ----------------------------------------------------------------------
def test_compile_assertion_monitor_semantics():
    circuit = build_simple_circuit()
    compiler = PropertyCompiler(circuit)
    compiled = compiler.compile(Assertion("sum_small", Signal("total") <= 10))
    assert compiled.goal_value == 0  # counterexample requires the monitor low
    assert compiled.warmup_frames == 0
    simulator = Simulator(circuit)
    out = simulator.step({"a": 3, "b": 4})
    assert out[compiled.monitor.name] == 1
    # 9 + 3 = 12 > 10 violates the property.  (9 + 9 would *not*: the 4-bit
    # sum wraps to 2, exactly the modulation effect the paper cares about.)
    out = simulator.step({"a": 9, "b": 3})
    assert out[compiled.monitor.name] == 0


def test_compile_witness_goal_value():
    circuit = build_simple_circuit()
    compiled = PropertyCompiler(circuit).compile(Witness("hit", Signal("total") == 7))
    assert compiled.goal_value == 1


def test_compile_arithmetic_and_logic_operators():
    circuit = build_simple_circuit()
    compiler = PropertyCompiler(circuit)
    expr = And(
        (Signal("a") + Signal("b")) == Signal("total"),
        (Signal("a") & Signal("b")) <= 15,
        ((Signal("a") ^ Signal("b")) | Signal("a")) >= 0,
        (Signal("a") - Signal("b")) != 1,
        (Signal("a") * Signal("b")) >= 0,
    )
    monitor = compiler.compile_condition(expr)
    simulator = Simulator(circuit)
    # a - b = 2 satisfies the "!= 1" conjunct; every other conjunct holds too.
    out = simulator.step({"a": 6, "b": 4})
    assert out[monitor.name] == 1
    # a - b = 1 violates the "!= 1" conjunct, so the conjunction is false.
    out = simulator.step({"a": 6, "b": 5})
    assert out[monitor.name] == 0


def test_compile_onehot_and_atmostone():
    circuit = Circuit("flags")
    flags = [circuit.input("f%d" % i, 1) for i in range(3)]
    compiler = PropertyCompiler(circuit)
    onehot = compiler.compile_condition(OneHot(*[Signal(f.name) for f in flags]))
    atmost = compiler.compile_condition(AtMostOneHot(*[Signal(f.name) for f in flags]))
    simulator = Simulator(circuit)
    out = simulator.step({"f0": 1, "f1": 0, "f2": 0})
    assert out[onehot.name] == 1 and out[atmost.name] == 1
    out = simulator.step({"f0": 1, "f1": 1, "f2": 0})
    assert out[onehot.name] == 0 and out[atmost.name] == 0
    out = simulator.step({"f0": 0, "f1": 0, "f2": 0})
    assert out[onehot.name] == 0 and out[atmost.name] == 1


def test_compile_delayed_builds_monitor_register():
    circuit = build_simple_circuit()
    compiler = PropertyCompiler(circuit)
    compiled = compiler.compile(
        Assertion("stable", Implies(Delayed(Signal("total") == 5), Signal("total") == 5))
    )
    assert compiled.warmup_frames == 1
    # The Delayed register shows up as an extra flip-flop.
    assert any(ff.q.name.startswith("monitor_delay") for ff in circuit.flip_flops)


def test_compile_width_mismatch_is_zero_extended():
    circuit = Circuit("w")
    small = circuit.input("small", 2)
    big = circuit.input("big", 6)
    monitor = PropertyCompiler(circuit).compile_condition(Signal("small") == Signal("big"))
    simulator = Simulator(circuit)
    assert simulator.step({"small": 3, "big": 3})[monitor.name] == 1
    assert simulator.step({"small": 3, "big": 35})[monitor.name] == 0


def test_compile_unknown_signal_raises():
    circuit = build_simple_circuit()
    with pytest.raises(KeyError):
        PropertyCompiler(circuit).compile(Assertion("bad", Signal("nope") == 1))


# ----------------------------------------------------------------------
# Environments
# ----------------------------------------------------------------------
def test_environment_pin_and_one_hot():
    environment = Environment()
    environment.pin("mode", 2).one_hot(["r0", "r1", "r2"])
    assert not environment.is_empty()
    assert environment.satisfied_by({"mode": 2, "r0": 1, "r1": 0, "r2": 0})
    assert not environment.satisfied_by({"mode": 1, "r0": 1, "r1": 0, "r2": 0})
    assert not environment.satisfied_by({"mode": 2, "r0": 1, "r1": 1, "r2": 0})
    with pytest.raises(ValueError):
        environment.one_hot(["only_one"])


def test_environment_initialization_sequence():
    circuit = Circuit("init")
    load = circuit.input("load", 1)
    value = circuit.input("value", 4)
    reg = circuit.state("reg", 4)
    circuit.dff_into(reg, value, enable=load, init_value=0)
    circuit.output(reg)

    environment = Environment().initialize_with(
        [{"load": 1, "value": 9}, {"load": 0, "value": 0}]
    )
    state = environment.initialization.derive_initial_state(circuit)
    assert state["reg"] == 9


def test_environment_consistent_vector():
    circuit = Circuit("env")
    for name in ("r0", "r1", "r2"):
        circuit.input(name, 1)
    circuit.input("mode", 2)
    environment = Environment().pin("mode", 3).one_hot(["r0", "r1", "r2"])
    vector = environment.random_consistent_vector(circuit)
    assert environment.satisfied_by(vector)
    assert vector["mode"] == 3
