"""Tests for the random-simulation baseline checker."""

from repro.baselines import RandomSimulationChecker, RandomSimulationOptions
from repro.checker import AssertionChecker, CheckerOptions, CheckStatus
from repro.netlist import Circuit
from repro.properties import Assertion, Environment, Signal, Witness


def build_counter(limit=5, width=3):
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", width)
    at_max = circuit.eq(cnt, limit)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, width))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


def build_corner_case_circuit():
    """A bug that only fires for one specific 12-bit input value -- the
    corner-case situation the paper's introduction describes."""
    circuit = Circuit("corner")
    key = circuit.input("key", 12)
    circuit.output(circuit.eq(key, 0xABC), name="bug")
    return circuit


# ----------------------------------------------------------------------
def test_easy_counterexample_found_by_random_simulation():
    circuit = build_counter()
    checker = RandomSimulationChecker(
        circuit, options=RandomSimulationOptions(num_runs=8, cycles_per_run=16, seed=7)
    )
    result = checker.check(Assertion("never_two", Signal("cnt") != 2))
    assert result.status is CheckStatus.FAILS
    assert result.counterexample is not None
    assert result.counterexample.validated
    # The trace really does reach cnt == 2 at the reported frame.
    frame = result.counterexample.target_frame
    assert result.counterexample.trace[frame]["cnt"] == 2


def test_true_assertion_reported_as_holding():
    circuit = build_counter()
    checker = RandomSimulationChecker(
        circuit, options=RandomSimulationOptions(num_runs=4, cycles_per_run=8)
    )
    result = checker.check(Assertion("never_seven", Signal("cnt") != 7))
    assert result.status is CheckStatus.HOLDS
    assert result.counterexample is None
    assert checker.vectors_simulated == 4 * 8


def test_witness_search_counts_vectors():
    circuit = build_counter()
    checker = RandomSimulationChecker(
        circuit, options=RandomSimulationOptions(num_runs=8, cycles_per_run=16, seed=3)
    )
    result = checker.check(Witness("reach_four", Signal("cnt") == 4))
    assert result.status in (CheckStatus.WITNESS_FOUND, CheckStatus.WITNESS_NOT_FOUND)
    assert checker.vectors_simulated > 0
    assert result.frames_explored == checker.vectors_simulated


def test_corner_case_bug_usually_missed_but_found_by_atpg():
    """The motivating comparison: random simulation misses a 1-in-4096 corner
    case within a small budget while the word-level ATPG engine finds it."""
    circuit = build_corner_case_circuit()
    prop = Assertion("no_bug", Signal("bug") == 0)

    random_result = RandomSimulationChecker(
        circuit,
        options=RandomSimulationOptions(num_runs=4, cycles_per_run=16, seed=11),
    ).check(prop)
    assert random_result.status is CheckStatus.HOLDS  # missed (inconclusive)

    atpg_result = AssertionChecker(circuit, options=CheckerOptions(max_frames=1)).check(prop)
    assert atpg_result.status is CheckStatus.FAILS
    assert atpg_result.counterexample.inputs[0]["key"] == 0xABC


def test_environment_constraints_respected_by_random_vectors():
    circuit = Circuit("pair")
    r0 = circuit.input("r0", 1)
    r1 = circuit.input("r1", 1)
    circuit.output(circuit.and_(r0, r1), name="both")
    environment = Environment().one_hot(["r0", "r1"]).pin("r1", 0)
    checker = RandomSimulationChecker(
        circuit,
        environment=environment,
        options=RandomSimulationOptions(num_runs=4, cycles_per_run=8, seed=5),
    )
    result = checker.check(Assertion("never_both", Signal("both") == 0))
    assert result.status is CheckStatus.HOLDS
    # Every simulated vector honoured the pin.
    assert checker.vectors_simulated == 32


def test_deterministic_given_same_seed():
    circuit = build_counter()
    options = RandomSimulationOptions(num_runs=4, cycles_per_run=8, seed=42)
    first = RandomSimulationChecker(build_counter(), options=options).check(
        Witness("reach_five", Signal("cnt") == 5)
    )
    second = RandomSimulationChecker(build_counter(), options=options).check(
        Witness("reach_five", Signal("cnt") == 5)
    )
    assert first.status == second.status
    assert first.frames_explored == second.frames_explored
