"""Tests for the assignment store and the implication engine."""

import pytest

from repro.bitvector import BV3
from repro.bitvector.bv3 import bv
from repro.implication import Assignment, ImplicationConflict, ImplicationEngine, ImplicationNode
from repro.implication.rules import build_rule, forward_simulate
from repro.netlist import Circuit


# ----------------------------------------------------------------------
# Assignment store
# ----------------------------------------------------------------------
def test_assignment_basic_refinement():
    store = Assignment()
    store.register("x", 4)
    assert store.get("x") == BV3.unknown(4)
    assert store.assign("x", bv("1xxx"))
    assert not store.assign("x", bv("1xxx"))  # no new information
    assert store.assign("x", bv("x0xx"))
    assert store.get("x") == bv("10xx")
    assert store.is_assigned("x")
    assert list(store.known_keys()) == ["x"]


def test_assignment_conflict():
    store = Assignment()
    store.assign("x", bv("1xxx"))
    with pytest.raises(ImplicationConflict):
        store.assign("x", bv("0xxx"))


def test_assignment_width_checks():
    store = Assignment()
    store.register("x", 4)
    with pytest.raises(ValueError):
        store.assign("x", bv("1x"))
    with pytest.raises(ValueError):
        store.register("x", 5)
    with pytest.raises(KeyError):
        store.get("unknown_key")


def test_backtracking_restores_partially_implied_values():
    """The paper's point: after backtrack a word-level signal returns to its
    previous *partially implied* cube, not to fully unknown."""
    store = Assignment()
    store.assign("x", bv("1xxx"))
    store.push_level()
    store.assign("x", bv("10xx"))
    store.assign("y", bv("01"))
    store.push_level()
    store.assign("x", bv("101x"))
    assert store.decision_level == 2
    store.pop_level()
    assert store.get("x") == bv("10xx")
    store.pop_level()
    assert store.get("x") == bv("1xxx")
    assert store.get("y").is_fully_unknown()
    with pytest.raises(RuntimeError):
        store.pop_level()


def test_pop_all_levels():
    store = Assignment()
    store.push_level()
    store.assign("a", bv("1"))
    store.push_level()
    store.assign("b", bv("0"))
    store.pop_all_levels()
    assert store.decision_level == 0
    assert not store.is_assigned("a")


# ----------------------------------------------------------------------
# Engine propagation
# ----------------------------------------------------------------------
def build_adder_network():
    """x + y = s ; s > 7 -> flag, as two nodes over keys."""
    circuit = Circuit("net")
    x = circuit.input("x", 4)
    y = circuit.input("y", 4)
    s = circuit.add(x, y, name="s")
    flag = circuit.gt(s, 7, name="flag")

    engine = ImplicationEngine()
    # Every combinational gate (including the constant feeding the
    # comparator) becomes one implication node.
    for gate in circuit.combinational_gates():
        semantics = build_rule(gate)
        node = ImplicationNode(
            gate.output.name,
            [net.name for net in semantics.pins],
            semantics.imply,
            semantics.num_outputs,
            tag=(gate, 0),
        )
        engine.add_node(node, widths=[net.width for net in semantics.pins])
    engine.enqueue(engine.nodes)
    engine.propagate()
    return circuit, engine


def test_engine_propagates_through_chain():
    circuit, engine = build_adder_network()
    engine.assign("x", BV3.from_int(4, 9))
    engine.assign("y", BV3.from_int(4, 3))
    assert engine.assignment.get("s").to_int() == 12
    assert engine.assignment.get("flag").to_int() == 1


def test_engine_backward_implication_and_conflict():
    circuit, engine = build_adder_network()
    engine.assign("flag", BV3.from_int(1, 1))
    engine.assign("x", BV3.from_int(4, 0))
    # y + 0 > 7 -> y must be at least 8: its MSB is implied 1.
    assert engine.assignment.get("y").bit(3) == 1
    with pytest.raises(ImplicationConflict):
        engine.assign("y", BV3.from_int(4, 3))


def test_engine_backtracking_with_levels():
    circuit, engine = build_adder_network()
    engine.assign("x", BV3.from_int(4, 1))
    engine.push_level()
    engine.assign("y", BV3.from_int(4, 2))
    assert engine.assignment.get("s").to_int() == 3
    engine.pop_level()
    assert engine.assignment.get("s").is_fully_unknown() or not engine.assignment.get(
        "s"
    ).is_fully_known()
    assert engine.assignment.get("x").to_int() == 1


def test_justification_detection():
    circuit, engine = build_adder_network()
    # Require the adder output without justifying its inputs.
    engine.assign("s", BV3.from_int(4, 5))
    adder_node = engine.nodes[0]
    assert not engine.is_justified(adder_node)
    assert adder_node in engine.unjustified_nodes()
    # Once the inputs force the value, the node becomes justified.
    engine.assign("x", BV3.from_int(4, 2))
    engine.assign("y", BV3.from_int(4, 3))
    assert engine.is_justified(adder_node)
    assert adder_node not in engine.unjustified_nodes()


def test_forward_simulate_helper():
    circuit = Circuit("c")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    s = circuit.add(a, b)
    outputs = forward_simulate(s.driver, [BV3.from_int(4, 3), BV3.from_int(4, 4)])
    assert outputs[0].to_int() == 7


def test_implication_counts_tracked():
    circuit, engine = build_adder_network()
    engine.assign("x", BV3.from_int(4, 9))
    assert engine.implication_count >= 1
    assert engine.node_evaluations >= 1
