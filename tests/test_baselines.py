"""Tests for the bit-level SAT baseline and the rational-solver baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    CircuitBitBlaster,
    CNFFormula,
    DPLLSolver,
    RationalLinearSolver,
    SATBoundedChecker,
    SATResult,
    TseitinEncoder,
)
from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.result import CheckStatus
from repro.modsolver.linear import ModularLinearSystem
from repro.netlist import Circuit
from repro.properties import Assertion, Environment, Signal, Witness
from repro.simulation import Simulator


# ----------------------------------------------------------------------
# CNF / DPLL
# ----------------------------------------------------------------------
def test_cnf_formula_basics():
    formula = CNFFormula()
    a, b = formula.new_variables(2)
    formula.add_clause(a, b)
    formula.add_unit(-a)
    assert len(formula) == 2
    assert formula.memory_estimate_bytes() > 0
    with pytest.raises(ValueError):
        formula.add_clause()
    with pytest.raises(ValueError):
        formula.add_clause(0)


def test_dpll_simple_sat_and_unsat():
    formula = CNFFormula()
    a, b = formula.new_variables(2)
    formula.add_clause(a, b)
    formula.add_clause(-a, b)
    solver = DPLLSolver(formula)
    assert solver.solve() is SATResult.SAT
    assert solver.value(b) is True

    unsat = CNFFormula()
    x = unsat.new_variable()
    unsat.add_clause(x)
    unsat.add_clause(-x)
    assert DPLLSolver(unsat).solve() is SATResult.UNSAT


def test_dpll_assumptions():
    formula = CNFFormula()
    a = formula.new_variable()
    b = formula.new_variable()
    formula.add_clause(-a, b)
    solver = DPLLSolver(formula)
    assert solver.solve(assumptions=[a, -b]) is SATResult.UNSAT
    assert solver.solve(assumptions=[a]) is SATResult.SAT


def test_tseitin_gate_encodings_are_functionally_correct():
    """Exhaustively check AND/OR/XOR/MUX encodings against Python semantics."""
    for inputs in range(4):
        x_val = bool(inputs & 1)
        y_val = bool(inputs & 2)
        encoder = TseitinEncoder()
        formula = encoder.formula
        x, y = formula.new_variables(2)
        gates = {
            "and": (encoder.and_gate([x, y]), x_val and y_val),
            "or": (encoder.or_gate([x, y]), x_val or y_val),
            "xor": (encoder.xor_gate(x, y), x_val ^ y_val),
            "eq": (encoder.equal_gate(x, y), x_val == y_val),
            "mux": (encoder.mux_gate(x, y, encoder.constant(True)), True if x_val else y_val),
        }
        assumptions = [x if x_val else -x, y if y_val else -y]
        solver = DPLLSolver(formula)
        assert solver.solve(assumptions) is SATResult.SAT
        for name, (literal, expected) in gates.items():
            model_value = solver.value(abs(literal))
            if literal < 0:
                model_value = not model_value
            assert model_value == expected, name


def test_word_add_and_compare_encodings():
    encoder = TseitinEncoder()
    formula = encoder.formula
    a_bits = formula.new_variables(4)
    b_bits = formula.new_variables(4)
    total, carry = encoder.word_add(a_bits, b_bits)
    less = encoder.word_less_than(a_bits, b_bits)
    assumptions = []
    for i, bit in enumerate(a_bits):
        assumptions.append(bit if (9 >> i) & 1 else -bit)
    for i, bit in enumerate(b_bits):
        assumptions.append(bit if (12 >> i) & 1 else -bit)
    solver = DPLLSolver(formula)
    assert solver.solve(assumptions) is SATResult.SAT
    value = 0
    for i, literal in enumerate(total):
        bit = solver.value(abs(literal))
        if literal < 0:
            bit = not bit
        value |= (1 if bit else 0) << i
    assert value == (9 + 12) & 15
    less_value = solver.value(abs(less))
    if less < 0:
        less_value = not less_value
    assert less_value is True  # 9 < 12


# ----------------------------------------------------------------------
# Bit-blasting equivalence against the simulator
# ----------------------------------------------------------------------
def build_mixed_circuit():
    circuit = Circuit("mixed")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    sel = circuit.input("sel", 1)
    total = circuit.add(a, b)
    difference = circuit.sub(a, b)
    result = circuit.mux(sel, total, difference, name="result")
    circuit.output(result)
    circuit.output(circuit.gt(a, b), name="a_bigger")
    circuit.output(circuit.and_(a, b), name="both")
    return circuit


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
def test_bitblast_matches_simulator(a_val, b_val, sel_val):
    circuit = build_mixed_circuit()
    blaster = CircuitBitBlaster(circuit, num_frames=1)
    for name, value in (("a", a_val), ("b", b_val), ("sel", sel_val)):
        blaster.constrain_value(circuit.net(name), 0, value)
    solver = DPLLSolver(blaster.formula)
    assert solver.solve() is SATResult.SAT

    simulator = Simulator(circuit)
    expected = simulator.step({"a": a_val, "b": b_val, "sel": sel_val})
    for name in ("result", "a_bigger", "both"):
        assert blaster.model_value(solver, circuit.net(name), 0) == expected[name]


def test_bitblast_sequential_register_linking():
    circuit = Circuit("seq")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", 3)
    circuit.dff_into(cnt, circuit.mux(en, cnt, circuit.add(cnt, 1)), init_value=0)
    circuit.output(cnt)
    blaster = CircuitBitBlaster(circuit, num_frames=3)
    for frame in range(3):
        blaster.constrain_value(en, frame, 1)
    solver = DPLLSolver(blaster.formula)
    assert solver.solve() is SATResult.SAT
    assert blaster.model_value(solver, cnt, 0) == 0
    assert blaster.model_value(solver, cnt, 1) == 1
    assert blaster.model_value(solver, cnt, 2) == 2


# ----------------------------------------------------------------------
# SAT bounded checker agrees with the word-level checker
# ----------------------------------------------------------------------
def build_counter():
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", 4)
    at_max = circuit.eq(cnt, 9)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, 4))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


@pytest.mark.parametrize(
    "prop, expected, frames",
    [
        (Assertion("never_three", Signal("cnt") != 3), CheckStatus.FAILS, 5),
        (Witness("reach_two", Signal("cnt") == 2), CheckStatus.WITNESS_FOUND, 5),
        (Assertion("bounded", Signal("cnt") <= 9), CheckStatus.HOLDS, 3),
    ],
)
def test_sat_checker_verdicts(prop, expected, frames):
    checker = SATBoundedChecker(build_counter(), max_frames=frames)
    result = checker.check(prop)
    assert result.status is expected
    assert result.clauses > 0


def test_sat_and_word_level_agree_on_alu():
    circuit = Circuit("alu")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    circuit.output(circuit.add(a, b), name="sum")
    prop = Witness("target", Signal("sum") == 11)

    word_result = AssertionChecker(circuit, options=CheckerOptions(max_frames=1)).check(prop)
    sat_result = SATBoundedChecker(circuit, max_frames=1).check(prop)
    assert word_result.status is CheckStatus.WITNESS_FOUND
    assert sat_result.status is CheckStatus.WITNESS_FOUND
    a_val, b_val = sat_result.trace_inputs[0]["a"], sat_result.trace_inputs[0]["b"]
    assert (a_val + b_val) & 15 == 11


def test_sat_checker_respects_environment():
    circuit = Circuit("pair")
    r0 = circuit.input("r0", 1)
    r1 = circuit.input("r1", 1)
    circuit.output(circuit.and_(r0, r1), name="both")
    environment = Environment().one_hot(["r0", "r1"])
    checker = SATBoundedChecker(circuit, environment=environment, max_frames=1)
    result = checker.check(Assertion("never_both", Signal("both") == 0))
    assert result.status is CheckStatus.HOLDS


# ----------------------------------------------------------------------
# Rational solver false negatives
# ----------------------------------------------------------------------
def test_rational_solver_finds_plain_integer_solution():
    solver = RationalLinearSolver(width=4)
    solution = solver.solve_matrix([[1, 1], [1, -1]], [10, 2])
    assert solution == [6, 4]


def test_rational_solver_misses_wraparound_solution():
    """The paper's Section 4 example: only the modular solver finds (3, 2)."""
    rows, rhs = [[1, 1], [2, 7]], [5, 4]
    rational = RationalLinearSolver(width=3).solve_matrix(rows, rhs)
    assert rational is None  # the unique rational solution is non-integral
    modular = ModularLinearSystem.from_matrix(rows, rhs, width=3).solve()
    assert modular is not None  # ... but a bit-vector solution exists


def test_rational_solver_rejects_out_of_range_values():
    solver = RationalLinearSolver(width=3)
    assert solver.solve_matrix([[1]], [200]) is None


def test_rational_solver_inconsistent_system():
    solver = RationalLinearSolver(width=4)
    assert solver.solve_matrix([[1, 1], [1, 1]], [3, 4]) is None


def test_rational_solver_width_validation():
    with pytest.raises(ValueError):
        RationalLinearSolver(0)
