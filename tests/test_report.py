"""Tests for the result reporting helpers (text and JSON)."""

import json

import pytest

from repro.checker import (
    AssertionChecker,
    CheckerOptions,
    format_result,
    format_results_table,
    result_to_dict,
    results_to_json,
)
from repro.netlist import Circuit
from repro.properties import Assertion, Signal, Witness


def build_counter(limit=5, width=3):
    circuit = Circuit("counter")
    cnt = circuit.state("cnt", width)
    at_max = circuit.eq(cnt, limit)
    circuit.dff_into(
        cnt, circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, width)), init_value=0
    )
    circuit.output(cnt)
    return circuit


@pytest.fixture(scope="module")
def sample_results():
    circuit = build_counter()
    checker = AssertionChecker(circuit, options=CheckerOptions(max_frames=8))
    holds = checker.check(Assertion("never_seven", Signal("cnt") != 7))
    witness = checker.check(Witness("reach_three", Signal("cnt") == 3))
    fails = checker.check(Assertion("never_two", Signal("cnt") != 2))
    return holds, witness, fails


def test_result_to_dict_fields(sample_results):
    holds, witness, fails = sample_results
    payload = result_to_dict(holds)
    assert payload["property"] == "never_seven"
    assert payload["kind"] == "assertion"
    assert payload["status"] == "holds"
    assert payload["cpu_seconds"] >= 0
    assert "trace" not in payload

    failing = result_to_dict(fails)
    assert failing["status"] == "fails"
    assert failing["trace"]["validated"] is True
    assert len(failing["trace"]["inputs"]) == failing["trace"]["length"]

    found = result_to_dict(witness)
    assert found["kind"] == "witness"
    assert found["status"] == "witness_found"


def test_results_to_json_round_trips(sample_results):
    text = results_to_json(sample_results)
    decoded = json.loads(text)
    assert len(decoded) == 3
    assert {entry["property"] for entry in decoded} == {
        "never_seven",
        "reach_three",
        "never_two",
    }


def test_format_result_mentions_verdict_and_trace(sample_results):
    holds, witness, fails = sample_results
    text = format_result(fails)
    assert "never_two" in text
    assert "fails" in text
    assert "counterexample" in text
    assert "frame" in text

    no_trace = format_result(fails, include_trace=False)
    assert "counterexample" not in no_trace

    witness_text = format_result(witness)
    assert "witness trace" in witness_text


def test_format_results_table_shape(sample_results):
    holds, witness, fails = sample_results
    table = format_results_table([holds, witness, fails])
    lines = table.splitlines()
    assert len(lines) == 2 + 3  # header, separator, one row per result
    assert "never_seven" in lines[2]
    assert "holds" in lines[2]


def test_format_results_table_with_paper_columns(sample_results):
    holds, witness, fails = sample_results
    table = format_results_table(
        [holds, fails],
        labels=["p1", "p2"],
        paper_cpu={"p1": 0.08, "p2": 0.09},
        paper_memory={"p1": 0.01},
    )
    assert "paper cpu" in table
    assert "0.08" in table
    # Missing paper data renders as a dash.
    assert " -" in table.splitlines()[3]


def test_format_results_table_label_mismatch(sample_results):
    holds, _, _ = sample_results
    with pytest.raises(ValueError):
        format_results_table([holds], labels=["a", "b"])
