"""Tests for the Verilog-subset front end (lexer, parser, elaborator)."""

import pytest

from repro import AssertionChecker, Assertion, CheckerOptions, CheckStatus, Signal, Witness
from repro.hdl import ParseError, compile_verilog, parse_verilog
from repro.hdl.ast import BinaryOp, CaseStmt, IfStmt, Number, TernaryOp
from repro.hdl.elaborate import ElaborationError
from repro.hdl.lexer import Lexer, TokenKind, parse_number_literal
from repro.simulation import Simulator


COUNTER_SOURCE = """
// bounded counter with synchronous clear on overflow
module counter(input clk, input rst, input en, output [3:0] count);
  reg [3:0] count;
  wire at_max;
  assign at_max = (count == 4'd9);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count <= 4'd0;
    end else begin
      if (en) begin
        if (at_max) count <= 4'd0;
        else count <= count + 4'd1;
      end
    end
  end
endmodule
"""

ALU_SOURCE = """
module alu(input [3:0] a, input [3:0] b, input [1:0] op, output [3:0] result,
           output zero);
  wire [3:0] result;
  assign result = (op == 2'd0) ? a + b :
                  (op == 2'd1) ? a - b :
                  (op == 2'd2) ? (a & b) : (a | b);
  assign zero = (result == 4'd0);
endmodule
"""

CASE_SOURCE = """
module decoder(input clk, input [1:0] sel, output [3:0] onehot);
  reg [3:0] onehot;
  always @(posedge clk) begin
    case (sel)
      2'd0: onehot <= 4'b0001;
      2'd1: onehot <= 4'b0010;
      2'd2: onehot <= 4'b0100;
      default: onehot <= 4'b1000;
    endcase
  end
endmodule
"""


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
def test_lexer_tokenizes_keywords_numbers_operators():
    tokens = Lexer("module m; assign x = 4'b1010 + y; endmodule").tokenize()
    kinds = [t.kind for t in tokens]
    assert TokenKind.KEYWORD in kinds
    assert TokenKind.BASED_NUMBER in kinds
    assert tokens[-1].kind is TokenKind.EOF


def test_lexer_skips_comments():
    tokens = Lexer("// line comment\n/* block\ncomment */ module").tokenize()
    assert tokens[0].is_keyword("module")


def test_lexer_reports_bad_characters():
    with pytest.raises(SyntaxError):
        Lexer("module `bad").tokenize()
    with pytest.raises(SyntaxError):
        Lexer("/* unterminated").tokenize()


def test_number_literal_parsing():
    assert parse_number_literal("13") == (None, 13)
    assert parse_number_literal("4'b1010") == (4, 10)
    assert parse_number_literal("8'hff") == (8, 255)
    assert parse_number_literal("6'd59") == (6, 59)
    with pytest.raises(ValueError):
        parse_number_literal("4'b10xz")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def test_parser_builds_module_structure():
    module = parse_verilog(COUNTER_SOURCE)[0]
    assert module.name == "counter"
    assert {p.name for p in module.ports} == {"clk", "rst", "en", "count"}
    assert module.port("count").width == 4
    assert module.port("count").direction == "output"
    assert len(module.assigns) == 1
    assert len(module.always_blocks) == 1
    block = module.always_blocks[0]
    assert block.clock == "clk"
    assert block.reset == "rst"
    assert isinstance(block.body[0], IfStmt)


def test_parser_expressions_and_ternary():
    module = parse_verilog(ALU_SOURCE)[0]
    assign = module.assigns[0]
    assert isinstance(assign.expr, TernaryOp)
    assert isinstance(assign.expr.condition, BinaryOp)


def test_parser_case_statement():
    module = parse_verilog(CASE_SOURCE)[0]
    statement = module.always_blocks[0].body[0]
    assert isinstance(statement, CaseStmt)
    assert len(statement.items) == 3
    assert statement.default


def test_parser_parameters_fold():
    source = """
    module p(input [3:0] a, output y);
      parameter LIMIT = 9;
      assign y = (a == LIMIT);
    endmodule
    """
    module = parse_verilog(source)[0]
    comparison = module.assigns[0].expr
    assert isinstance(comparison.rhs, Number)
    assert comparison.rhs.value == 9


def test_parser_errors():
    with pytest.raises(ParseError):
        parse_verilog("module m(input a; endmodule")  # missing paren
    with pytest.raises(ParseError):
        parse_verilog("")
    with pytest.raises(ParseError):
        parse_verilog("module m(); wire w; always @(w) begin end endmodule")


# ----------------------------------------------------------------------
# Elaboration
# ----------------------------------------------------------------------
def test_elaborated_counter_behaves_like_hand_built():
    circuit = compile_verilog(COUNTER_SOURCE)
    circuit.validate()
    simulator = Simulator(circuit)
    for _ in range(11):
        simulator.step({"en": 1, "rst": 0})
    assert simulator.register_values()["count"] == 1  # wrapped at 10
    simulator.step({"en": 1, "rst": 1})
    assert simulator.register_values()["count"] == 0


def test_elaborated_alu_combinational_logic():
    circuit = compile_verilog(ALU_SOURCE)
    simulator = Simulator(circuit)
    assert simulator.step({"a": 7, "b": 5, "op": 0})["result"] == 12
    assert simulator.step({"a": 7, "b": 5, "op": 1})["result"] == 2
    assert simulator.step({"a": 12, "b": 10, "op": 2})["result"] == 8
    assert simulator.step({"a": 12, "b": 10, "op": 3})["result"] == 14
    assert simulator.step({"a": 0, "b": 0, "op": 0})["zero"] == 1


def test_elaborated_case_decoder():
    circuit = compile_verilog(CASE_SOURCE)
    simulator = Simulator(circuit)
    simulator.step({"sel": 2})
    assert simulator.register_values()["onehot"] == 0b0100
    simulator.step({"sel": 3})
    assert simulator.register_values()["onehot"] == 0b1000


def test_compile_verilog_top_selection():
    two_modules = COUNTER_SOURCE + "\nmodule other(input x, output y); assign y = x; endmodule"
    circuit = compile_verilog(two_modules, top="other")
    assert circuit.name == "other"
    with pytest.raises(ElaborationError):
        compile_verilog(two_modules, top="missing")


def test_elaboration_error_on_undeclared_identifier():
    source = """
    module bad(input a, output y);
      assign y = a & undeclared_net;
    endmodule
    """
    with pytest.raises(ElaborationError):
        compile_verilog(source)


def test_checker_runs_on_elaborated_design():
    circuit = compile_verilog(COUNTER_SOURCE)
    environment_pinned_reset = None
    checker = AssertionChecker(circuit, options=CheckerOptions(max_frames=4))
    holds = checker.check(Assertion("bounded", Signal("count") <= 9))
    assert holds.status is CheckStatus.HOLDS
    witness = checker.check(Witness("reach2", Signal("count") == 2), max_frames=5)
    assert witness.status is CheckStatus.WITNESS_FOUND
