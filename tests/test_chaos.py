"""Chaos suite: seeded fault schedules against real daemon sessions.

Every test arms a deterministic fault plan (:mod:`repro.faults`) and then
drives the verification service exactly like a client would.  The property
under test is always the same resilience contract:

* every submitted job terminates *bounded* -- with a bit-identical verdict
  or a typed failure cause from ``protocol.FAILURE_CAUSES`` (no hangs);
* no worker process survives the daemon's shutdown (no zombies);
* a torn KB write never poisons later runs -- the store loads fail-open
  and ``repro kb stats`` still succeeds;
* SIGTERM drains gracefully: in-flight jobs finish, new submits are
  refused with the typed ``draining`` cause, KB state is flushed and the
  daemon exits 0.

The schedule seeds are pinned so CI failures replay locally bit-for-bit:
re-run a failing parametrization and the same (seed, site, hit) decisions
fire again.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import api, faults
from repro.service import protocol
from repro.service.client import (
    JobFailure,
    ServiceClient,
    ServiceError,
    service_available,
)

from test_service import arm_plan, case_request, normalized, running_daemon

#: Pinned chaos-schedule seeds (replayed verbatim by the CI smoke job).
CHAOS_SEEDS = (11, 23, 47)

_SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))


@pytest.fixture(autouse=True)
def _unarmed_faults(monkeypatch):
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    monkeypatch.delenv(faults.SEED_ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.disarm()
    yield
    faults.disarm()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    return True


def _subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    # Chaos subprocesses arm their own plans (or none); never inherit one.
    for key in (faults.PLAN_ENV, faults.SEED_ENV, faults.STATE_ENV):
        env.pop(key, None)
    return env


class TestChaosSchedules:
    #: Crashes and stalls mid-run, decided per (seed, site, hit).
    PLAN = "worker.run:crash:p=0.25;worker.run:sleep:seconds=0.2:p=0.25"

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_every_job_terminates_bounded(self, seed, tmp_path, monkeypatch):
        cases = ["p1", "p2", "p1", "p2", "p1", "p1"]
        baselines = {cid: normalized(api.check(case_request(cid)))
                     for cid in set(cases)}
        arm_plan(monkeypatch, tmp_path, self.PLAN, seed=seed)
        worker_pids = []
        done = failed = refused = 0
        with running_daemon(tmp_path, job_timeout=30.0,
                            heartbeat_interval=0.2,
                            hang_timeout=10.0) as socket_path:
            with ServiceClient(socket_path) as client:
                submitted = []
                for cid in cases:
                    try:
                        submitted.append((cid, client.submit(case_request(cid))))
                    except JobFailure as exc:
                        # A quarantine refusal is a *bounded, typed* outcome.
                        assert exc.cause in protocol.FAILURE_CAUSES
                        refused += 1
                for cid, job_id in submitted:
                    # The bounded-wait is the no-hang assertion: a wedged
                    # job raises ServiceTimeout here and fails the test.
                    response = client.result(job_id, wait=True, timeout=120.0)
                    state = response["state"]
                    if state == "done":
                        report = api.CheckReport.from_dict(response["report"])
                        assert normalized(report) == baselines[cid]
                        done += 1
                    else:
                        assert state == "failed"
                        assert response["cause"] in protocol.FAILURE_CAUSES
                        failed += 1
                stats = client.stats()
                worker_pids = [block["pid"] for block in stats["workers"]
                               if isinstance(block.get("pid"), int)]
        assert done + failed + refused == len(cases)
        # No zombie workers after shutdown (the daemon reaped its children).
        for pid in worker_pids:
            assert not _pid_alive(pid), "worker %d outlived the daemon" % pid

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_schedules_replay_deterministically(self, seed, tmp_path):
        """The same seed decides the same (site, hit) firings, always."""
        plan = faults.FaultPlan.parse(self.PLAN, seed=seed)
        reference = [
            (rule.site, rule.kind) if rule is not None else None
            for rule in (faults.FaultInjector(plan).fire("worker.run")
                         for _ in range(64))
        ]
        replay = [
            (rule.site, rule.kind) if rule is not None else None
            for rule in (faults.FaultInjector(plan).fire("worker.run")
                         for _ in range(64))
        ]
        # Both comprehensions above rebuild the injector per hit, so make a
        # properly shared pair too -- both shapes must agree with themselves.
        shared_a, shared_b = faults.FaultInjector(plan), faults.FaultInjector(plan)
        assert [shared_a.fire("worker.run") is not None for _ in range(64)] == \
               [shared_b.fire("worker.run") is not None for _ in range(64)]
        assert reference == replay


class TestTornWrites:
    def test_torn_kb_write_loads_fail_open(self, tmp_path):
        """A flush torn mid-write corrupts the file, not the workflow."""
        kb_path = str(tmp_path / "torn-kb.sqlite")
        plan = faults.FaultPlan.parse("kb.flush:torn-write")
        env = _subprocess_env()
        env.update(faults.plan_environment(plan, str(tmp_path / "fault-state")))
        script = (
            "from repro import api\n"
            "from repro.kb import flush_attached_stores\n"
            "request = api.CheckRequest(circuit=api.CircuitRef.case('p1'),"
            " kb_path=%r)\n"
            "api.check(request)\n"
            "flush_attached_stores()\n" % kb_path
        )
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert os.path.exists(kb_path)

        # A fresh handle on the torn file degrades fail-open (typed reason,
        # no exception) instead of poisoning every later run.
        from repro.kb import KnowledgeBase

        store = KnowledgeBase(kb_path)
        try:
            stats = store.stats()
        finally:
            store.close()
        assert stats["disabled"]
        assert stats.get("reason")

        # ...and the `repro kb stats` CLI still succeeds on it.
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "kb", "stats", kb_path, "--json"],
            env=_subprocess_env(), capture_output=True, text=True, timeout=120,
        )
        assert cli.returncode == 0, cli.stderr
        payload = json.loads(cli.stdout)
        assert payload["disabled"]

    def test_fsync_failure_disables_without_corruption(self, tmp_path, monkeypatch):
        """An injected fsync failure degrades the handle but leaves the
        file as it was before the flush (valid, just stale)."""
        kb_path = str(tmp_path / "fsync-kb.sqlite")
        script = (
            "from repro import api\n"
            "from repro.kb import flush_attached_stores\n"
            "request = api.CheckRequest(circuit=api.CircuitRef.case('p1'),"
            " kb_path=%r)\n"
            "api.check(request)\n"
            "flush_attached_stores()\n" % kb_path
        )
        # First run unarmed: produce a valid store.
        proc = subprocess.run([sys.executable, "-c", script],
                              env=_subprocess_env(),
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        # Second run with fsync failures injected on every flush.
        env = _subprocess_env()
        env.update(faults.plan_environment(
            faults.FaultPlan.parse("kb.flush:fsync-fail"),
            str(tmp_path / "fault-state")))
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        # The file written by the clean run still loads fine.
        from repro.kb import KnowledgeBase

        store = KnowledgeBase(kb_path)
        try:
            stats = store.stats()
        finally:
            store.close()
        assert not stats.get("disabled")


class TestSigtermDrain:
    def test_sigterm_finishes_in_flight_flushes_kb_and_exits_zero(self, tmp_path):
        socket_path = str(tmp_path / "chaos-daemon.sock")
        kb_path = str(tmp_path / "drain-kb.sqlite")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path,
             # The in-flight job stalls 2s so the SIGTERM demonstrably
             # arrives while it is running.
             "--fault-plan", "worker.run:sleep:seconds=2:nth=1",
             "--heartbeat-interval", "0.2"],
            env=_subprocess_env(),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if os.path.exists(socket_path) and service_available(socket_path):
                    break
                if daemon.poll() is not None:
                    raise RuntimeError(
                        "daemon died on startup:\n%s" % daemon.stdout.read())
                time.sleep(0.05)
            else:
                raise RuntimeError("daemon did not come up")

            with ServiceClient(socket_path) as client:
                job_id = client.submit(case_request("p1", kb_path=kb_path))
                worker_pids = []
                daemon.send_signal(signal.SIGTERM)
                # The drain flips asynchronously once the loop handles the
                # signal; wait for the daemon to advertise it.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if client.ping().get("draining"):
                        break
                    time.sleep(0.05)
                else:
                    raise AssertionError("daemon never started draining")
                # New work is refused with the typed cause...
                with pytest.raises(JobFailure) as excinfo:
                    client.submit(case_request("p2"))
                assert excinfo.value.cause == "draining"
                stats = client.stats()
                assert stats["resilience"]["draining"] is True
                worker_pids = [block["pid"] for block in stats["workers"]
                               if isinstance(block.get("pid"), int)]
                # ...while the in-flight job runs to a real verdict.
                response = client.result(job_id, wait=True, timeout=60.0)
                assert response["state"] == "done", response.get("error")

            assert daemon.wait(timeout=30.0) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(10.0)

        # Nothing in flight was lost: the worker flushed its KB store on
        # retirement, so the drained daemon left a live store behind.
        from repro.kb import KnowledgeBase

        store = KnowledgeBase(kb_path)
        try:
            stats = store.stats()
        finally:
            store.close()
        assert not stats.get("disabled")
        assert stats["models"] >= 1
        # And the worker tree died with the daemon.
        for pid in worker_pids:
            assert not _pid_alive(pid), "worker %d outlived the daemon" % pid


class TestFleetChaos:
    """SIGKILL one of two daemons mid-batch: the fleet loses nothing.

    This is the fleet acceptance pin: with two live daemons sharing a
    routed batch, hard-killing one mid-flight must (a) lose zero jobs --
    every submission ends in a bit-identical verdict or a typed cause --
    (b) leave no zombie workers behind, and (c) keep the per-shard KB
    stores mergeable: ``sync_stores`` afterwards yields the union of
    everything either shard learned before the kill.
    """

    CASES = ("p1", "p2", "p3", "p5", "p1", "p2")

    @staticmethod
    def _spawn_daemon(socket_path: str) -> subprocess.Popen:
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path,
             "--heartbeat-interval", "0.2"],
            env=_subprocess_env(),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(socket_path) and service_available(socket_path):
                return daemon
            if daemon.poll() is not None:
                raise RuntimeError(
                    "daemon died on startup:\n%s" % daemon.stdout.read())
            time.sleep(0.05)
        daemon.kill()
        raise RuntimeError("daemon did not come up")

    @staticmethod
    def _kb_facts(kb_path: str):
        """(cube key set, memo key set) read straight from the sqlite file."""
        import sqlite3

        if not os.path.exists(kb_path):
            return set(), set()
        conn = sqlite3.connect(kb_path)
        try:
            cubes = set(conn.execute(
                "SELECT model_key, fingerprint FROM cubes"))
            memos = set(conn.execute(
                "SELECT model_key, search_fp, target_frame FROM fail_memos"))
        finally:
            conn.close()
        return cubes, memos

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:2])
    def test_sigkill_one_daemon_mid_batch_loses_nothing(self, seed, tmp_path):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        from repro.service.fleet import FleetEndpoint, FleetRouter, sync_stores

        baselines = {cid: normalized(api.check(case_request(cid)))
                     for cid in set(self.CASES)}
        sock_a = str(tmp_path / "fleet-a.sock")
        sock_b = str(tmp_path / "fleet-b.sock")
        kb_a = str(tmp_path / "fleet-a-kb.sqlite")
        kb_b = str(tmp_path / "fleet-b-kb.sqlite")
        daemon_a = self._spawn_daemon(sock_a)
        daemon_b = None
        orphan_pids = []
        try:
            daemon_b = self._spawn_daemon(sock_b)
            router = FleetRouter(
                [FleetEndpoint("a", sock_a, kb=kb_a),
                 FleetEndpoint("b", sock_b, kb=kb_b)],
                trip_threshold=1, cooldown=60.0)

            # The seed pins *when* the SIGKILL lands: after `kill_after`
            # completed jobs, i.e. provably mid-batch.
            kill_after = 1 + seed % 3
            lock = threading.Lock()
            outcomes = {}

            def run_one(index, cid):
                try:
                    outcome = ("done",
                               router.check(case_request(cid), fallback=False))
                except JobFailure as exc:
                    outcome = ("failed", exc)
                with lock:
                    outcomes[index] = outcome
                    if len(outcomes) == kill_after and daemon_a.poll() is None:
                        # Snapshot A's worker pids first so the no-zombie
                        # check below has the orphans-to-be on record.
                        try:
                            with ServiceClient(sock_a,
                                               connect_timeout=1.0) as probe:
                                orphan_pids.extend(
                                    block["pid"]
                                    for block in probe.stats()["workers"]
                                    if isinstance(block.get("pid"), int))
                        except ServiceError:
                            pass
                        daemon_a.send_signal(signal.SIGKILL)

            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [pool.submit(run_one, index, cid)
                           for index, cid in enumerate(self.CASES)]
                for future in futures:
                    # Bounded wait *is* the no-hang assertion.
                    future.result(timeout=300.0)

            assert daemon_a.wait(timeout=10.0) is not None
            # Zero lost jobs: every submission reached a bounded outcome.
            assert len(outcomes) == len(self.CASES)
            for index, cid in enumerate(self.CASES):
                state, payload = outcomes[index]
                if state == "done":
                    # Bit-identical verdict, whichever daemon answered.
                    assert normalized(payload) == baselines[cid]
                else:
                    assert payload.cause in protocol.FAILURE_CAUSES
            # With a healthy survivor, failover means they all complete.
            assert all(state == "done" for state, _ in outcomes.values())

            # The router sees the fleet as it now is: B up, A down.
            status = router.status(probe=True)
            by_name = {block["name"]: block for block in status["endpoints"]}
            assert by_name["b"]["probe"]["alive"] is True
            assert by_name["a"]["probe"]["alive"] is False
            assert status["up"] == 1

            # Stop the survivor cleanly; its workers flush their KB state.
            with ServiceClient(sock_b) as client:
                orphan_pids.extend(
                    block["pid"] for block in client.stats()["workers"]
                    if isinstance(block.get("pid"), int))
                client.shutdown(mode="now")
            assert daemon_b.wait(timeout=30.0) == 0
        finally:
            for daemon in (daemon_a, daemon_b):
                if daemon is not None and daemon.poll() is None:
                    daemon.kill()
                    daemon.wait(10.0)

        # No zombies: A's orphaned workers notice the dead supervisor pipe
        # and exit on their own; B's went down with the shutdown.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if not any(_pid_alive(pid) for pid in orphan_pids):
                break
            time.sleep(0.1)
        for pid in orphan_pids:
            assert not _pid_alive(pid), "worker %d outlived its daemon" % pid

        # Anti-entropy: after a sync both shards hold the union of facts.
        cubes_a, memos_a = self._kb_facts(kb_a)
        cubes_b, memos_b = self._kb_facts(kb_b)
        rows = sync_stores([kb_a, kb_b])
        assert len(rows) == 2
        assert not any(row.get("disabled") for row in rows)
        union = (cubes_a | cubes_b, memos_a | memos_b)
        assert self._kb_facts(kb_a) == union
        assert self._kb_facts(kb_b) == union
        assert union[0], "neither shard learned any cubes"
