"""Tests for the cycle-accurate word-level simulator."""

import pytest

from repro.netlist import Circuit
from repro.simulation import Simulator


def build_counter():
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", 4)
    at_max = circuit.eq(cnt, 9)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, 4))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


def test_counter_counts_and_wraps():
    circuit = build_counter()
    simulator = Simulator(circuit)
    values = []
    for _ in range(12):
        out = simulator.step({"en": 1})
        values.append(out["cnt"])
    # The recorded value is the pre-edge value of each cycle.
    assert values[:10] == list(range(10))
    assert values[10] == 0  # wrapped after reaching 9
    assert values[11] == 1


def test_counter_holds_when_disabled():
    circuit = build_counter()
    simulator = Simulator(circuit)
    simulator.step({"en": 1})
    simulator.step({"en": 1})
    state_before = simulator.register_values()["cnt"]
    simulator.step({"en": 0})
    assert simulator.register_values()["cnt"] == state_before


def test_initial_state_override():
    circuit = build_counter()
    simulator = Simulator(circuit, initial_state={"cnt": 7})
    out = simulator.step({"en": 1})
    assert out["cnt"] == 7
    assert simulator.register_values()["cnt"] == 8
    with pytest.raises(KeyError):
        Simulator(circuit, initial_state={"nonexistent": 1})


def test_register_control_pins():
    circuit = Circuit("regs")
    d = circuit.input("d", 4)
    en = circuit.input("en", 1)
    rst = circuit.input("rst", 1)
    st = circuit.input("st", 1)
    q = circuit.dff(d, enable=en, reset=rst, set_=st, reset_value=2, init_value=0, name="q")
    circuit.output(q)

    simulator = Simulator(circuit)
    simulator.step({"d": 9, "en": 1, "rst": 0, "st": 0})
    assert simulator.register_values()["q"] == 9
    simulator.step({"d": 5, "en": 0, "rst": 0, "st": 0})
    assert simulator.register_values()["q"] == 9  # hold
    simulator.step({"d": 5, "en": 1, "rst": 0, "st": 1})
    assert simulator.register_values()["q"] == 15  # async set to all ones
    simulator.step({"d": 5, "en": 1, "rst": 1, "st": 1})
    assert simulator.register_values()["q"] == 2  # reset wins over set


def test_run_returns_trace():
    circuit = build_counter()
    simulator = Simulator(circuit)
    trace = simulator.run([{"en": 1}] * 5)
    assert len(trace) == 5
    assert trace.value(4, "cnt") == 4


def test_missing_inputs_default_to_zero():
    circuit = build_counter()
    simulator = Simulator(circuit)
    out = simulator.step({})
    assert out["en"] == 0
