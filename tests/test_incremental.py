"""Incremental time-frame expansion: equivalence with fresh unrolling.

The incremental checking path (``CheckerOptions.incremental``) reuses one
unrolled implication network across bounds and properties.  These tests pin
the core soundness contract: for every circuit in the zoo plus fuzzed
netlists, ``extend_to`` / goal retraction must produce *bit-identical*
verdicts, counterexamples and implication fixpoints to a freshly built
:class:`UnrolledModel` at every bound.  They also cover the supporting
machinery: assignment savepoints, retractable node groups, the FIFO rule
cache and the shared model cache.
"""

import typing

import pytest

from repro.atpg.timeframe import UnrolledModel
from repro.bitvector import BV3
from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.incremental import (
    UnrolledModelCache,
    environment_fingerprint,
    shared_model_cache,
)
from repro.circuits import all_case_ids, build_case, build_token_ring
from repro.implication.assignment import Assignment
from repro.implication.engine import ImplicationEngine, ImplicationNode
from repro.netlist.circuit import Circuit
from repro.properties import Assertion, Delayed, Environment, OneHot, Signal, Witness

from test_bitparallel import build_random_circuit


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _check_pair(circuit_fresh, circuit_inc, prop, environment=None,
                initial_state=None, bound=4):
    """Run the same property through the fresh and incremental paths.

    Cross-bound learning is pinned off: these tests assert the *unrolling*
    contract (bit-identical searches), while learning deliberately prunes
    decisions (its own verdict/counterexample equivalence is covered by
    tests/test_learning.py).
    """
    fresh = AssertionChecker(
        circuit_fresh,
        environment=environment,
        initial_state=initial_state,
        options=CheckerOptions(max_frames=bound, incremental=False),
    ).check(prop)
    incremental = AssertionChecker(
        circuit_inc,
        environment=environment,
        initial_state=initial_state,
        options=CheckerOptions(max_frames=bound, incremental=True, learning=False),
        model_cache=UnrolledModelCache(),
    ).check(prop)
    return fresh, incremental


def assert_results_identical(fresh, incremental):
    assert incremental.status is fresh.status
    assert incremental.frames_explored == fresh.frames_explored
    cex_f, cex_i = fresh.counterexample, incremental.counterexample
    assert (cex_f is None) == (cex_i is None)
    if cex_f is not None:
        assert cex_i.initial_state == cex_f.initial_state
        assert cex_i.inputs == cex_f.inputs
        assert cex_i.trace == cex_f.trace
        assert cex_i.target_frame == cex_f.target_frame
        assert cex_i.validated == cex_f.validated


def _view_snapshot(model):
    """The model's fixpoint restricted to its active view."""
    return {
        key: value
        for key, value in model.engine.assignment.snapshot().items()
        if key[1] < model.num_frames
    }


# ----------------------------------------------------------------------
# Tentpole: extend_to produces bit-identical implication fixpoints
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_id", all_case_ids())
def test_extend_to_matches_fresh_fixpoint_zoo(case_id):
    case = build_case(case_id)
    incremental = UnrolledModel(case.circuit, 1, initial_state=case.initial_state)
    for bound in range(1, 6):
        incremental.extend_to(bound)
        fresh = UnrolledModel(case.circuit, bound, initial_state=case.initial_state)
        assert _view_snapshot(incremental) == fresh.engine.assignment.snapshot()


@pytest.mark.parametrize("seed", range(6))
def test_extend_to_matches_fresh_fixpoint_fuzz(seed):
    circuit = build_random_circuit(seed)
    incremental = UnrolledModel(circuit, 1)
    for bound in range(1, 5):
        incremental.extend_to(bound)
        fresh = UnrolledModel(circuit, bound)
        assert _view_snapshot(incremental) == fresh.engine.assignment.snapshot()


def test_extend_to_shrinks_and_regrows_view():
    ports = build_token_ring()
    model = UnrolledModel(ports.circuit, 6)
    deep = _view_snapshot(model)
    model.extend_to(2)
    assert model.num_frames == 2 and model.built_frames == 6
    assert _view_snapshot(model) == UnrolledModel(ports.circuit, 2).engine.assignment.snapshot()
    model.extend_to(6)
    assert _view_snapshot(model) == deep
    # Shrinking is free: no frame is ever rebuilt.
    assert model.frames_constructed == 6


# ----------------------------------------------------------------------
# Tentpole: the checker paths agree on verdicts and counterexamples
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_id", all_case_ids())
def test_checker_matches_fresh_on_zoo(case_id):
    case_f, case_i = build_case(case_id), build_case(case_id)
    fresh, incremental = _check_pair(
        case_f.circuit, case_i.circuit, case_f.prop,
        environment=case_f.environment, initial_state=case_f.initial_state,
        bound=case_f.max_frames,
    )
    assert fresh.status is case_f.expected_status
    assert_results_identical(fresh, incremental)
    # The searches must be literally the same, not merely equi-decisive.
    assert incremental.statistics.decisions == fresh.statistics.decisions
    assert incremental.statistics.backtracks == fresh.statistics.backtracks


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("kind", ["assertion", "witness"])
def test_checker_matches_fresh_on_fuzzed_circuits(seed, kind):
    # Two independent builds of the same seed are identical netlists; each
    # checker compiles its monitor into its own copy.
    circuit_fresh = build_random_circuit(seed)
    circuit_inc = build_random_circuit(seed)
    target = circuit_fresh.outputs[0]
    expr = Signal(target.name) == (1 if kind == "witness" else 0)
    prop = (
        Assertion("fz%d" % seed, expr)
        if kind == "assertion"
        else Witness("fz%d" % seed, expr)
    )
    fresh, incremental = _check_pair(circuit_fresh, circuit_inc, prop, bound=3)
    assert_results_identical(fresh, incremental)


# ----------------------------------------------------------------------
# Model reuse across properties (the per-circuit cache)
# ----------------------------------------------------------------------
def test_multiple_properties_share_one_model():
    ports = build_token_ring()
    grants = [Signal(net.name) for net in ports.grants]
    props = [
        Assertion("one_hot", OneHot(*grants)),
        Witness("last_grant", Signal(ports.grants[-1].name) == 1),
        # A Delayed property compiles new monitor *registers* into the
        # circuit, exercising flip-flop absorption in sync_with_circuit.
        Assertion("grant_stable", Delayed(grants[0], 1) | ~Delayed(grants[0], 1)),
    ]
    cache = UnrolledModelCache()
    shared = AssertionChecker(
        ports.circuit,
        options=CheckerOptions(max_frames=5, incremental=True),
        model_cache=cache,
    )
    for index, prop in enumerate(props):
        fresh_ports = build_token_ring()
        expected = AssertionChecker(
            fresh_ports.circuit,
            options=CheckerOptions(max_frames=5, incremental=False),
        ).check(_rebind(prop, fresh_ports))
        result = shared.check(prop)
        assert_results_identical(expected, result)
        if index == 0:
            assert result.statistics.models_reused == 0
            assert result.statistics.frames_built > 0
        else:
            # Second and later properties reuse the cached skeleton: zero
            # frame constructions, only monitor sync.
            assert result.statistics.models_reused == 1
            assert result.statistics.frames_built == 0
    assert cache.stats()["entries"] == 1


def _rebind(prop, ports):
    """The same property expression works on any token ring instance (the
    net names are identical across builds)."""
    return prop


def test_bounds_can_shrink_between_properties():
    """A deep check followed by a shallow one must not leak future-frame
    constraints into the shallow verdict."""
    ports = build_token_ring()
    grants = [Signal(net.name) for net in ports.grants]
    cache = UnrolledModelCache()
    shared = AssertionChecker(
        ports.circuit,
        options=CheckerOptions(max_frames=8, incremental=True),
        model_cache=cache,
    )
    deep = shared.check(Witness("deep", Signal(ports.grants[-1].name) == 1))
    shallow = shared.check(Assertion("shallow", OneHot(*grants)), max_frames=2)

    control = build_token_ring()
    fresh = AssertionChecker(
        control.circuit, options=CheckerOptions(max_frames=2, incremental=False)
    ).check(Assertion("shallow", OneHot(*[Signal(n.name) for n in control.grants])))
    assert_results_identical(fresh, shallow)
    assert deep.status.value == "witness_found"


def test_checker_reuses_across_checker_instances():
    """Two checkers on the same circuit object share the process cache."""
    ports = build_token_ring()
    grants = [Signal(net.name) for net in ports.grants]
    cache = UnrolledModelCache()
    first = AssertionChecker(
        ports.circuit, options=CheckerOptions(max_frames=4), model_cache=cache
    ).check(Assertion("one_hot", OneHot(*grants)))
    second = AssertionChecker(
        ports.circuit, options=CheckerOptions(max_frames=4), model_cache=cache
    ).check(Assertion("one_hot_again", OneHot(*grants)))
    assert first.statistics.models_reused == 0
    assert second.statistics.models_reused == 1
    assert second.status is first.status


def test_shared_cache_is_a_singleton():
    assert shared_model_cache() is shared_model_cache()


def test_model_cache_lru_eviction_and_dirty_recovery():
    cache = UnrolledModelCache(max_entries=2)
    circuits = [build_token_ring().circuit for _ in range(3)]
    for circuit in circuits:
        cache.acquire(circuit)
    assert len(cache) == 2  # the first circuit was evicted

    model, reused = cache.acquire(circuits[-1])
    assert reused
    # A crashed check leaves decisions open; the cache must rebuild.
    model.engine.push_level()
    model.engine.assign(model.key(circuits[-1].inputs[0], 0), BV3.from_int(1, 1))
    recovered, reused = cache.acquire(circuits[-1])
    assert not reused and recovered is not model
    assert recovered.at_base_level and recovered.is_clean

    # Goal pollution *at* the base level (no decision level open) must be
    # detected too: the trail is past the recorded base savepoint.
    recovered.engine.assign(
        recovered.key(circuits[-1].inputs[0], 0), BV3.from_int(1, 1)
    )
    assert recovered.at_base_level and not recovered.is_clean
    rebuilt, reused = cache.acquire(circuits[-1])
    assert not reused and rebuilt is not recovered

    cache.evict(circuits[-1])
    assert len(cache) == 1


def test_crashed_check_does_not_poison_the_cache(monkeypatch):
    """An exception escaping the search must not leak that property's goal
    into the cached model used by the next check (see _retract_goals)."""
    ports = build_token_ring()
    grants = [Signal(net.name) for net in ports.grants]
    cache = UnrolledModelCache()
    checker = AssertionChecker(
        ports.circuit,
        options=CheckerOptions(max_frames=4, incremental=True),
        model_cache=cache,
    )
    from repro.atpg.justify import Justifier

    def explode(self):
        raise RuntimeError("simulated mid-search crash")

    monkeypatch.setattr(Justifier, "run", explode)
    with pytest.raises(RuntimeError):
        checker.check(Witness("crash", Signal(ports.grants[0].name) == 1))
    monkeypatch.undo()

    result = checker.check(Assertion("after_crash", OneHot(*grants)))
    control = build_token_ring()
    expected = AssertionChecker(
        control.circuit, options=CheckerOptions(max_frames=4, incremental=False)
    ).check(Assertion("after_crash", OneHot(*[Signal(n.name) for n in control.grants])))
    assert_results_identical(expected, result)


def test_batch_incremental_toggle_covers_engine_instances():
    from repro.portfolio.batch import _configure_engines
    from repro.portfolio.engines import AtpgEngine

    pinned = AtpgEngine(incremental=True)
    unpinned = AtpgEngine()
    configured = _configure_engines(["atpg", pinned, unpinned, "bdd"], incremental=False)
    assert configured[0].incremental is False       # name rewritten
    assert configured[1] is pinned                  # explicit choice wins
    assert configured[2].incremental is False       # unpinned instance follows batch
    assert configured[3] == "bdd"
    assert _configure_engines(["atpg"], incremental=True) == ["atpg"]


def test_environment_fingerprint_distinguishes_constraints():
    empty = Environment()
    pinned = Environment().pin("x", 1)
    assert environment_fingerprint(None) != environment_fingerprint(pinned)
    assert environment_fingerprint(empty) != environment_fingerprint(pinned)
    assert environment_fingerprint(Environment().pin("x", 1)) == environment_fingerprint(pinned)


# ----------------------------------------------------------------------
# Savepoints and retractable node groups
# ----------------------------------------------------------------------
def test_assignment_savepoint_below_open_levels():
    assignment = Assignment()
    assignment.register("a", 4)
    assignment.register("b", 4)
    assignment.assign("a", BV3.from_int(4, 3))
    assignment.push_level()
    assignment.assign("b", BV3.from_int(4, 9))
    save = assignment.savepoint()  # taken below levels opened later
    assignment.push_level()
    assignment.assign("a", BV3.from_int(4, 3))  # no-op refinement
    assignment.assign("b", BV3.from_int(4, 9))
    assignment.push_level()
    assignment.assign("a", BV3.from_int(4, 3))
    assert assignment.decision_level == 3
    assignment.rollback_to(save)
    assert assignment.decision_level == 1
    assert assignment.get("a") == BV3.from_int(4, 3)
    assert assignment.get("b") == BV3.from_int(4, 9)
    # The level opened before the savepoint still pops normally.
    assignment.pop_level()
    assert assignment.decision_level == 0
    assert not assignment.is_assigned("b")


def test_assignment_rejects_stale_savepoint():
    assignment = Assignment()
    assignment.push_level()
    save = assignment.savepoint()
    assignment.pop_level()
    with pytest.raises(RuntimeError):
        assignment.rollback_to(save)


def test_assignment_has_slots():
    assignment = Assignment()
    assert not hasattr(assignment, "__dict__")
    with pytest.raises(AttributeError):
        assignment.arbitrary_attribute = 1


def _identity_node(name, key):
    return ImplicationNode(name, [key, key + "_out"], lambda cubes: list(cubes))


def test_engine_savepoint_retires_nodes():
    engine = ImplicationEngine()
    keep = _identity_node("keep", "x")
    engine.add_node(keep, widths=[1, 1])
    save = engine.savepoint()
    goal = _identity_node("goal", "x")
    engine.add_node(goal, widths=[1, 1])
    assert engine.watchers("x") == [keep, goal]
    engine.assign("x", BV3.from_int(1, 1))
    assert engine.is_justified(goal) is not None  # populate memo caches
    engine.rollback_to(save)
    assert engine.nodes == [keep]
    assert engine.watchers("x") == [keep]
    assert id(goal) not in engine._justified_cache
    assert id(goal) not in engine._rule_cache
    assert not engine.assignment.is_assigned("x")


def test_pop_level_retires_nodes_added_inside_the_level():
    engine = ImplicationEngine()
    base = _identity_node("base", "x")
    engine.add_node(base, widths=[1, 1])
    engine.push_level()
    scoped = _identity_node("scoped", "x")
    engine.add_node(scoped, widths=[1, 1])
    engine.assign("x", BV3.from_int(1, 0))
    engine.pop_level()
    assert engine.nodes == [base]
    assert engine.watchers("x") == [base]
    assert not engine.assignment.is_assigned("x")


def test_rule_cache_fifo_eviction_keeps_hot_entries():
    engine = ImplicationEngine()
    engine._rule_cache_limit = 4
    calls = []

    def rule(cubes):
        calls.append(tuple(cubes))
        return list(cubes)

    node = ImplicationNode("n", ["a", "b"], rule)
    engine.add_node(node, widths=[4, 4])
    # Six distinct cube combinations roll through a limit-4 cache FIFO.
    for value in range(6):
        engine.assignment._values.pop("a", None)
        engine.assignment.assign("a", BV3.from_int(4, value))
        engine.enqueue([node])
        engine.propagate()
    assert engine.rule_cache_evictions == 2
    cache = engine._rule_cache[id(node)]
    assert len(cache) == 4
    # The most recent combinations survived (FIFO dropped the oldest two).
    recent = {key[0] for key in cache}
    assert BV3.from_int(4, 5) in recent and BV3.from_int(4, 4) in recent
    # Re-evaluating a cached combination is a hit, not a rule call.
    before = len(calls)
    engine.enqueue([node])
    engine.propagate()
    assert len(calls) == before
    assert engine.rule_cache_hits > 0


def test_cache_hit_rates_reported_in_statistics():
    case = build_case("p3")
    result = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(max_frames=case.max_frames),
        model_cache=UnrolledModelCache(),
    ).check(case.prop)
    stats = result.statistics
    assert stats.rule_cache_hits + stats.rule_cache_misses > 0
    assert 0.0 <= stats.rule_cache_hit_rate <= 1.0
    assert 0.0 <= stats.justified_cache_hit_rate <= 1.0
    assert stats.frames_built == result.frames_explored


# ----------------------------------------------------------------------
# sync_with_circuit
# ----------------------------------------------------------------------
def test_sync_with_circuit_absorbs_new_gates_in_every_frame():
    circuit = Circuit("sync")
    a = circuit.input("a", 4)
    reg = circuit.dff(a, name="reg")
    model = UnrolledModel(circuit, 3)
    nodes_before = len(model.engine.nodes)

    late = circuit.eq(reg, 5, name="late_monitor")
    assert model.sync_with_circuit()
    assert not model.sync_with_circuit()  # idempotent
    # One constant node and one comparator node per built frame.
    assert len(model.engine.nodes) == nodes_before + 2 * 3
    fresh = UnrolledModel(circuit, 3)
    assert _view_snapshot(model) == fresh.engine.assignment.snapshot()
    assert model.value(late, 0) == fresh.value(late, 0)


def test_sync_with_circuit_absorbs_new_registers():
    circuit = Circuit("sync_ff")
    a = circuit.input("a", 1)
    circuit.output(circuit.not_(a, name="na"))
    model = UnrolledModel(circuit, 3)
    delayed = circuit.dff(a, init_value=1, name="delayed")
    assert model.sync_with_circuit()
    fresh = UnrolledModel(circuit, 3)
    assert _view_snapshot(model) == fresh.engine.assignment.snapshot()
    assert model.value(delayed, 0) == BV3.from_int(1, 1)


def test_extend_requires_base_level():
    ports = build_token_ring()
    model = UnrolledModel(ports.circuit, 2)
    model.engine.push_level()
    with pytest.raises(RuntimeError):
        model.extend_to(4)
    model.engine.pop_level()
    model.extend_to(4)
    assert model.num_frames == 4


# ----------------------------------------------------------------------
# Satellite: the Tuple annotation regression (typing imports)
# ----------------------------------------------------------------------
def test_engine_module_annotations_resolve():
    import repro.implication.engine as engine_module

    for name in ("ImplicationEngine", "ImplicationNode"):
        cls = getattr(engine_module, name)
        for attr in vars(cls).values():
            if callable(attr) and getattr(attr, "__annotations__", None):
                typing.get_type_hints(attr, vars(engine_module))
