"""Tests for multiplicative inverses modulo 2**n (Definitions 3-4, Theorems 1-2)."""

import pytest
from hypothesis import given, strategies as st

from repro.modsolver.modular import (
    count_inverses_with_product,
    multiplicative_inverse,
    multiplicative_inverse_with_product,
    odd_part,
    solve_scalar_congruence,
    two_adic_valuation,
)


def test_two_adic_valuation_and_odd_part():
    assert two_adic_valuation(6) == 1
    assert two_adic_valuation(8) == 3
    assert two_adic_valuation(7) == 0
    assert odd_part(12) == 3
    assert odd_part(7) == 7
    with pytest.raises(ValueError):
        two_adic_valuation(0)
    with pytest.raises(ValueError):
        odd_part(0)


def test_paper_example_inverse_of_3_width_3():
    """Paper: for 3-bit vectors, 3 is its own inverse (3*3 = 9 = 1 mod 8)."""
    assert multiplicative_inverse(3, 3) == 3


def test_even_numbers_have_no_inverse():
    with pytest.raises(ValueError):
        multiplicative_inverse(2, 3)
    with pytest.raises(ValueError):
        multiplicative_inverse(6, 4)


def test_paper_example_inverse_with_product():
    """Paper: for 3-bit vectors, 3 is the inverse of 6 with product 2."""
    assert 3 in multiplicative_inverse_with_product(6, 2, 3)


def test_theorem_1_2_no_inverse_when_product_not_multiple():
    """6 = 3 * 2 has no inverse with product 3 (3 is not a multiple of 2)."""
    assert multiplicative_inverse_with_product(6, 3, 3) == []
    assert count_inverses_with_product(6, 3, 3) == 0


def test_theorem_1_3_count_and_values():
    """6 has exactly 2 inverses with product 4 over 3-bit vectors: {2, 6}."""
    values = multiplicative_inverse_with_product(6, 4, 3)
    assert values == [2, 6]
    assert count_inverses_with_product(6, 4, 3) == 2


def test_theorem_2_closed_form_example():
    """Paper: 4-bit, a = 6, k = 10 -> inverses are 7 + 8*t for t in {0, 1}."""
    values = multiplicative_inverse_with_product(6, 10, 4)
    assert values == sorted({7, 15})
    solutions = solve_scalar_congruence(6, 10, 4)
    assert solutions.base % 8 == 7 % 8
    assert solutions.step == 8
    assert solutions.count == 2


def test_zero_special_cases():
    """0 has no inverse with a non-zero product; every vector is an inverse of
    0 with product 0."""
    assert multiplicative_inverse_with_product(0, 3, 3) == []
    all_inverses = multiplicative_inverse_with_product(0, 0, 3)
    assert all_inverses == list(range(8))


def test_scalar_solutions_contains():
    solutions = solve_scalar_congruence(6, 10, 4)
    assert solutions.contains(7)
    assert solutions.contains(15)
    assert not solutions.contains(3)
    assert len(solutions) == 2


def test_large_solution_set_enumeration_guard():
    with pytest.raises(ValueError):
        multiplicative_inverse_with_product(0, 0, 20)


# ----------------------------------------------------------------------
# Property-based checks of the theorems
# ----------------------------------------------------------------------
@given(st.integers(1, 10), st.data())
def test_odd_inverse_is_unique_and_correct(width, data):
    modulus = 1 << width
    a = data.draw(st.integers(1, modulus - 1).filter(lambda v: v % 2 == 1))
    inverse = multiplicative_inverse(a, width)
    assert (a * inverse) % modulus == 1


@given(st.integers(2, 8), st.data())
def test_scalar_congruence_matches_brute_force(width, data):
    modulus = 1 << width
    a = data.draw(st.integers(0, modulus - 1))
    k = data.draw(st.integers(0, modulus - 1))
    brute = sorted(x for x in range(modulus) if (a * x) % modulus == k)
    solutions = solve_scalar_congruence(a, k, width)
    if solutions is None:
        assert brute == []
    else:
        assert sorted(solutions.values()) == brute


@given(st.integers(2, 8), st.data())
def test_theorem1_count_formula(width, data):
    """The number of inverses with product k is 0 or 2**m (m = valuation of a)."""
    modulus = 1 << width
    a = data.draw(st.integers(1, modulus - 1))
    k = data.draw(st.integers(0, modulus - 1))
    m = two_adic_valuation(a)
    count = count_inverses_with_product(a, k, width)
    if k % (1 << m) == 0:
        assert count == (1 << m)
    else:
        assert count == 0
