"""Tests for the structural analysis report (histogram + partition)."""

from repro.analysis import analyze_structure
from repro.circuits import build_alarm_clock, build_arbiter
from repro.netlist import Circuit, NetKind


def build_mixed_circuit():
    circuit = Circuit("mixed")
    mode = circuit.input("mode", 1)
    a = circuit.input("a", 8)
    b = circuit.input("b", 8)
    total = circuit.add(a, b, name="total")
    limit = circuit.const(200, 8)
    over = circuit.gt(total, limit, name="over")
    selected = circuit.mux(mode, total, circuit.sub(a, b), name="selected")
    held = circuit.dff(selected, enable=over, name="held")
    circuit.output(held)
    return circuit


def test_histogram_counts_instances_and_bit_equivalents():
    circuit = build_mixed_circuit()
    report = analyze_structure(circuit)
    histogram = report.histogram
    assert histogram.instances["add"] == 1
    assert histogram.instances["sub"] == 1
    assert histogram.instances["cmp"] == 1
    assert histogram.instances["mux"] == 1
    assert histogram.instances["dff"] == 1
    # Bit-equivalent counts scale with width.
    assert histogram.bit_equivalent["add"] == 8
    assert histogram.bit_equivalent["dff"] == 8
    assert histogram.total_instances == len(circuit.gates)


def test_partition_identifies_interface_nets():
    circuit = build_mixed_circuit()
    report = analyze_structure(circuit)
    partition = report.partition
    comparator_names = {net.name for net in partition.comparator_outputs}
    select_names = {net.name for net in partition.mux_selects}
    assert "over" in comparator_names
    assert "mode" in select_names
    # The 1-bit nets are control, the 8-bit nets datapath.
    control_names = {net.name for net in partition.control_nets}
    data_names = {net.name for net in partition.data_nets}
    assert "mode" in control_names and "over" in control_names
    assert "total" in data_names and "held" in data_names
    assert partition.control_bits < partition.data_bits


def test_forced_control_kind_overrides_width():
    circuit = Circuit("forced")
    state = circuit.input("state", 3, kind=NetKind.CONTROL)
    circuit.output(circuit.eq(state, 1), name="is_one")
    report = analyze_structure(circuit)
    control_names = {net.name for net in report.partition.control_nets}
    assert "state" in control_names


def test_interface_counts_on_benchmark_designs():
    for build in (build_alarm_clock, build_arbiter):
        ports = build()
        report = analyze_structure(ports.circuit)
        assert report.num_flip_flop_bits > 0
        assert report.histogram.total_instances > 10
        # Every benchmark design has a control/datapath boundary.
        assert report.partition.mux_selects or report.partition.comparator_outputs


def test_format_is_readable():
    report = analyze_structure(build_mixed_circuit())
    text = report.format()
    assert "design mixed" in text
    assert "comparator outputs" in text
    assert "mux selects" in text
