"""Integration tests for the assertion checker (Fig. 1 flow)."""


from repro import (
    Assertion,
    AssertionChecker,
    CheckerOptions,
    CheckStatus,
    Circuit,
    Delayed,
    Environment,
    Implies,
    Signal,
    Simulator,
    Witness,
)
from repro.atpg.justify import JustifierLimits
from repro.properties.spec import And


def build_counter(limit=9):
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", 4)
    at_max = circuit.eq(cnt, limit)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, 4))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


def build_alu():
    circuit = Circuit("alu")
    a = circuit.input("a", 4)
    b = circuit.input("b", 4)
    op = circuit.input("op", 1)
    total = circuit.mux(op, circuit.add(a, b), circuit.sub(a, b), name="result")
    circuit.output(total)
    return circuit


# ----------------------------------------------------------------------
# Combinational checks
# ----------------------------------------------------------------------
def test_combinational_witness_and_validation():
    checker = AssertionChecker(build_alu())
    result = checker.check(Witness("make_nine", Signal("result") == 9))
    assert result.status is CheckStatus.WITNESS_FOUND
    assert result.counterexample is not None
    assert result.counterexample.validated
    # Re-simulate to double check the reported trace.
    circuit = checker.circuit
    simulator = Simulator(circuit, initial_state=result.counterexample.initial_state)
    out = simulator.step(result.counterexample.inputs[0])
    assert out["result"] == 9


def test_combinational_assertion_failure_found():
    checker = AssertionChecker(build_alu())
    result = checker.check(Assertion("never_15", Signal("result") != 15))
    assert result.status is CheckStatus.FAILS
    assert result.counterexample.validated


def test_combinational_assertion_holds():
    circuit = Circuit("c")
    a = circuit.input("a", 4)
    doubled = circuit.add(a, a)
    circuit.output(doubled, name="doubled")
    checker = AssertionChecker(circuit)
    result = checker.check(Assertion("even", (Signal("doubled") & 1) == 0))
    assert result.status is CheckStatus.HOLDS


# ----------------------------------------------------------------------
# Sequential checks
# ----------------------------------------------------------------------
def test_sequential_assertion_holds_within_bound():
    checker = AssertionChecker(build_counter(), options=CheckerOptions(max_frames=6))
    result = checker.check(Assertion("bounded", Signal("cnt") <= 9))
    assert result.status is CheckStatus.HOLDS
    assert result.statistics.cpu_seconds > 0
    assert result.frames_explored == 6


def test_sequential_counterexample_with_minimal_depth():
    checker = AssertionChecker(build_counter(), options=CheckerOptions(max_frames=8))
    result = checker.check(Assertion("never_three", Signal("cnt") != 3))
    assert result.status is CheckStatus.FAILS
    # cnt = 3 is first reachable after three enabled increments (frame 3).
    assert result.counterexample.target_frame == 3
    assert result.counterexample.validated
    assert all(vector["en"] == 1 for vector in result.counterexample.inputs[:3])


def test_sequential_witness_search():
    checker = AssertionChecker(build_counter(), options=CheckerOptions(max_frames=8))
    result = checker.check(Witness("reach_five", Signal("cnt") == 5))
    assert result.status is CheckStatus.WITNESS_FOUND
    assert result.counterexample.length == 6


def test_witness_not_found_within_bound():
    checker = AssertionChecker(build_counter(), options=CheckerOptions(max_frames=3))
    result = checker.check(Witness("reach_nine", Signal("cnt") == 9))
    assert result.status is CheckStatus.WITNESS_NOT_FOUND


def test_transition_property_with_delayed():
    checker = AssertionChecker(build_counter(), options=CheckerOptions(max_frames=5))
    prop = Assertion(
        "wraps_to_zero",
        Implies(Delayed(And(Signal("cnt") == 9, Signal("en") == 1)), Signal("cnt") == 0),
    )
    result = checker.check(prop)
    assert result.status is CheckStatus.HOLDS


# ----------------------------------------------------------------------
# Environments and initial states
# ----------------------------------------------------------------------
def test_pinned_environment_blocks_counterexample():
    # With en pinned to 0 the counter can never move, so cnt != 3 holds.
    environment = Environment().pin("en", 0)
    checker = AssertionChecker(
        build_counter(), environment=environment, options=CheckerOptions(max_frames=6)
    )
    result = checker.check(Assertion("never_three", Signal("cnt") != 3))
    assert result.status is CheckStatus.HOLDS


def test_explicit_initial_state():
    checker = AssertionChecker(
        build_counter(), initial_state={"cnt": 8}, options=CheckerOptions(max_frames=4)
    )
    result = checker.check(Witness("reach_nine", Signal("cnt") == 9))
    assert result.status is CheckStatus.WITNESS_FOUND
    assert result.counterexample.length <= 3


def test_initialization_sequence_derives_state():
    environment = Environment().initialize_with([{"en": 1}, {"en": 1}])
    checker = AssertionChecker(
        build_counter(), environment=environment, options=CheckerOptions(max_frames=3)
    )
    result = checker.check(Witness("reach_three", Signal("cnt") == 3))
    # Starting from cnt = 2 (after the init sequence) only one more step is needed.
    assert result.status is CheckStatus.WITNESS_FOUND
    assert result.counterexample.initial_state["cnt"] == 2


def test_one_hot_environment_enforced_in_search():
    circuit = Circuit("onehot")
    r0 = circuit.input("r0", 1)
    r1 = circuit.input("r1", 1)
    both = circuit.and_(r0, r1, name="both")
    circuit.output(both)
    environment = Environment().one_hot(["r0", "r1"])
    checker = AssertionChecker(circuit, environment=environment)
    result = checker.check(Assertion("never_both", Signal("both") == 0))
    assert result.status is CheckStatus.HOLDS


# ----------------------------------------------------------------------
# Limits and statistics
# ----------------------------------------------------------------------
def test_abort_on_tiny_limits():
    options = CheckerOptions(
        max_frames=6, limits=JustifierLimits(max_decisions=1, max_backtracks=0)
    )
    checker = AssertionChecker(build_counter(), options=options)
    result = checker.check(Assertion("bounded", Signal("cnt") <= 9))
    assert result.status in (CheckStatus.ABORTED, CheckStatus.HOLDS)


def test_statistics_are_collected():
    checker = AssertionChecker(build_counter(), options=CheckerOptions(max_frames=5))
    result = checker.check(Assertion("never_three", Signal("cnt") != 3))
    stats = result.statistics
    assert stats.justify_runs >= 1
    assert stats.implications > 0
    assert stats.peak_memory_mb >= 0.0
    assert repr(result)


def test_counterexample_summary_readable():
    checker = AssertionChecker(build_counter(), options=CheckerOptions(max_frames=6))
    result = checker.check(Witness("reach_two", Signal("cnt") == 2))
    summary = result.counterexample.summary()
    assert "frame" in summary
    assert result.counterexample.value(0, "cnt") == 0


def test_max_frames_override_in_check_call():
    checker = AssertionChecker(build_counter(), options=CheckerOptions(max_frames=2))
    result = checker.check(Witness("reach_five", Signal("cnt") == 5), max_frames=8)
    assert result.status is CheckStatus.WITNESS_FOUND
