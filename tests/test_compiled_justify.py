"""A/B bit-identity suite for the compiled check kernel.

The compiled slot-indexed implication kernel
(:mod:`repro.implication.compiled`) must be *observationally identical* to
the interpreted engine it lowers: same verdicts, same counterexample traces,
same per-bound fixpoints, same learning behaviour, and -- because the rule
memos are keyed bijectively -- the same cache hit/miss statistics.  This
suite pins that contract three ways:

* the full property zoo (p1-p15) plus fuzzed random netlists, compared
  end-to-end at the check level and per bound;
* slot-level mechanics: savepoint/rollback restores the ternary lanes
  exactly, and the incremental dirty-set frontier always matches a full
  unjustified-nodes scan;
* warm-start reuse: a knowledge base written by one mode replays
  bit-identically in the other (the learned facts carry no mode).
"""

import asyncio
import contextlib
import os
import random
import threading
import time

import pytest

from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.incremental import UnrolledModelCache
from repro.checker.report import counterexample_to_dict, statistics_to_dict
from repro.circuits import all_case_ids, build_case
from repro.netlist import Circuit
from repro.properties import Assertion, Signal, Witness

#: wall-clock / environment-dependent keys excluded from stat comparison.
TIME_KEYS = {"compile_time_ms", "peak_memory_mb", "cpu_seconds"}
#: counts compile passes, so it legitimately differs between the modes.
MODE_KEYS = {"compiled_models"}


def _comparable(statistics) -> dict:
    return {
        key: value
        for key, value in statistics_to_dict(statistics).items()
        if key not in TIME_KEYS | MODE_KEYS
    }


def _run_case(case, compiled, bound=None, **option_overrides):
    """One full check on a private model cache; returns (result, estg stats)."""
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(
            max_frames=case.max_frames, compiled=compiled, **option_overrides
        ),
        model_cache=UnrolledModelCache(),
    )
    result = checker.check(case.prop, max_frames=bound)
    estg_stats = None
    if checker._incremental_model is not None:
        estg_stats = checker._incremental_model.estg.stats()
    return result, estg_stats


def _trace_dict(result):
    if result.counterexample is None:
        return None
    return counterexample_to_dict(result.counterexample)


def _assert_bit_identical(case_factory, bound=None, **option_overrides):
    """Run both modes on freshly built cases and compare everything pinned.

    ``case_factory`` must build a *new* case per call: property compilation
    appends monitor gates to the circuit, so the two runs may not share one.
    """
    interp, interp_estg = _run_case(
        case_factory(), compiled=False, bound=bound, **option_overrides
    )
    compiled, compiled_estg = _run_case(
        case_factory(), compiled=True, bound=bound, **option_overrides
    )
    assert interp.status == compiled.status
    assert interp.frames_explored == compiled.frames_explored
    assert _comparable(interp.statistics) == _comparable(compiled.statistics)
    assert interp_estg == compiled_estg
    assert _trace_dict(interp) == _trace_dict(compiled)
    assert compiled.statistics.compiled_models >= 1
    assert interp.statistics.compiled_models == 0
    return interp, compiled


# ----------------------------------------------------------------------
# The property zoo, end to end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_id", all_case_ids() + ["p15"])
def test_zoo_bit_identical(case_id):
    _assert_bit_identical(lambda: build_case(case_id))


@pytest.mark.parametrize("case_id", ["p2", "p5"])
def test_zoo_bit_identical_at_every_bound(case_id):
    """The per-bound fixpoints agree, not just the final aggregate."""
    max_frames = build_case(case_id).max_frames
    for bound in range(1, max_frames + 1):
        _assert_bit_identical(lambda: build_case(case_id), bound=bound)


# ----------------------------------------------------------------------
# Fuzzed netlists
# ----------------------------------------------------------------------
def build_fuzzed_case(seed: int):
    """A random sequential design mixing every implication rule family."""
    rng = random.Random(seed)
    circuit = Circuit("fuzz_%d" % seed)
    a = circuit.input("a", 3)
    b = circuit.input("b", 3)
    state = circuit.state("state", 3)
    terms = [a, b, state]
    for _ in range(rng.randint(3, 6)):
        kind = rng.choice(["add", "sub", "and", "or", "xor", "mul", "mux"])
        x, y = rng.choice(terms), rng.choice(terms)
        if kind == "add":
            terms.append(circuit.add(x, y))
        elif kind == "sub":
            terms.append(circuit.sub(x, y))
        elif kind == "and":
            terms.append(circuit.and_(x, y))
        elif kind == "or":
            terms.append(circuit.or_(x, y))
        elif kind == "xor":
            terms.append(circuit.xor(x, y))
        elif kind == "mul":
            terms.append(circuit.mul(x, y, out_width=3))
        else:
            terms.append(circuit.mux(circuit.lt(x, rng.randint(1, 6)), x, y))
    circuit.dff_into(state, terms[-1], init_value=rng.randint(0, 7))
    circuit.output(state)
    return circuit


class _FuzzCase:
    """Just enough of a PreparedCase for :func:`_run_case`."""

    def __init__(self, circuit, prop, max_frames):
        self.circuit = circuit
        self.prop = prop
        self.environment = None
        self.initial_state = None
        self.max_frames = max_frames


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("kind", ["assertion", "witness"])
def test_fuzzed_netlists_bit_identical(seed, kind):
    target = random.Random(seed * 31 + 7).randint(0, 7)
    if kind == "assertion":
        prop = Assertion("never_%d" % target, Signal("state") != target)
    else:
        prop = Witness("reach_%d" % target, Signal("state") == target)

    def factory():
        return _FuzzCase(build_fuzzed_case(seed), prop, max_frames=6)

    _assert_bit_identical(factory)


# ----------------------------------------------------------------------
# Slot-level mechanics
# ----------------------------------------------------------------------
def _paired_models():
    """One circuit shape, one interpreted + one compiled unrolled model."""
    from repro.atpg.timeframe import UnrolledModel

    models = []
    for compiled in (False, True):
        circuit = build_fuzzed_case(3)
        models.append(UnrolledModel(circuit, 3, compiled=compiled))
    return models


def _named_snapshot(model):
    """The engine snapshot keyed by (net name, frame), so snapshots of two
    models built from distinct circuit instances compare meaningfully."""
    return {
        (net.name, frame): str(cube)
        for (net, frame), cube in model.engine.assignment.snapshot().items()
    }


def test_savepoint_rollback_restores_slot_lanes_exactly():
    from repro.bitvector import BV3

    interp, compiled = _paired_models()
    assignment = compiled.engine.assignment
    baseline = (list(assignment._known), list(assignment._value),
                dict(assignment._live))
    interp_baseline = _named_snapshot(interp)
    assert _named_snapshot(compiled) == interp_baseline

    for model in (interp, compiled):
        savepoint = model.engine.savepoint()
        engine = model.engine
        engine.assign(model.key(model.circuit.net("a"), 0), BV3.from_int(3, 5))
        engine.assign(model.key(model.circuit.net("b"), 1), BV3.from_int(3, 2))
        engine.rollback_to(savepoint)

    # The interpreted snapshots agree after the round trip...
    assert _named_snapshot(interp) == interp_baseline
    assert _named_snapshot(compiled) == interp_baseline
    # ...and the compiled lanes (including the live-slot insertion order,
    # which feeds ``known_keys`` / trace extraction) are restored verbatim.
    assert list(assignment._known) == baseline[0]
    assert list(assignment._value) == baseline[1]
    assert dict(assignment._live) == baseline[2]


def test_dirty_set_frontier_matches_full_scan():
    from repro.bitvector import BV3

    for model in _paired_models():
        engine = model.engine
        order = model.node_order()
        state_key = model.key(model.circuit.net("state"), 2)
        savepoint = engine.savepoint()
        engine.assign(state_key, BV3.from_int(3, 6))
        incremental = engine.unjustified_frontier(order)
        full = engine.unjustified_nodes(model.active_nodes())
        assert [node.name for node in incremental] == [
            node.name for node in full
        ], "mode compiled=%s" % (model.compiled,)
        # Rolling back dirties the restored slots; the frontier must follow.
        engine.rollback_to(savepoint)
        assert engine.unjustified_frontier(order) == engine.unjustified_nodes(
            model.active_nodes()
        )


# ----------------------------------------------------------------------
# Warm knowledge-base round trips across modes
# ----------------------------------------------------------------------
def test_warm_kb_replays_bit_identically_across_modes(tmp_path):
    """Facts learned by one mode warm-start the other bit-identically.

    p15 is the datapath-certificate sweep: the cold run learns solver
    infeasibility cores (schema v2) alongside cubes and FAIL memos; both
    warm runs must replay all three without a single solver call.
    """
    kb_path = os.fspath(tmp_path / "kb.sqlite")
    cold, _ = _run_case(build_case("p15"), compiled=True, kb_path=kb_path)
    assert cold.statistics.solver_cores_learned > 0

    warm_interp, interp_estg = _run_case(
        build_case("p15"), compiled=False, kb_path=kb_path
    )
    warm_compiled, compiled_estg = _run_case(
        build_case("p15"), compiled=True, kb_path=kb_path
    )
    assert warm_interp.status == warm_compiled.status == cold.status
    assert _comparable(warm_interp.statistics) == _comparable(
        warm_compiled.statistics
    )
    assert interp_estg == compiled_estg
    # Warm runs re-solve nothing and replay knowledge-base facts.
    assert warm_compiled.statistics.arithmetic_calls == 0
    assert warm_compiled.statistics.kb_hits > 0


def test_warm_kb_daemon_round_trip_across_modes(tmp_path):
    """A real daemon's warm worker serves both modes bit-identically.

    The service worker holds resident models (compiled state included) and
    one open knowledge-base handle across jobs.  After a cold compiled
    submit primes the store, a warm submit in *either* mode must replay the
    persisted facts and answer with the same verdict, trace and search
    statistics -- the model cache keys on the engine flavour, so neither
    mode can warm the other's caches.
    """
    from repro import api
    from repro.service.client import (
        ServiceClient,
        check_via_service,
        service_available,
    )
    from repro.service.supervisor import ServiceOptions, serve

    kb_path = os.fspath(tmp_path / "kb.sqlite")
    socket_path = os.fspath(tmp_path / "repro-service.sock")

    def request(compiled):
        return api.CheckRequest(
            circuit=api.CircuitRef.case("p15"),
            kb_path=kb_path,
            compiled=compiled,
        )

    thread = threading.Thread(
        target=lambda: asyncio.run(serve(ServiceOptions(socket_path=socket_path))),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if os.path.exists(socket_path) and service_available(socket_path):
            break
        time.sleep(0.05)
    else:
        raise RuntimeError("daemon did not come up")
    try:
        cold = check_via_service(
            request(True), socket_path=socket_path, fallback=False
        )
        warm_compiled = check_via_service(
            request(True), socket_path=socket_path, fallback=False
        )
        warm_interp = check_via_service(
            request(False), socket_path=socket_path, fallback=False
        )
    finally:
        with contextlib.suppress(Exception):
            with ServiceClient(
                socket_path, connect_timeout=2.0, read_timeout=5.0
            ) as client:
                client.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "daemon thread failed to shut down"

    assert cold.source == warm_compiled.source == warm_interp.source == "daemon"
    # Same daemon worker answered all three (keyed by circuit fingerprint).
    assert warm_interp.service["worker"]["jobs_done"] >= 3

    [cold_r] = cold.results
    [compiled_r] = warm_compiled.results
    [interp_r] = warm_interp.results
    assert cold_r.status == compiled_r.status == interp_r.status
    assert compiled_r.trace == interp_r.trace == cold_r.trace

    # Residency gauges measure cache warmth, not the engine: the compiled
    # job reuses the resident model (facts still in its ESTG from the cold
    # run), the interpreted job builds fresh and loads from the store.
    warmth_keys = {
        "models_reused",
        "frames_built",
        "kb_cubes_loaded",
        "kb_solver_cores_loaded",
        "kb_hits",
    }

    def comparable(result):
        return {
            key: value
            for key, value in result.stats.items()
            if key not in TIME_KEYS | MODE_KEYS | warmth_keys
        }

    assert comparable(compiled_r) == comparable(interp_r)
    # Both warm runs replay the store's cores/cubes/memos: no solver calls.
    assert compiled_r.stats["arithmetic_calls"] == 0
    assert interp_r.stats["arithmetic_calls"] == 0
    assert interp_r.stats["kb_hits"] > 0


# ----------------------------------------------------------------------
# Cube-hit decision ordering (off by default)
# ----------------------------------------------------------------------
def test_cube_hit_ordering_deterministic_and_mode_identical():
    first, _ = _run_case(build_case("p5"), compiled=True, cube_hit_ordering=True)
    second, _ = _run_case(build_case("p5"), compiled=True, cube_hit_ordering=True)
    assert first.status == second.status
    assert _comparable(first.statistics) == _comparable(second.statistics)

    # The heuristic changes decision order, never the A/B contract.
    _assert_bit_identical(lambda: build_case("p5"), cube_hit_ordering=True)

    # And never the verdict.
    baseline, _ = _run_case(build_case("p5"), compiled=True)
    assert first.status == baseline.status
