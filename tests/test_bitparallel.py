"""Cross-checks of the bit-parallel compiled kernel against the oracle.

The contract of :mod:`repro.sim` is *exact* lane-for-lane agreement with the
interpreted :class:`~repro.simulation.simulator.Simulator` on every net, for
every circuit the netlist layer can express -- including tri-state buses
(with contention and no-driver cycles), word-level arithmetic (multipliers,
variable shifts, carry chains) and registers with unknown power-on values.
The tests drive both simulators with identical random stimulus and compare
every computed net every cycle.
"""

import random

import pytest

from repro.baselines import RandomSimulationChecker, RandomSimulationOptions
from repro.checker import CheckStatus
from repro.circuits import all_case_ids, build_case
from repro.netlist import Circuit
from repro.properties import Assertion, Environment, Signal
from repro.sim import (
    BitParallelSim,
    RandomLaneSampler,
    compile_circuit,
    pack_words,
    unpack_words,
)
from repro.simulation.simulator import Simulator


# ----------------------------------------------------------------------
# Shared cross-check driver
# ----------------------------------------------------------------------
def assert_lane_exact(circuit, environment=None, initial_state=None,
                      lanes=16, cycles=4, seed=0):
    """Simulate both backends with identical stimulus; compare every net."""
    plan = compile_circuit(circuit)
    sampler = RandomLaneSampler(circuit, environment)
    rng = random.Random(seed)
    parallel = BitParallelSim(plan, lanes=lanes, initial_state=initial_state)
    scalars = [
        Simulator(circuit, initial_state=initial_state) for _ in range(lanes)
    ]
    for cycle in range(cycles):
        stimulus = sampler.sample(rng, lanes)
        parallel.step(stimulus)
        for lane in range(lanes):
            values = scalars[lane].step(sampler.scalar_vector(stimulus, lane))
            for name, expected in values.items():
                got = parallel.sample(name, lane)
                assert got == expected, (
                    "lane mismatch: %s cycle=%d lane=%d net=%s kernel=%d oracle=%d"
                    % (circuit.name, cycle, lane, name, got, expected)
                )


# ----------------------------------------------------------------------
# Lane packing
# ----------------------------------------------------------------------
def test_pack_unpack_roundtrip():
    rng = random.Random(3)
    for width in (1, 3, 8, 17):
        words = [rng.getrandbits(width) for _ in range(29)]
        lanes = pack_words(words, width)
        assert len(lanes) == width
        assert unpack_words(lanes, len(words)) == words


def test_sample_matches_unpack():
    circuit = Circuit("tiny")
    a = circuit.input("a", 4)
    circuit.output(circuit.not_(a), name="na")
    sim = BitParallelSim(circuit, lanes=8)
    words = [1, 2, 3, 4, 5, 6, 7, 8]
    sim.step({"a": pack_words(words, 4)})
    assert unpack_words(sim.peek("na"), 8) == [(~w) & 0xF for w in words]
    assert sim.sample("na", 3) == (~4) & 0xF


# ----------------------------------------------------------------------
# The whole benchmark zoo, lane-exact
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_id", all_case_ids())
def test_zoo_lane_exactness(case_id):
    case = build_case(case_id)
    assert_lane_exact(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        lanes=8,
        cycles=4,
        seed=17,
    )


# ----------------------------------------------------------------------
# Every primitive in one circuit (arith, tristate, X power-on, wide mux)
# ----------------------------------------------------------------------
def build_gate_soup():
    circuit = Circuit("gate_soup")
    a = circuit.input("a", 8)
    b = circuit.input("b", 8)
    sel = circuit.input("sel", 2)
    en0 = circuit.input("en0", 1)
    en1 = circuit.input("en1", 1)
    cin = circuit.input("cin", 1)
    amt = circuit.input("amt", 4)

    circuit.output(circuit.and_(a, b), name="o_and")
    circuit.output(circuit.nand(a, b, circuit.xor(a, b)), name="o_nand3")
    circuit.output(circuit.xnor(a, b), name="o_xnor")
    circuit.output(circuit.nor(a, b), name="o_nor")
    total, carry = circuit.add(a, b, carry_in=cin, with_carry_out=True)
    circuit.output(total, name="o_sum")
    circuit.output(carry, name="o_carry")
    circuit.output(circuit.sub(a, b), name="o_sub")
    circuit.output(circuit.mul(a, b), name="o_mul")
    circuit.output(circuit.mul(a, b, out_width=4), name="o_mul_narrow")
    circuit.output(circuit.shl(a, 3), name="o_shl_const")
    circuit.output(circuit.shr(a, 11), name="o_shr_big")
    circuit.output(circuit.shl(a, amt), name="o_shl_var")
    circuit.output(circuit.shr(a, amt), name="o_shr_var")
    for op_name, build in (("eq", circuit.eq), ("ne", circuit.ne),
                           ("lt", circuit.lt), ("le", circuit.le),
                           ("gt", circuit.gt), ("ge", circuit.ge)):
        circuit.output(build(a, b), name="o_%s" % op_name)
    circuit.output(circuit.mux(sel, a, b, circuit.not_(a)), name="o_mux3")
    circuit.output(circuit.reduce_and(a), name="o_redand")
    circuit.output(circuit.reduce_or(a), name="o_redor")
    circuit.output(circuit.reduce_xor(a), name="o_redxor")
    circuit.output(circuit.concat(circuit.slice(a, 5, 2), circuit.bit(b, 7)),
                   name="o_concat")
    circuit.output(circuit.zext(circuit.slice(a, 3, 0), 8), name="o_zext")

    # Tri-state bus with potential contention and no-driver cycles.
    t0 = circuit.tribuf(a, en0)
    t1 = circuit.tribuf(b, en1)
    circuit.output(circuit.bus([(t0, en0), (t1, en1)]), name="o_bus")

    # Registers: plain, enabled, reset, set, and unknown power-on.
    circuit.output(circuit.dff(a, name="q_plain"))
    circuit.output(circuit.dff(a, enable=en0, name="q_enable"))
    circuit.output(circuit.dff(a, reset=en1, reset_value=0xA5, name="q_reset"))
    circuit.output(circuit.dff(a, set_=en0, name="q_set"))
    circuit.output(circuit.dff(a, init_value=None, name="q_unknown"))
    return circuit


def test_gate_soup_lane_exactness():
    assert_lane_exact(build_gate_soup(), lanes=32, cycles=5, seed=5)


def test_gate_soup_with_initial_state():
    circuit = build_gate_soup()
    assert_lane_exact(
        circuit, initial_state={"q_plain": 0x3C, "q_unknown": 0x81},
        lanes=8, cycles=3, seed=9,
    )


# ----------------------------------------------------------------------
# Randomized netlist fuzzing
# ----------------------------------------------------------------------
def build_random_circuit(seed, num_gates=40):
    """A random DAG over the full primitive set (seeded, reproducible)."""
    rng = random.Random(seed)
    circuit = Circuit("fuzz_%d" % seed)
    nets = []
    for index in range(rng.randint(2, 4)):
        nets.append(circuit.input("in%d" % index, rng.choice([1, 1, 2, 4, 8, 12])))
    states = []
    for index in range(rng.randint(1, 3)):
        q = circuit.state("st%d" % index, rng.choice([1, 2, 4, 8]))
        states.append(q)
        nets.append(q)

    def pick(width=None):
        net = rng.choice(nets)
        if width is None or net.width == width:
            return net
        if net.width > width:
            lsb = rng.randrange(net.width - width + 1)
            return circuit.slice(net, lsb + width - 1, lsb)
        return circuit.zext(net, width)

    def pick_bit():
        return pick(1)

    for _ in range(num_gates):
        kind = rng.randrange(12)
        if kind == 0:
            width = rng.choice([1, 2, 4, 8])
            build = rng.choice([circuit.and_, circuit.or_, circuit.xor,
                                circuit.nand, circuit.nor, circuit.xnor])
            operands = [pick(width) for _ in range(rng.randint(2, 3))]
            nets.append(build(*operands))
        elif kind == 1:
            nets.append(circuit.not_(pick()))
        elif kind == 2:
            width = rng.choice([2, 4, 8])
            if rng.random() < 0.5:
                total, carry = circuit.add(
                    pick(width), pick(width),
                    carry_in=pick_bit() if rng.random() < 0.5 else None,
                    with_carry_out=True,
                )
                nets.extend([total, carry])
            else:
                nets.append(circuit.sub(pick(width), pick(width)))
        elif kind == 3:
            width = rng.choice([2, 4])
            out_width = rng.choice([width, 2 * width])
            nets.append(circuit.mul(pick(width), pick(width), out_width=out_width))
        elif kind == 4:
            build = rng.choice([circuit.shl, circuit.shr])
            source = pick(rng.choice([4, 8]))
            if rng.random() < 0.5:
                nets.append(build(source, rng.randrange(10)))
            else:
                nets.append(build(source, pick(rng.choice([2, 4]))))
        elif kind == 5:
            width = rng.choice([1, 4, 8])
            build = rng.choice([circuit.eq, circuit.ne, circuit.lt,
                                circuit.le, circuit.gt, circuit.ge])
            nets.append(build(pick(width), pick(width)))
        elif kind == 6:
            width = rng.choice([1, 4])
            count = rng.randint(2, 4)
            select = pick(max(1, (count - 1).bit_length()))
            nets.append(circuit.mux(select, *[pick(width) for _ in range(count)]))
        elif kind == 7:
            nets.append(circuit.concat(pick(), pick()))
        elif kind == 8:
            build = rng.choice([circuit.reduce_and, circuit.reduce_or,
                                circuit.reduce_xor])
            nets.append(build(pick()))
        elif kind == 9:
            width = rng.choice([1, 4])
            drivers = []
            for _ in range(rng.randint(1, 3)):
                enable = pick_bit()
                drivers.append((circuit.tribuf(pick(width), enable), enable))
            nets.append(circuit.bus(drivers))
        elif kind == 10:
            nets.append(circuit.const(rng.getrandbits(4), rng.choice([2, 4, 8])))
        else:
            nets.append(circuit.dff(
                pick(rng.choice([1, 4])),
                enable=pick_bit() if rng.random() < 0.3 else None,
                reset=pick_bit() if rng.random() < 0.3 else None,
                init_value=None if rng.random() < 0.3 else rng.getrandbits(3),
            ))

    for q in states:
        circuit.dff_into(
            q, pick(q.width),
            enable=pick_bit() if rng.random() < 0.5 else None,
            reset=pick_bit() if rng.random() < 0.5 else None,
            reset_value=rng.getrandbits(q.width),
            init_value=None if rng.random() < 0.3 else rng.getrandbits(q.width),
        )
    for _ in range(3):
        circuit.output(rng.choice(nets))
    circuit.validate()
    return circuit


@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_circuits_lane_exactness(seed):
    circuit = build_random_circuit(seed)
    assert_lane_exact(circuit, lanes=16, cycles=4, seed=100 + seed)


# ----------------------------------------------------------------------
# The rewired random-simulation checker
# ----------------------------------------------------------------------
def build_counter(limit=5, width=3):
    circuit = Circuit("counter")
    en = circuit.input("en", 1)
    cnt = circuit.state("cnt", width)
    at_max = circuit.eq(cnt, limit)
    nxt = circuit.mux(at_max, circuit.add(cnt, 1), circuit.const(0, width))
    circuit.dff_into(cnt, circuit.mux(en, cnt, nxt), init_value=0)
    circuit.output(cnt)
    return circuit


def test_backends_find_the_same_easy_bug():
    prop = Assertion("never_two", Signal("cnt") != 2)
    for backend in ("bitparallel", "interpreted"):
        checker = RandomSimulationChecker(
            build_counter(),
            options=RandomSimulationOptions(
                num_runs=16, cycles_per_run=16, seed=7, backend=backend
            ),
        )
        result = checker.check(prop)
        assert result.status is CheckStatus.FAILS, backend
        assert result.counterexample is not None
        assert result.counterexample.validated
        frame = result.counterexample.target_frame
        assert result.counterexample.trace[frame]["cnt"] == 2


def test_bitparallel_checker_counts_vectors_and_is_deterministic():
    options = RandomSimulationOptions(
        num_runs=10, cycles_per_run=8, seed=42, sim_width=4
    )
    prop = Assertion("never_seven", Signal("cnt") != 7)
    first = RandomSimulationChecker(build_counter(), options=options)
    result_a = first.check(prop)
    # 10 runs in lane batches of 4+4+2, 8 cycles each.
    assert first.vectors_simulated == 10 * 8
    assert result_a.status is CheckStatus.HOLDS
    second = RandomSimulationChecker(build_counter(), options=options)
    result_b = second.check(prop)
    assert result_b.status == result_a.status
    assert second.vectors_simulated == first.vectors_simulated


def test_bitparallel_checker_respects_environment():
    circuit = Circuit("pair")
    r0 = circuit.input("r0", 1)
    r1 = circuit.input("r1", 1)
    circuit.output(circuit.and_(r0, r1), name="both")
    environment = Environment().one_hot(["r0", "r1"])
    checker = RandomSimulationChecker(
        circuit,
        environment=environment,
        options=RandomSimulationOptions(num_runs=64, cycles_per_run=4, seed=5),
    )
    result = checker.check(Assertion("never_both", Signal("both") == 0))
    assert result.status is CheckStatus.HOLDS  # one-hot forbids r0 & r1


def test_oracle_refuted_hit_is_demoted_to_aborted(monkeypatch):
    """A kernel hit the interpreted replay cannot reproduce must never be
    reported as a conclusive verdict (mirrors the ATPG/SAT demotion)."""
    from repro.checker.result import Counterexample

    def fake_replay(self, sampler, inputs_per_cycle, lane, target_frame,
                    monitor_name, goal_value):
        return Counterexample(
            initial_state={}, inputs=[{}], trace=[{monitor_name: 1 - goal_value}],
            target_frame=0, monitor_name=monitor_name, validated=False,
        )

    monkeypatch.setattr(RandomSimulationChecker, "_replay_lane", fake_replay)
    checker = RandomSimulationChecker(
        build_counter(),
        options=RandomSimulationOptions(num_runs=16, cycles_per_run=16, seed=7),
    )
    result = checker.check(Assertion("never_two", Signal("cnt") != 2))
    assert result.status is CheckStatus.ABORTED
    assert result.counterexample is None


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        RandomSimulationChecker(
            build_counter(),
            options=RandomSimulationOptions(backend="quantum"),
        )


# ----------------------------------------------------------------------
# Mass-sampled signal probabilities
# ----------------------------------------------------------------------
def test_estimate_signal_probabilities():
    from repro.atpg.probability import estimate_signal_probabilities

    circuit = Circuit("probs")
    a = circuit.input("a", 1)
    b = circuit.input("b", 1)
    circuit.output(circuit.and_(a, b), name="ab")
    circuit.output(circuit.or_(a, b), name="a_or_b")
    probabilities = estimate_signal_probabilities(circuit, num_vectors=4096, seed=1)
    assert abs(probabilities["ab"] - 0.25) < 0.05
    assert abs(probabilities["a_or_b"] - 0.75) < 0.05
    assert abs(probabilities["a"] - 0.5) < 0.05


def test_estimate_signal_probabilities_respects_pins():
    from repro.atpg.probability import estimate_signal_probabilities

    circuit = Circuit("pinned")
    a = circuit.input("a", 1)
    b = circuit.input("b", 1)
    circuit.output(circuit.and_(a, b), name="ab")
    environment = Environment().pin("a", 1)
    probabilities = estimate_signal_probabilities(
        circuit, environment=environment, num_vectors=2048, seed=2
    )
    assert probabilities["a"] == 1.0
    assert abs(probabilities["ab"] - 0.5) < 0.06


def test_sampled_probabilities_replace_uninformative_rule_default():
    """Word-level primitives contribute a flat 0.5 through the backward
    rules; the mass-sampled estimate must stand in for it and drive the
    candidate ranking."""
    from repro.atpg import UnrolledModel, find_decision_candidates
    from repro.bitvector import BV3

    circuit = Circuit("muxsel")
    select = circuit.input("s", 1)
    a = circuit.input("a", 1)
    b = circuit.input("b", 1)
    out = circuit.mux(select, a, b, name="out")
    circuit.output(out)

    def candidates(sampled):
        model = UnrolledModel(circuit, 1)
        model.assign(out, 0, BV3.from_int(1, 1), propagate=False)
        return find_decision_candidates(
            model,
            model.engine.unjustified_nodes(),
            sampled_probabilities=sampled,
        )

    flat = {c.key[0].name: c for c in candidates(None)}
    assert flat["s"].probability_one == 0.5  # the uninformative Mux default

    biased = {c.key[0].name: c for c in candidates({"s": 0.9})}
    assert biased["s"].probability_one == 0.9
    assert biased["s"].bias_value == 1
    # The sampled bias now ranks the select ahead of the unbiased data inputs.
    assert biased["s"].bias > flat["s"].bias


def test_checker_with_sampled_bias_agrees_with_default():
    from repro.checker import AssertionChecker, CheckerOptions

    case = build_case("p3")
    baseline = AssertionChecker(
        build_case("p3").circuit,
        environment=build_case("p3").environment,
        initial_state=build_case("p3").initial_state,
        options=CheckerOptions(max_frames=case.max_frames),
    ).check(build_case("p3").prop)
    sampled = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(
            max_frames=case.max_frames, probability_sample_vectors=512
        ),
    ).check(case.prop)
    assert sampled.status == baseline.status == case.expected_status
