"""Unit and property-based tests for the three-valued bit-vector domain."""

import pytest
from hypothesis import given, strategies as st

from repro.bitvector import BV3, BV3Conflict
from repro.bitvector.bv3 import bv


# ----------------------------------------------------------------------
# Construction and formatting
# ----------------------------------------------------------------------
def test_from_string_parses_verilog_style_literals():
    cube = BV3.from_string("4'b10xx")
    assert cube.width == 4
    assert cube.bit(3) == 1
    assert cube.bit(2) == 0
    assert cube.bit(1) is None
    assert cube.bit(0) is None
    assert str(cube) == "4'b10xx"


def test_from_string_rejects_width_mismatch_and_bad_chars():
    with pytest.raises(ValueError):
        BV3.from_string("3'b10xx")
    with pytest.raises(ValueError):
        BV3.from_string("4'b10a1")
    with pytest.raises(ValueError):
        BV3.from_string("")


def test_from_int_wraps_modulo_width():
    assert BV3.from_int(4, 18).to_int() == 2
    assert BV3.from_int(4, -1).to_int() == 15


def test_unknown_and_known_counts():
    cube = bv("1x0x")
    assert cube.num_known() == 2
    assert cube.num_unknown() == 2
    assert not cube.is_fully_known()
    assert not cube.is_fully_unknown()
    assert BV3.unknown(3).is_fully_unknown()
    assert BV3.from_int(3, 5).is_fully_known()


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        BV3(0)
    with pytest.raises(ValueError):
        BV3(-2)


def test_bits_round_trip():
    cube = bv("x10x")
    assert list(cube.bits()) == [None, 0, 1, None]
    assert BV3.from_bits(list(cube.bits())) == cube


def test_immutability():
    cube = bv("10x1")
    with pytest.raises(AttributeError):
        cube.value = 3


# ----------------------------------------------------------------------
# Min / max / completions
# ----------------------------------------------------------------------
def test_min_max_values_match_paper_convention():
    # Paper Fig. 4: in_a = 4'bx01x spans [2, 11], in_b = 4'b1x0x spans [8, 13].
    assert bv("x01x").min_value() == 2
    assert bv("x01x").max_value() == 11
    assert bv("1x0x").min_value() == 8
    assert bv("1x0x").max_value() == 13


def test_completions_and_contains():
    cube = bv("1x0x")
    values = sorted(cube.completions())
    assert values == [8, 9, 12, 13]
    for value in values:
        assert cube.contains_int(value)
    assert not cube.contains_int(10)
    assert cube.num_completions() == 4


# ----------------------------------------------------------------------
# Lattice operations
# ----------------------------------------------------------------------
def test_intersect_combines_knowledge():
    merged = bv("1xx0").intersect(bv("x1x0"))
    assert merged == bv("11x0")


def test_intersect_conflict():
    with pytest.raises(BV3Conflict):
        bv("10xx").intersect(bv("11xx"))


def test_union_keeps_agreeing_bits_only():
    assert bv("1100").union(bv("1010")) == bv("1xx0")
    assert bv("1111").union(bv("1111")) == bv("1111")


def test_covers_and_refines():
    general = bv("1xxx")
    specific = bv("10x1")
    assert general.covers(specific)
    assert not specific.covers(general)
    assert specific.refines(general)


def test_compatible():
    assert bv("1x0x").compatible(bv("xx01"))
    assert not bv("1x0x").compatible(bv("0x0x"))


def test_set_bit_and_conflict():
    cube = bv("x0xx").set_bit(3, 1)
    assert cube == bv("10xx")
    with pytest.raises(BV3Conflict):
        cube.set_bit(3, 0)
    # Setting an already-known bit to the same value is a no-op.
    assert cube.set_bit(3, 1) == cube


# ----------------------------------------------------------------------
# Bitwise three-valued operators
# ----------------------------------------------------------------------
def test_and3_matches_paper_example():
    # Paper Section 3.1: a = 10xx, b = 1x1x implies output bits 10?x -> 4'b1_0_x_x AND.
    a = BV3.from_string("10xx")
    b = BV3.from_string("1x1x")
    result = a.and3(b)
    assert result.bit(3) == 1
    assert result.bit(2) == 0
    assert result.bit(1) is None
    assert result.bit(0) is None


def test_or3_and_xor3():
    assert bv("1x0x").or3(bv("0x1x")) == bv("1x1x")
    assert bv("10xx").xor3(bv("11xx")) == bv("01xx")


def test_invert():
    assert (~bv("1x0x")) == bv("0x1x")


# ----------------------------------------------------------------------
# Structural operations
# ----------------------------------------------------------------------
def test_slice_concat_round_trip():
    cube = bv("10x1x0")
    high = cube.slice(5, 3)
    low = cube.slice(2, 0)
    assert high.concat(low) == cube


def test_zero_extend_and_truncate():
    cube = bv("1x")
    extended = cube.zero_extend(4)
    assert extended == bv("001x")
    assert extended.truncate(2) == cube
    with pytest.raises(ValueError):
        cube.zero_extend(1)
    with pytest.raises(ValueError):
        cube.truncate(3)


def test_bv_helper():
    assert bv(5, width=4) == BV3.from_int(4, 5)
    assert bv("x1") == BV3.from_string("x1")
    with pytest.raises(ValueError):
        bv(3)
    with pytest.raises(TypeError):
        bv(1.5, width=3)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
cube_strategy = st.integers(1, 8).flatmap(
    lambda width: st.tuples(
        st.just(width),
        st.integers(0, (1 << width) - 1),
        st.integers(0, (1 << width) - 1),
    )
).map(lambda spec: BV3(spec[0], spec[1], spec[2]))


@given(cube_strategy)
def test_min_max_are_completions(cube):
    assert cube.contains_int(cube.min_value())
    assert cube.contains_int(cube.max_value())
    assert cube.min_value() <= cube.max_value()


@given(cube_strategy, cube_strategy)
def test_intersection_is_exact_on_completions(a, b):
    if a.width != b.width:
        return
    set_a = set(a.completions())
    set_b = set(b.completions())
    if a.compatible(b):
        merged = a.intersect(b)
        assert set(merged.completions()) == (set_a & set_b) or set(
            merged.completions()
        ).issuperset(set_a & set_b)
    else:
        assert not (set_a & set_b)


@given(cube_strategy, cube_strategy)
def test_union_over_approximates_both(a, b):
    if a.width != b.width:
        return
    union = a.union(b)
    for value in list(a.completions()) + list(b.completions()):
        assert union.contains_int(value)


@given(cube_strategy, cube_strategy)
def test_and3_soundness(a, b):
    """Every concrete AND result is contained in the three-valued AND cube."""
    if a.width != b.width:
        return
    cube = a.and3(b)
    for x in a.completions():
        for y in b.completions():
            assert cube.contains_int(x & y)


@given(cube_strategy)
def test_string_round_trip(cube):
    assert BV3.from_string(str(cube)) == cube
