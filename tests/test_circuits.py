"""Tests for the benchmark designs and the paper's fourteen properties."""

import pytest

from repro.checker import AssertionChecker, CheckerOptions
from repro.circuits import (
    all_case_ids,
    all_cases,
    build_addr_decoder,
    build_alarm_clock,
    build_arbiter,
    build_case,
    build_industry_01,
    build_industry_02,
    build_industry_03,
    build_industry_04,
    build_industry_05,
    build_token_ring,
    circuit_statistics,
)
from repro.simulation import Simulator


# ----------------------------------------------------------------------
# Structural sanity of every design (Table 1 reproduction support)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "builder, name",
    [
        (build_addr_decoder, "addr_decoder"),
        (build_token_ring, "token_ring"),
        (build_arbiter, "arbiter"),
        (build_alarm_clock, "alarm_clock"),
        (build_industry_01, "industry_01"),
        (build_industry_02, "industry_02"),
        (build_industry_03, "industry_03"),
        (build_industry_04, "industry_04"),
        (build_industry_05, "industry_05"),
    ],
)
def test_designs_validate_and_report_stats(builder, name):
    ports = builder()
    circuit = ports.circuit
    circuit.validate()
    stats = circuit.stats()
    assert stats.name == name
    assert stats.inputs > 0
    assert stats.gates > 0


def test_circuit_statistics_table():
    rows = circuit_statistics()
    assert len(rows) == 9
    names = [row.name for row in rows]
    assert names[0] == "addr_decoder" and names[-1] == "industry_05"


# ----------------------------------------------------------------------
# Behavioural simulation checks
# ----------------------------------------------------------------------
def test_addr_decoder_write_behaviour():
    ports = build_addr_decoder(num_cells=4, data_width=4)
    simulator = Simulator(ports.circuit)
    simulator.step({"addr": 2, "data_in": 9, "we": 1})
    assert simulator.register_values()["cell_2"] == 9
    assert simulator.register_values()["cell_1"] == 0
    simulator.step({"addr": 2, "data_in": 5, "we": 0})
    assert simulator.register_values()["cell_2"] == 9


def test_token_ring_rotation_and_one_hot():
    ports = build_token_ring(num_clients=4)
    simulator = Simulator(ports.circuit)
    seen = []
    for _ in range(5):
        out = simulator.step({"req_0": 1})
        token = out["token"]
        seen.append(token)
        assert bin(token).count("1") == 1
    assert seen[0] == 1 and seen[1] == 2 and seen[3] == 8 and seen[4] == 1


def test_arbiter_parks_and_rotates():
    ports = build_arbiter(num_clients=3)
    simulator = Simulator(ports.circuit)
    out = simulator.step({"req_0": 1, "req_1": 0, "req_2": 0})
    assert out["grant"] == 1  # owner requesting -> hold
    out = simulator.step({"req_0": 1, "req_1": 0, "req_2": 0})
    assert out["grant"] == 1
    out = simulator.step({"req_0": 0, "req_1": 0, "req_2": 1})
    assert out["grant"] == 1  # still owned this cycle, rotation happens at the edge
    out = simulator.step({"req_0": 0, "req_1": 0, "req_2": 1})
    assert out["grant"] == 2  # rotated away from idle owner
    assert bin(out["grant"]).count("1") == 1


def test_alarm_clock_rollover():
    ports = build_alarm_clock()
    simulator = Simulator(ports.circuit, initial_state={"hour": 11, "minute": 59})
    simulator.step({"tick": 1})
    state = simulator.register_values()
    assert state["hour"] == 12 and state["minute"] == 0
    # Setting the hour wraps 12 -> 1.
    simulator = Simulator(ports.circuit)
    simulator.step({"set_time": 1, "inc_hour": 1})
    assert simulator.register_values()["hour"] == 1


def test_alarm_clock_alarm_fires():
    ports = build_alarm_clock()
    simulator = Simulator(ports.circuit, initial_state={"hour": 7, "minute": 30,
                                                        "alarm_hour": 7, "alarm_minute": 30,
                                                        "alarm_on": 1})
    out = simulator.step({"tick": 0})
    assert out["alarm_fire"] == 1
    out = simulator.step({"tick": 0, "snooze": 1})
    assert out["alarm_fire"] == 0


def test_industry_01_mode_stays_valid():
    ports = build_industry_01()
    simulator = Simulator(ports.circuit)
    for command in (7, 3, 6, 2, 5):
        simulator.step({"command": command, "enable": 1, "operand": 5})
        assert simulator.register_values()["mode"] <= 4


def test_industry_02_bus_follows_selected_driver():
    ports = build_industry_02(num_drivers=4, bus_width=8)
    simulator = Simulator(ports.circuit)
    simulator.step({"select_in": 2, "load": 1, "src_2": 77})
    out = simulator.step({"select_in": 2, "load": 0, "src_2": 77})
    assert out["enable_2"] == 1
    assert sum(out["enable_%d" % i] for i in range(4)) == 1


def test_industry_05_state_stays_one_hot():
    ports = build_industry_05()
    simulator = Simulator(ports.circuit)
    sequences = [
        {"start": 1, "finish": 0, "abort": 0},
        {"start": 0, "finish": 1, "abort": 1},  # finish and abort together
        {"start": 0, "finish": 0, "abort": 0},
        {"start": 1, "finish": 1, "abort": 0},
    ]
    for vector in sequences:
        simulator.step(vector)
        state = simulator.register_values()["state"]
        assert bin(state).count("1") == 1


# ----------------------------------------------------------------------
# The fourteen paper properties, end to end
# ----------------------------------------------------------------------
def test_case_catalog_is_complete():
    assert all_case_ids() == ["p%d" % i for i in range(1, 15)]
    descriptors = all_cases()
    assert len(descriptors) == 14
    assert all(case.design for case in descriptors)
    with pytest.raises(KeyError):
        build_case("p99")


@pytest.mark.parametrize("case_id", all_case_ids())
def test_paper_property_verdicts(case_id):
    """Every property p1-p14 must reproduce the verdict the paper reports."""
    case = build_case(case_id)
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(max_frames=case.max_frames),
    )
    result = checker.check(case.prop)
    assert result.status is case.expected_status, (
        "%s: expected %s, got %s" % (case_id, case.expected_status, result.status)
    )
    if result.counterexample is not None:
        assert result.counterexample.validated


def test_witness_traces_replay_in_simulation():
    case = build_case("p8")
    checker = AssertionChecker(
        case.circuit, options=CheckerOptions(max_frames=case.max_frames)
    )
    result = checker.check(case.prop)
    trace = result.counterexample
    simulator = Simulator(case.circuit, initial_state=trace.initial_state)
    final = None
    for vector in trace.inputs:
        final = simulator.step(vector)
    assert final["hour"] == 2
