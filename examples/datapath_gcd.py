"""A GCD datapath checked end-to-end with the word-level engine.

The design is the classic Euclid datapath: two 8-bit registers are loaded
from the inputs, then each cycle the larger register is decreased by the
smaller until they are equal.  Control (load/done flags, comparator outputs)
and datapath (the subtractors and multiplexors) interact exactly the way the
paper's circuit model describes, so the example exercises:

* word-level implication across the control/datapath boundary,
* the modular arithmetic solver on the subtractor constraints,
* witness generation ("the design finishes with the right answer"),
* assertion checking ("the registers never leave the expected value set").

Run:  python examples/datapath_gcd.py
"""

from repro import (
    Assertion,
    AssertionChecker,
    CheckerOptions,
    Circuit,
    Environment,
    Signal,
    Witness,
)
from repro.simulation import Simulator


def build_gcd(width: int = 8) -> Circuit:
    """The Euclid-by-subtraction datapath with a load port."""
    circuit = Circuit("gcd")
    load = circuit.input("load", 1)
    in_a = circuit.input("in_a", width)
    in_b = circuit.input("in_b", width)

    a = circuit.state("a", width)
    b = circuit.state("b", width)

    a_greater = circuit.gt(a, b, name="a_greater")
    b_greater = circuit.gt(b, a, name="b_greater")
    done = circuit.and_(
        circuit.eq(a, b, name="equal"), circuit.not_(load), name="done"
    )

    a_minus_b = circuit.sub(a, b, name="a_minus_b")
    b_minus_a = circuit.sub(b, a, name="b_minus_a")

    # next_a: load ? in_a : (a > b ? a - b : a)
    a_step = circuit.mux(a_greater, a, a_minus_b, name="a_step")
    next_a = circuit.mux(load, a_step, in_a, name="next_a")
    # next_b: load ? in_b : (b > a ? b - a : b)
    b_step = circuit.mux(b_greater, b, b_minus_a, name="b_step")
    next_b = circuit.mux(load, b_step, in_b, name="next_b")

    circuit.dff_into(a, next_a, init_value=0)
    circuit.dff_into(b, next_b, init_value=0)
    circuit.output(a, name="result")
    circuit.output(done)
    return circuit


def simulate_reference(circuit: Circuit, value_a: int, value_b: int, cycles: int = 20):
    """Concrete simulation used to sanity-check the design before verifying."""
    simulator = Simulator(circuit)
    simulator.step({"load": 1, "in_a": value_a, "in_b": value_b})
    for _ in range(cycles):
        values = simulator.step({"load": 0, "in_a": 0, "in_b": 0})
        if values["done"]:
            return values["result"]
    return None


def main() -> None:
    circuit = build_gcd()

    print("reference simulation: gcd(12, 8) =", simulate_reference(circuit, 12, 8))
    print("reference simulation: gcd(21, 14) =", simulate_reference(circuit, 21, 14))
    print()

    # Fix the operands through the environment: the first cycle loads (12, 8),
    # afterwards the load input stays low so the iteration runs.
    environment = (
        Environment()
        .pin("in_a", 12)
        .pin("in_b", 8)
        .initialize_with([{"load": 1, "in_a": 12, "in_b": 8}])
    )
    environment.pin("load", 0)
    checker = AssertionChecker(
        circuit, environment=environment, options=CheckerOptions(max_frames=10)
    )

    # 1. Witness: the datapath finishes with gcd(12, 8) = 4.
    finishes = checker.check(
        Witness("computes_gcd", (Signal("done") == 1) & (Signal("result") == 4))
    )
    print("witness 'done with result 4':", finishes.status.value)
    if finishes.counterexample is not None:
        print(finishes.counterexample.summary())
    print()

    # 2. Assertion: the running register never takes a value outside the
    #    Euclid sequence for (12, 8)  --  {0 (before load), 12, 4}.
    legal_values = (
        (Signal("a") == 0) | (Signal("a") == 12) | (Signal("a") == 4)
    )
    invariant = checker.check(Assertion("a_stays_in_sequence", legal_values))
    print("assertion 'a in {0, 12, 4}':", invariant.status.value)

    # 3. Assertion that is false: the result does reach 4, so claiming it
    #    never does produces a validated counterexample.
    never_four = checker.check(Assertion("result_never_4", Signal("result") != 4))
    print("assertion 'result != 4':", never_four.status.value)
    if never_four.counterexample is not None:
        print("  counterexample length:", never_four.counterexample.length, "cycles")
    print()
    print("search statistics of the witness run:")
    stats = finishes.statistics
    print(
        "  %d decisions, %d backtracks, %d implications, %d arithmetic solver calls"
        % (stats.decisions, stats.backtracks, stats.implications, stats.arithmetic_calls)
    )


if __name__ == "__main__":
    main()
