"""Verifying the alarm-clock design (paper properties p7, p8, p9).

This example mirrors Section 5 of the paper on the alarm_clock benchmark:

* p7 -- a transition property checked from *any valid* display state: once
  the clock passes 11:59 it must show 12:00 (uses Delayed() and environment
  assumptions to constrain the arbitrary initial state to valid displays);
* p8 -- a generated witness sequence that brings the hour display to 2 after
  power-on (the checker returns the button presses);
* p9 -- the hour display can never show an invalid value such as 13 (the
  hardest proof of the paper's Table 2).

Run:  python examples/alarm_clock_verification.py
"""

from repro import (
    And,
    Assertion,
    AssertionChecker,
    CheckerOptions,
    Delayed,
    Environment,
    Implies,
    Signal,
    Witness,
)
from repro.circuits import build_alarm_clock


def check_rollover_property() -> None:
    """p7: after 11:59 the clock resets to 12:00 (inductive, any valid state)."""
    ports = build_alarm_clock(free_initial_state=True)
    environment = Environment()
    environment.assume(And(Signal("hour") >= 1, Signal("hour") <= 12))
    environment.assume(Signal("minute") <= 59)

    passed_1159 = And(
        Signal("hour") == 11,
        Signal("minute") == 59,
        Signal("tick") == 1,
        Signal("set_time") == 0,
    )
    prop = Assertion(
        "p7_rollover",
        Implies(Delayed(passed_1159), And(Signal("hour") == 12, Signal("minute") == 0)),
    )
    checker = AssertionChecker(
        ports.circuit, environment=environment, options=CheckerOptions(max_frames=3)
    )
    result = checker.check(prop)
    print("p7  11:59 -> 12:00 rollover:", result.status.value)


def generate_witness_for_hour_two() -> None:
    """p8: find button presses that bring the hour display to 2."""
    ports = build_alarm_clock()
    checker = AssertionChecker(ports.circuit, options=CheckerOptions(max_frames=5))
    result = checker.check(Witness("p8_reach_two", Signal("hour") == 2))
    print("p8  witness for hour == 2:  ", result.status.value)
    if result.counterexample:
        for frame, vector in enumerate(result.counterexample.inputs):
            pressed = [name for name, value in sorted(vector.items()) if value]
            print("      cycle %d: press %s" % (frame, pressed or ["nothing"]))


def prove_hour_never_thirteen() -> None:
    """p9: the hour display never leaves the valid 1..12 range."""
    ports = build_alarm_clock()
    checker = AssertionChecker(ports.circuit, options=CheckerOptions(max_frames=5))
    result = checker.check(
        Assertion("p9_valid_hour", And(Signal("hour") >= 1, Signal("hour") <= 12))
    )
    print("p9  hour never shows 13:    ", result.status.value,
          "(decisions %d, backtracks %d, %.2fs)"
          % (result.statistics.decisions, result.statistics.backtracks,
             result.statistics.cpu_seconds))


if __name__ == "__main__":
    check_rollover_property()
    generate_witness_for_hour_two()
    prove_hour_never_thirteen()
