"""Corner-case hunting with the engine portfolio through the public facade.

The paper's introduction motivates deterministic constraint solving by the
weakness of random simulation on corner-case bugs.  This example builds a
packet-filter datapath whose bug only fires for one specific 16-bit header
value, then:

1. races the random-simulation baseline against the word-level ATPG engine
   on the bug via one :class:`repro.CheckRequest` (every engine runs to
   completion so their answers can be compared),
2. fans the whole property list across a multiprocessing batch with
   deterministic per-job seeds and prints the unified JSON report,
3. compacts a wandering random witness trace with the loop-detection
   utilities, and
4. dumps the final counterexample as a VCD waveform for inspection.

Everything checker-related goes through ``repro.api`` -- the supported
import path -- rather than internal modules; the request built here is the
same serialisable object ``repro submit`` ships to the verification daemon.

Run:  python examples/corner_case_hunting.py
"""

from repro import Assertion, Circuit, PropertySpec, Signal, Witness, api, build_request
from repro.checker.compact import compact_trace
from repro.properties.convert import PropertyCompiler
from repro.simulation import trace_to_vcd

#: The corner-case header value.  Its byte checksum (0xFF + 0xD0 = 207) is
#: above the accept threshold, so the packet is dropped -- which is what
#: makes the buggy drop-counter step reachable.
MAGIC_HEADER = 0xFFD0


def build_packet_filter() -> Circuit:
    """A toy packet filter with a deliberately planted corner-case bug.

    Packets are accepted when their header checksum matches; a bug makes the
    ``drop_count`` saturate register overflow exactly when the header equals
    ``MAGIC_HEADER`` while the filter is in strict mode.
    """
    circuit = Circuit("packet_filter")
    header = circuit.input("header", 16)
    strict = circuit.input("strict", 1)

    checksum = circuit.add(
        circuit.slice(header, 15, 8), circuit.slice(header, 7, 0), name="checksum"
    )
    accepted = circuit.le(checksum, 200, name="accepted")

    drop_count = circuit.state("drop_count", 4)
    is_magic = circuit.eq(header, MAGIC_HEADER, name="is_magic")
    buggy_step = circuit.mux(
        circuit.and_(is_magic, strict), circuit.const(1, 4), circuit.const(15, 4)
    )
    incremented = circuit.add(drop_count, buggy_step, name="incremented")
    next_count = circuit.mux(accepted, incremented, circuit.const(0, 4))
    circuit.dff_into(drop_count, next_count, init_value=0)

    circuit.output(accepted)
    circuit.output(drop_count, name="drops")
    return circuit


def main() -> None:
    # The bug: drops jumps by 15 (wrapping the 4-bit register) only when the
    # magic header arrives in strict mode.
    bug_property = Assertion("drops_increase_by_one", Signal("drops") != 15)

    print("=== 1. random simulation vs. the word-level engine (portfolio) ===")
    race_request = build_request(
        build_packet_filter(),
        bug_property,
        engines=("random", "atpg"),
        compare=True,  # let the loser finish so the verdicts can be compared
        max_frames=3,
        random_runs=64,
        random_cycles=32,
        seed=1,
    )
    race = api.run_request(race_request).batch.items[0].result
    for engine_result in race.engine_results:
        print(
            "  %-8s %-12s conclusive=%-5s %.3fs  %s"
            % (
                engine_result.engine,
                engine_result.status.value,
                engine_result.verdict is not None,
                engine_result.wall_seconds,
                engine_result.stats.get("vectors_simulated", ""),
            )
        )
    print("  winner: %s" % race.winner)
    trigger = race.counterexample.inputs[0] if race.counterexample else None
    if trigger is not None:
        print(
            "  triggering input: header=0x%04X strict=%d (magic header is 0x%04X)"
            % (trigger["header"], trigger["strict"], MAGIC_HEADER)
        )

    print()
    print("=== 2. batch run across a worker pool ===")
    # A random witness for "drops == 2" typically wanders; job seeds are
    # derived from the request seed, so this report is reproducible.  Both
    # properties travel in one request, each with its own bound.
    witness_property = Witness("two_drops", Signal("drops") == 2)
    batch_request = build_request(
        build_packet_filter(),
        [
            PropertySpec.from_property(bug_property, max_frames=3),
            PropertySpec.from_property(witness_property, max_frames=8),
        ],
        engines=("random", "atpg"),
        compare=True,
        jobs=2,
        seed=5,
        random_runs=256,
        random_cycles=48,
    )
    outcome = api.run_request(batch_request)
    for item in outcome.batch.items:
        print(
            "  %-10s %-15s winner=%-7s seed=%d  %.3fs"
            % (
                item.job_id,
                item.result.status.value,
                item.result.winner,
                item.seed,
                item.result.wall_seconds,
            )
        )
    print("  disagreements: %s" % (outcome.batch.disagreements or "none"))

    print()
    print("=== 3. witness compaction ===")
    witness_item = outcome.batch.items[1]
    random_result = witness_item.result.engine_results[0]
    # Compaction replays the trace, so the replay circuit needs the compiled
    # property monitor; compiling into a fresh copy reproduces the same
    # monitor net name the batch worker used.
    circuit = build_packet_filter()
    PropertyCompiler(circuit).compile(witness_property)
    if random_result.counterexample is None:
        print("  random simulation found no witness to compact")
    else:
        compaction = compact_trace(circuit, random_result.counterexample)
        print(
            "  witness length %d -> %d cycles (%d loops removed)"
            % (
                compaction.original_length,
                compaction.compacted_length,
                compaction.loops_removed,
            )
        )

    print()
    print("=== 4. VCD dump of the counterexample ===")
    bug_trace = outcome.batch.items[0].result.counterexample
    if bug_trace is not None:
        vcd_text = trace_to_vcd(circuit, bug_trace.trace)
        path = "packet_filter_bug.vcd"
        with open(path, "w") as stream:
            stream.write(vcd_text)
        print("  wrote %s (%d lines)" % (path, len(vcd_text.splitlines())))


if __name__ == "__main__":
    main()
