"""Corner-case hunting: random simulation vs. the word-level engine.

The paper's introduction motivates deterministic constraint solving by the
weakness of random simulation on corner-case bugs.  This example builds a
packet-filter datapath whose bug only fires for one specific 16-bit header
value, then:

1. lets the random-simulation baseline look for it with a realistic budget,
2. lets the combined word-level ATPG + modular arithmetic engine derive the
   triggering input directly,
3. compacts a wandering witness trace with the loop-detection utilities, and
4. dumps the final counterexample as a VCD waveform for inspection.

Run:  python examples/corner_case_hunting.py
"""

from repro import (
    Assertion,
    AssertionChecker,
    CheckerOptions,
    Circuit,
    Signal,
    Witness,
)
from repro.baselines import RandomSimulationChecker, RandomSimulationOptions
from repro.checker.compact import compact_trace
from repro.simulation import trace_to_vcd

#: The corner-case header value.  Its byte checksum (0xFF + 0xD0 = 207) is
#: above the accept threshold, so the packet is dropped -- which is what
#: makes the buggy drop-counter step reachable.
MAGIC_HEADER = 0xFFD0


def build_packet_filter() -> Circuit:
    """A toy packet filter with a deliberately planted corner-case bug.

    Packets are accepted when their header checksum matches; a bug makes the
    ``drop_count`` saturate register overflow exactly when the header equals
    ``MAGIC_HEADER`` while the filter is in strict mode.
    """
    circuit = Circuit("packet_filter")
    header = circuit.input("header", 16)
    strict = circuit.input("strict", 1)

    checksum = circuit.add(
        circuit.slice(header, 15, 8), circuit.slice(header, 7, 0), name="checksum"
    )
    accepted = circuit.le(checksum, 200, name="accepted")

    drop_count = circuit.state("drop_count", 4)
    is_magic = circuit.eq(header, MAGIC_HEADER, name="is_magic")
    buggy_step = circuit.mux(
        circuit.and_(is_magic, strict), circuit.const(1, 4), circuit.const(15, 4)
    )
    incremented = circuit.add(drop_count, buggy_step, name="incremented")
    next_count = circuit.mux(accepted, incremented, circuit.const(0, 4))
    circuit.dff_into(drop_count, next_count, init_value=0)

    circuit.output(accepted)
    circuit.output(drop_count, name="drops")
    return circuit


def main() -> None:
    circuit = build_packet_filter()
    # The bug: drops jumps by 15 (wrapping the 4-bit register) only when the
    # magic header arrives in strict mode.
    bug_property = Assertion("drops_increase_by_one", Signal("drops") != 15)

    print("=== 1. random simulation baseline ===")
    random_checker = RandomSimulationChecker(
        circuit,
        options=RandomSimulationOptions(num_runs=64, cycles_per_run=32, seed=1),
    )
    random_result = random_checker.check(bug_property)
    print(
        "  random simulation: %s after %d vectors (%.3fs)"
        % (
            random_result.status.value,
            random_checker.vectors_simulated,
            random_result.statistics.cpu_seconds,
        )
    )

    print()
    print("=== 2. word-level ATPG + modular arithmetic ===")
    atpg_result = AssertionChecker(circuit, options=CheckerOptions(max_frames=3)).check(
        bug_property
    )
    print("  deterministic engine:", atpg_result.status.value)
    if atpg_result.counterexample is not None:
        trigger = atpg_result.counterexample.inputs[0]
        print(
            "  triggering input: header=0x%04X strict=%d (magic header is 0x%04X)"
            % (trigger["header"], trigger["strict"], MAGIC_HEADER)
        )

    print()
    print("=== 3. witness compaction ===")
    # A random witness for "drops == 2" typically wanders; compaction removes
    # the loops through repeated states.
    witness_checker = RandomSimulationChecker(
        circuit,
        options=RandomSimulationOptions(num_runs=256, cycles_per_run=48, seed=5),
    )
    witness = witness_checker.check(Witness("two_drops", Signal("drops") == 2))
    if witness.counterexample is None:
        print("  random simulation found no witness to compact")
    else:
        compaction = compact_trace(circuit, witness.counterexample)
        print(
            "  witness length %d -> %d cycles (%d loops removed)"
            % (
                compaction.original_length,
                compaction.compacted_length,
                compaction.loops_removed,
            )
        )

    print()
    print("=== 4. VCD dump of the counterexample ===")
    if atpg_result.counterexample is not None:
        vcd_text = trace_to_vcd(circuit, atpg_result.counterexample.trace)
        path = "packet_filter_bug.vcd"
        with open(path, "w") as stream:
            stream.write(vcd_text)
        print("  wrote %s (%d lines)" % (path, len(vcd_text.splitlines())))


if __name__ == "__main__":
    main()
