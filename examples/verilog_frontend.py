"""Checking a design that enters the flow as Verilog source text.

The paper's prototype consumes RTL Verilog through an industrial front end;
this example uses the bundled Verilog-subset front end to elaborate a small
FIFO-style credit counter and then checks it with both the word-level engine
and the bit-level SAT baseline, comparing their answers.

Run:  python examples/verilog_frontend.py
"""

from repro import Assertion, AssertionChecker, CheckerOptions, Signal, Witness
from repro.baselines import SATBoundedChecker
from repro.hdl import compile_verilog

CREDIT_COUNTER = """
// A credit counter: grants are only issued while credits remain.
module credits(input clk, input rst, input consume, input refill,
               output [2:0] credits, output grant);
  reg [2:0] credits;
  wire can_grant;
  assign can_grant = (credits != 3'd0);
  assign grant = can_grant & consume;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      credits <= 3'd4;
    end else begin
      if (grant & ~refill) credits <= credits - 3'd1;
      else begin
        if (refill & ~grant & (credits != 3'd7)) credits <= credits + 3'd1;
      end
    end
  end
endmodule
"""


def main() -> None:
    circuit = compile_verilog(CREDIT_COUNTER)
    circuit.validate()
    stats = circuit.stats()
    print("elaborated %s: %d word-level gates, %d flip-flops"
          % (stats.name, stats.gates, stats.flip_flops))

    checker = AssertionChecker(circuit, options=CheckerOptions(max_frames=6))

    # Credits start at 4 and are only decremented when a grant is issued, so
    # a grant with zero credits is impossible.
    safety = checker.check(
        Assertion("no_grant_without_credit",
                  ~((Signal("grant") == 1) & (Signal("credits") == 0)))
    )
    print("word-level: no grant without credit ->", safety.status.value)

    # Witness: the credit pool can be drained to zero.
    drained = checker.check(Witness("drain", Signal("credits") == 0))
    print("word-level: credits reach 0 ->", drained.status.value,
          "in %d cycles" % drained.counterexample.length)

    # The SAT bounded-model-checking baseline agrees on both verdicts.
    sat = SATBoundedChecker(circuit, max_frames=6)
    sat_safety = sat.check(
        Assertion("no_grant_without_credit_sat",
                  ~((Signal("grant") == 1) & (Signal("credits") == 0)))
    )
    sat_drain = sat.check(Witness("drain_sat", Signal("credits") == 0))
    print("SAT baseline: %s / %s (clause database: %d clauses)"
          % (sat_safety.status.value, sat_drain.status.value, sat_drain.clauses))


if __name__ == "__main__":
    main()
