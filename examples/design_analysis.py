"""Structural analysis guiding verification: FSMs, counters and don't-cares.

The paper's discussion section suggests mining high-level structure from the
RTL -- local finite state machines, counters, shift registers -- and using it
to steer the ATPG away from states the design can never occupy.  This example
runs that flow on a small serial-protocol controller:

1. report the control/datapath structure and the recognised modules,
2. extract the local FSMs and show which state encodings are unreachable,
3. validate the designer's internal don't-care conditions (the p10/p14 flow),
4. check the same assertion with and without FSM guidance and compare the
   search statistics.

Run:  python examples/design_analysis.py
"""

from repro import Assertion, AssertionChecker, CheckerOptions, Circuit, Signal
from repro.analysis import (
    DontCareSet,
    analyze_structure,
    extract_local_fsms,
    recognize_modules,
    validate_dont_cares,
)


def build_protocol_controller() -> Circuit:
    """A transmit controller: IDLE -> START -> 8 data bits -> STOP -> IDLE.

    The phase register is one-hot-ish (values 0-3 used, 4-7 unreachable) and
    the bit counter only counts 0..7, so both registers carry unreachable
    encodings that the analysis should discover.
    """
    circuit = Circuit("tx_controller")
    start = circuit.input("start", 1)
    data_in = circuit.input("data_in", 8)

    phase = circuit.state("phase", 3)       # 0 idle, 1 start, 2 data, 3 stop
    bit_count = circuit.state("bit_count", 3)
    shifter = circuit.state("shifter", 8)

    is_idle = circuit.eq(phase, 0, name="is_idle")
    is_start = circuit.eq(phase, 1, name="is_start")
    is_data = circuit.eq(phase, 2, name="is_data")
    is_stop = circuit.eq(phase, 3, name="is_stop")
    last_bit = circuit.eq(bit_count, 7, name="last_bit")

    # Phase transitions.
    from_idle = circuit.mux(start, circuit.const(0, 3), circuit.const(1, 3))
    from_data = circuit.mux(last_bit, circuit.const(2, 3), circuit.const(3, 3))
    next_phase = circuit.mux(
        phase,
        from_idle,               # idle: wait for start
        circuit.const(2, 3),     # start: always move to data
        from_data,               # data: loop until the last bit
        circuit.const(0, 3),     # stop: back to idle
        name="next_phase",
    )
    circuit.dff_into(phase, next_phase, init_value=0)

    # Bit counter: counts only during the data phase, clears otherwise.
    counting = circuit.mux(last_bit, circuit.add(bit_count, 1), circuit.const(0, 3))
    next_count = circuit.mux(is_data, circuit.const(0, 3), counting, name="next_count")
    circuit.dff_into(bit_count, next_count, init_value=0)

    # Shift register: loaded in the start phase, shifted during data.
    shifted = circuit.concat(circuit.slice(shifter, 6, 0), circuit.const(0, 1))
    hold_or_shift = circuit.mux(is_data, shifter, shifted)
    next_shifter = circuit.mux(is_start, hold_or_shift, data_in, name="next_shifter")
    circuit.dff_into(shifter, next_shifter, init_value=0)

    circuit.output(circuit.bit(shifter, 7), name="tx")
    circuit.output(is_idle, name="ready")
    return circuit


def main() -> None:
    circuit = build_protocol_controller()

    print("=== structure report ===")
    print(analyze_structure(circuit).format())
    print()

    print("=== recognised modules ===")
    print(recognize_modules(circuit).format())
    print()

    print("=== local FSM extraction ===")
    for fsm in extract_local_fsms(circuit, max_width=3):
        print(fsm.format())
        print()

    print("=== don't-care validation (p10 / p14 flow) ===")
    dont_cares = DontCareSet(circuit.name)
    dont_cares.add(
        "phase_above_stop",
        Signal("phase") >= 4,
        "phase encodings 4-7 are unused by the protocol",
    )
    dont_cares.add(
        "count_outside_data",
        (Signal("phase") != 2) & (Signal("bit_count") != 0),
        "the bit counter only runs during the data phase",
    )
    for verdict in validate_dont_cares(
        circuit, dont_cares, options=CheckerOptions(max_frames=6)
    ):
        print(" ", verdict.summary())
    print()

    print("=== FSM guidance ablation ===")
    target = Assertion("phase_never_5", Signal("phase") != 5)
    for label, options in (
        ("without guidance", CheckerOptions(max_frames=10)),
        ("with FSM guidance", CheckerOptions(max_frames=10, use_local_fsm_guidance=True)),
    ):
        result = AssertionChecker(circuit, options=options).check(target)
        print(
            "  %-18s verdict=%s decisions=%d backtracks=%d cpu=%.3fs"
            % (
                label,
                result.status.value,
                result.statistics.decisions,
                result.statistics.backtracks,
                result.statistics.cpu_seconds,
            )
        )


if __name__ == "__main__":
    main()
