"""Quickstart: build a small sequential design and check properties on it.

The example constructs a bounded up-counter with the netlist builder API,
then uses the combined word-level ATPG + modular arithmetic checker to

1. prove a safety assertion (the counter never exceeds its limit),
2. find a counterexample for a false assertion (the counter *does* reach 5),
3. generate a witness input sequence that drives the counter to a target.

Run:  python examples/quickstart.py
"""

from repro import (
    Assertion,
    AssertionChecker,
    CheckerOptions,
    Circuit,
    Signal,
    Witness,
)


def build_counter(limit: int = 9) -> Circuit:
    """A 4-bit counter that increments while ``en`` is high and wraps at ``limit``."""
    circuit = Circuit("counter")
    enable = circuit.input("en", 1)
    count = circuit.state("cnt", 4)

    at_limit = circuit.eq(count, limit, name="at_limit")
    incremented = circuit.add(count, 1, name="incremented")
    next_when_counting = circuit.mux(at_limit, incremented, circuit.const(0, 4))
    next_count = circuit.mux(enable, count, next_when_counting, name="next_count")

    circuit.dff_into(count, next_count, init_value=0)
    circuit.output(count)
    return circuit


def main() -> None:
    circuit = build_counter()
    checker = AssertionChecker(circuit, options=CheckerOptions(max_frames=8))

    # 1. A true safety assertion: the counter never exceeds 9.
    bounded = checker.check(Assertion("bounded", Signal("cnt") <= 9))
    print("assertion 'cnt <= 9':", bounded.status.value,
          "(explored %d frames, %.3fs)" % (bounded.frames_explored,
                                           bounded.statistics.cpu_seconds))

    # 2. A false assertion: the checker produces a validated counterexample.
    never_five = checker.check(Assertion("never_five", Signal("cnt") != 5))
    print("assertion 'cnt != 5':", never_five.status.value)
    if never_five.counterexample:
        print(never_five.counterexample.summary())

    # 3. A witness: an input sequence reaching cnt == 7.
    reach_seven = checker.check(Witness("reach_seven", Signal("cnt") == 7))
    print("witness 'cnt == 7':", reach_seven.status.value,
          "in %d cycles" % reach_seven.counterexample.length)


if __name__ == "__main__":
    main()
