"""Bus-contention checking, the paper's industrial use case (p11-p13).

Three tri-state bus structures are verified:

* a bus whose drivers are enabled by a decoded select register (one-hot by
  construction) -- the assertion holds;
* a bus whose enables come straight from unconstrained inputs -- the checker
  finds a contention counterexample and prints the offending input vector;
* the same bus with a one-hot environmental constraint on the enables -- the
  assertion holds again, demonstrating how environment assumptions enter the
  search.

Run:  python examples/bus_contention.py
"""

from repro import And, Assertion, AssertionChecker, CheckerOptions, Environment, Not, Signal
from repro.circuits import build_industry_02, build_industry_04
from repro.properties.spec import Expression


def no_contention_property(enable_names, data_names) -> Expression:
    """No two enabled drivers present different data values."""
    terms = []
    for i in range(len(enable_names)):
        for j in range(i + 1, len(enable_names)):
            terms.append(
                Not(
                    And(
                        Signal(enable_names[i]) == 1,
                        Signal(enable_names[j]) == 1,
                        Signal(data_names[i]) != Signal(data_names[j]),
                    )
                )
            )
    return terms[0] if len(terms) == 1 else And(*terms)


def check_decoded_bus() -> None:
    ports = build_industry_02(num_drivers=4, bus_width=16)
    prop = Assertion(
        "no_contention_decoded",
        no_contention_property(
            [n.name for n in ports.enables], [n.name for n in ports.driver_data]
        ),
    )
    result = AssertionChecker(ports.circuit, options=CheckerOptions(max_frames=3)).check(prop)
    print("decoded one-hot enables:    ", result.status.value)


def check_unconstrained_bus() -> None:
    ports = build_industry_04(num_drivers=3, bus_width=8)
    prop = Assertion(
        "no_contention_unconstrained",
        no_contention_property(
            [n.name for n in ports.enables], [n.name for n in ports.driver_data]
        ),
    )
    result = AssertionChecker(ports.circuit, options=CheckerOptions(max_frames=2)).check(prop)
    print("unconstrained input enables:", result.status.value)
    if result.counterexample:
        vector = result.counterexample.inputs[result.counterexample.target_frame]
        enabled = [name for name in vector if name.startswith("en_") and vector[name]]
        print("   contention witness: enables %s, data %s"
              % (enabled, {k: v for k, v in vector.items() if k.startswith("d_")}))


def check_environment_constrained_bus() -> None:
    ports = build_industry_04(num_drivers=3, bus_width=8)
    environment = Environment().one_hot([net.name for net in ports.enables])
    prop = Assertion(
        "no_contention_one_hot_env",
        no_contention_property(
            [n.name for n in ports.enables], [n.name for n in ports.driver_data]
        ),
    )
    result = AssertionChecker(
        ports.circuit, environment=environment, options=CheckerOptions(max_frames=2)
    ).check(prop)
    print("one-hot environment:        ", result.status.value)


if __name__ == "__main__":
    check_decoded_bus()
    check_unconstrained_bus()
    check_environment_constrained_bus()
