import os
import sys

# Make the src/ layout importable even without installing the package.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
