# Developer entry points.  CI (.github/workflows/) runs the same commands.

PYTHON ?= python
#: benchmark files covered by the committed baseline and the CI smoke gate.
# Order matters: bench_incremental times small allocation-heavy runs and
# must run before bench_bitparallel's huge lane arrays fragment the
# allocator (the same order is used for the committed baseline and CI).
SMOKE_BENCHES = benchmarks/bench_incremental.py benchmarks/bench_justify.py \
                benchmarks/bench_learning.py \
                benchmarks/bench_table1.py benchmarks/bench_portfolio.py \
                benchmarks/bench_bitparallel.py benchmarks/bench_service.py
#: fail CI when a benchmark's median slows down by more than this fraction.
BENCH_THRESHOLD ?= 0.25
#: do not gate benchmarks with baseline timings below this (sub-10ms
#: minima are scheduler/timer noise on shared runners; they stay in the
#: report but cannot fail the gate).
BENCH_MIN_TIME ?= 0.01
COV_FLOOR ?= 78

#: profile configuration (see benchmarks/profile_check.py --help).
PROFILE_CASE ?= p3
PROFILE_BOUND ?= 12
PROFILE_TOP ?= 25

.PHONY: test lint coverage docs-check bench-smoke bench-check bench-baseline bench-full profile

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m ruff check .

# Run the README quickstart end-to-end and link-check README + docs/*.md.
docs-check:
	$(PYTHON) tools/check_docs.py

# cProfile one representative `repro check` run and dump the top functions
# by cumulative time (hot-path regression triage).  Emits one profile per
# implication engine: the compiled slot-indexed kernel (the default path)
# and the interpreted oracle it lowers.
profile:
	$(PYTHON) benchmarks/profile_check.py --case $(PROFILE_CASE) \
	    --bound $(PROFILE_BOUND) --top $(PROFILE_TOP)
	$(PYTHON) benchmarks/profile_check.py --case $(PROFILE_CASE) \
	    --bound $(PROFILE_BOUND) --top $(PROFILE_TOP) --no-compiled

coverage:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term-missing \
	    --cov-fail-under=$(COV_FLOOR)

# One fast benchmark per family, JSON report kept for the regression gate.
bench-smoke:
	$(PYTHON) -m pytest $(SMOKE_BENCHES) -q \
	    --benchmark-json=benchmark_report.json

# Gate the last smoke run against the committed baseline.
bench-check: bench-smoke
	$(PYTHON) benchmarks/compare_reports.py benchmark_report.json \
	    --baseline benchmarks/BASELINE.json \
	    --threshold $(BENCH_THRESHOLD) --normalize \
	    --min-time $(BENCH_MIN_TIME)

# Refresh the committed baseline (review the diff before committing!).
bench-baseline: bench-smoke
	$(PYTHON) benchmarks/compare_reports.py benchmark_report.json \
	    --write-baseline benchmarks/BASELINE.json

# The nightly configuration: every benchmark, plus the markdown summary.
# (bench_*.py does not match pytest's default test-file pattern, so the
# files are passed explicitly.)
bench-full:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q \
	    --benchmark-json=nightly_report.json
	$(PYTHON) benchmarks/summarize_report.py nightly_report.json \
	    -o nightly_summary.md
