#!/usr/bin/env python
"""Keep the documentation honest: run the README quickstart, check links.

Two checks, both run by CI's docs job and ``make docs-check``:

1. **Quickstart execution** -- every ``bash`` fenced block between
   ``<!-- docs-check:begin -->`` / ``<!-- docs-check:end -->`` markers in
   README.md is executed line by line in a scratch directory (with a small
   counter design materialized as ``design.v``).  ``repro ...`` commands run
   as ``python -m repro ...`` against the in-tree sources, so the documented
   CLI cannot drift from the implementation.
2. **Link check** -- every relative markdown link in README.md and
   ``docs/*.md`` must point at an existing file (anchors are stripped;
   external ``http(s)``/``mailto`` links are not fetched).
"""

import glob
import os
import re
import shlex
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

#: the design the quickstart commands operate on: a 4-bit decade counter
#: (wraps at 9), deep enough to learn facts but trivial to check.
_DESIGN = """\
module counter(clk, rst, en, count);
  input clk, rst, en;
  output [3:0] count;
  reg [3:0] count;
  always @(posedge clk) begin
    if (rst) count <= 4'd0;
    else if (en) begin
      if (count == 4'd9) count <= 4'd0;
      else count <= count + 4'd1;
    end
  end
endmodule
"""

_BLOCK_RE = re.compile(
    r"<!--\s*docs-check:begin\s*-->\s*```bash\n(.*?)```",
    re.DOTALL,
)
#: inline + reference-style markdown links; images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _quickstart_commands(readme_text):
    """The command lines of every marked quickstart block, in order."""
    commands = []
    for block in _BLOCK_RE.findall(readme_text):
        for line in block.splitlines():
            words = shlex.split(line, comments=True)
            if words:
                commands.append(words)
    return commands


def run_quickstart():
    """Execute the README quickstart blocks; return a list of failures."""
    readme = open(os.path.join(REPO, "README.md")).read()
    commands = _quickstart_commands(readme)
    if not commands:
        return ["README.md: no docs-check quickstart block found"]
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_KB", None)
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        with open(os.path.join(scratch, "design.v"), "w") as stream:
            stream.write(_DESIGN)
        for words in commands:
            if words[0] != "repro":
                failures.append(
                    "quickstart: only `repro ...` commands are runnable, got %r"
                    % " ".join(words)
                )
                continue
            argv = [sys.executable, "-m", "repro"] + words[1:]
            proc = subprocess.run(
                argv, cwd=scratch, env=env, capture_output=True, text=True,
                timeout=300,
            )
            label = " ".join(words)
            if proc.returncode != 0:
                failures.append(
                    "quickstart: `%s` exited %d\n%s"
                    % (label, proc.returncode, (proc.stderr or proc.stdout).strip())
                )
            else:
                print("ok: %s" % label)
    return failures


def check_links():
    """Verify every relative markdown link resolves; return failures."""
    failures = []
    pages = [os.path.join(REPO, "README.md")] + sorted(
        glob.glob(os.path.join(REPO, "docs", "*.md"))
    )
    for page in pages:
        base = os.path.dirname(page)
        for target in _LINK_RE.findall(open(page).read()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not os.path.exists(os.path.join(base, path)):
                failures.append(
                    "%s: broken link -> %s"
                    % (os.path.relpath(page, REPO), target)
                )
        print("ok: links in %s" % os.path.relpath(page, REPO))
    return failures


def main():
    """Run both checks; exit non-zero when anything is broken."""
    failures = run_quickstart() + check_links()
    if failures:
        print("\n%d documentation failure(s):" % len(failures), file=sys.stderr)
        for failure in failures:
            print("  " + failure.replace("\n", "\n    "), file=sys.stderr)
        return 1
    print("documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
