#!/usr/bin/env python
"""Keep the documentation honest: run the README quickstart, check links.

Three checks, all run by CI and ``make docs-check``:

1. **Quickstart execution** -- every ``bash`` fenced block between
   ``<!-- docs-check:begin -->`` / ``<!-- docs-check:end -->`` markers in
   README.md is executed line by line in a scratch directory (with a small
   counter design materialized as ``design.v``).  ``repro ...`` commands run
   as ``python -m repro ...`` against the in-tree sources, so the documented
   CLI cannot drift from the implementation.
2. **Service quickstart** -- the marked block in docs/service.md is executed
   as a real daemon session: ``repro serve`` runs in the background, the
   ``repro submit`` lines run against its socket, the documented ``--stats``
   call must report a nonzero warm-hit counter, and the daemon must exit
   cleanly on ``--shutdown``.
3. **Link check** -- every relative markdown link in README.md and
   ``docs/*.md`` must point at an existing file (anchors are stripped;
   external ``http(s)``/``mailto`` links are not fetched).

``--only quickstart|service|links`` runs a single check (CI's service
smoke job uses ``--only service``).
"""

import argparse
import glob
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

#: the design the quickstart commands operate on: a 4-bit decade counter
#: (wraps at 9), deep enough to learn facts but trivial to check.
_DESIGN = """\
module counter(clk, rst, en, count);
  input clk, rst, en;
  output [3:0] count;
  reg [3:0] count;
  always @(posedge clk) begin
    if (rst) count <= 4'd0;
    else if (en) begin
      if (count == 4'd9) count <= 4'd0;
      else count <= count + 4'd1;
    end
  end
endmodule
"""

_BLOCK_RE = re.compile(
    r"<!--\s*docs-check:begin\s*-->\s*```bash\n(.*?)```",
    re.DOTALL,
)
#: inline + reference-style markdown links; images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _quickstart_commands(readme_text):
    """The command lines of every marked quickstart block, in order."""
    commands = []
    for block in _BLOCK_RE.findall(readme_text):
        for line in block.splitlines():
            words = shlex.split(line, comments=True)
            if words:
                commands.append(words)
    return commands


def run_quickstart():
    """Execute the README quickstart blocks; return a list of failures."""
    readme = open(os.path.join(REPO, "README.md")).read()
    commands = _quickstart_commands(readme)
    if not commands:
        return ["README.md: no docs-check quickstart block found"]
    failures = []
    env = _docs_env()
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        with open(os.path.join(scratch, "design.v"), "w") as stream:
            stream.write(_DESIGN)
        for words in commands:
            if words[0] != "repro":
                failures.append(
                    "quickstart: only `repro ...` commands are runnable, got %r"
                    % " ".join(words)
                )
                continue
            argv = [sys.executable, "-m", "repro"] + words[1:]
            proc = subprocess.run(
                argv, cwd=scratch, env=env, capture_output=True, text=True,
                timeout=300,
            )
            label = " ".join(words)
            if proc.returncode != 0:
                failures.append(
                    "quickstart: `%s` exited %d\n%s"
                    % (label, proc.returncode, (proc.stderr or proc.stdout).strip())
                )
            else:
                print("ok: %s" % label)
    return failures


def _docs_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_KB", None)
    env.pop("REPRO_SERVICE_SOCKET", None)
    return env


def run_service_quickstart():
    """Execute the docs/service.md daemon session; return a list of failures.

    The documented ``repro serve ... &`` line becomes a background process;
    every other line runs in order against the in-tree sources.  Beyond
    exit codes, the session's documented claims are asserted: the warm-hit
    counter in the ``--stats`` output is nonzero after the repeat submit,
    and the daemon exits 0 after ``--shutdown``.
    """
    page = os.path.join(REPO, "docs", "service.md")
    commands = _quickstart_commands(open(page).read())
    if not commands:
        return ["docs/service.md: no docs-check quickstart block found"]
    failures = []
    env = _docs_env()
    daemon = None
    with tempfile.TemporaryDirectory(prefix="repro-docs-svc-") as scratch:
        with open(os.path.join(scratch, "design.v"), "w") as stream:
            stream.write(_DESIGN)
        try:
            for words in commands:
                background = words[-1] == "&"
                if background:
                    words = words[:-1]
                if words[0] != "repro":
                    failures.append(
                        "service quickstart: only `repro ...` commands are "
                        "runnable, got %r" % " ".join(words)
                    )
                    continue
                argv = [sys.executable, "-m", "repro"] + words[1:]
                label = " ".join(words)
                if background:
                    daemon = subprocess.Popen(
                        argv, cwd=scratch, env=env,
                        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                        text=True,
                    )
                    socket_path = os.path.join(scratch, "verify.sock")
                    deadline = time.monotonic() + 30.0
                    while time.monotonic() < deadline:
                        if os.path.exists(socket_path) or daemon.poll() is not None:
                            break
                        time.sleep(0.05)
                    if daemon.poll() is not None or not os.path.exists(socket_path):
                        failures.append(
                            "service quickstart: `%s` did not come up" % label
                        )
                        break
                    print("ok: %s (daemon up)" % label)
                    continue
                proc = subprocess.run(
                    argv, cwd=scratch, env=env, capture_output=True, text=True,
                    timeout=300,
                )
                if proc.returncode != 0:
                    failures.append(
                        "service quickstart: `%s` exited %d\n%s"
                        % (label, proc.returncode,
                           (proc.stderr or proc.stdout).strip())
                    )
                    continue
                if "--stats" in words:
                    stats = json.loads(proc.stdout)
                    warm = sum(
                        worker.get("warm_hits", 0)
                        for worker in stats.get("workers", [])
                    )
                    if warm < 1:
                        failures.append(
                            "service quickstart: `%s` reported no warm hits "
                            "after the repeat submit:\n%s"
                            % (label, proc.stdout.strip())
                        )
                        continue
                print("ok: %s" % label)
            if daemon is not None and not failures:
                try:
                    daemon.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    failures.append(
                        "service quickstart: daemon still running after "
                        "--shutdown"
                    )
                else:
                    if daemon.returncode != 0:
                        failures.append(
                            "service quickstart: daemon exited %d after "
                            "--shutdown\n%s"
                            % (daemon.returncode, daemon.stdout.read().strip())
                        )
                    else:
                        print("ok: daemon shut down cleanly")
        finally:
            if daemon is not None and daemon.poll() is None:
                daemon.kill()
                daemon.wait()
    return failures


def check_links():
    """Verify every relative markdown link resolves; return failures."""
    failures = []
    pages = [os.path.join(REPO, "README.md")] + sorted(
        glob.glob(os.path.join(REPO, "docs", "*.md"))
    )
    for page in pages:
        base = os.path.dirname(page)
        for target in _LINK_RE.findall(open(page).read()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not os.path.exists(os.path.join(base, path)):
                failures.append(
                    "%s: broken link -> %s"
                    % (os.path.relpath(page, REPO), target)
                )
        print("ok: links in %s" % os.path.relpath(page, REPO))
    return failures


CHECKS = {
    "quickstart": run_quickstart,
    "service": run_service_quickstart,
    "links": check_links,
}


def main():
    """Run the selected checks; exit non-zero when anything is broken."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only", choices=sorted(CHECKS),
        help="run a single check instead of all of them",
    )
    args = parser.parse_args()
    checks = [CHECKS[args.only]] if args.only else [
        run_quickstart, run_service_quickstart, check_links
    ]
    failures = []
    for check in checks:
        failures.extend(check())
    if failures:
        print("\n%d documentation failure(s):" % len(failures), file=sys.stderr)
        for failure in failures:
            print("  " + failure.replace("\n", "\n    "), file=sys.stderr)
        return 1
    print("documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
